//! Parda scaling microbenchmarks: rank count (D-scaling), cache bound
//! (ablation D3), phase size (ablation D4), and transport (message-passing
//! vs shared-memory cascade).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parda_core::phased::{parda_phased, parda_phased_with, Reduction};
use parda_core::{parallel, PardaConfig};
use parda_trace::spec::SpecBenchmark;
use parda_trace::{AddressStream, SliceStream, Trace};
use parda_tree::SplayTree;
use std::hint::black_box;

fn mcf_trace(n: u64) -> Trace {
    SpecBenchmark::by_name("mcf")
        .unwrap()
        .generator(n, 3)
        .take_trace(n as usize)
}

fn bench_rank_scaling(c: &mut Criterion) {
    let n = 200_000u64;
    let trace = mcf_trace(n);
    let mut group = c.benchmark_group("parda/ranks");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    for ranks in [1usize, 2, 4, 8] {
        let config = PardaConfig::with_ranks(ranks);
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &config, |b, cfg| {
            b.iter(|| black_box(parallel::parda_threads::<SplayTree>(trace.as_slice(), cfg)))
        });
    }
    group.finish();
}

fn bench_bound_sweep(c: &mut Criterion) {
    let n = 200_000u64;
    let trace = mcf_trace(n);
    let mut group = c.benchmark_group("parda/bound");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    for bound in [64u64, 256, 1024, 4096] {
        let config = PardaConfig::with_ranks(4).bounded(bound);
        group.bench_with_input(BenchmarkId::from_parameter(bound), &config, |b, cfg| {
            b.iter(|| black_box(parallel::parda_threads::<SplayTree>(trace.as_slice(), cfg)))
        });
    }
    // Unbounded reference point.
    let config = PardaConfig::with_ranks(4);
    group.bench_function("unbounded", |b| {
        b.iter(|| {
            black_box(parallel::parda_threads::<SplayTree>(
                trace.as_slice(),
                &config,
            ))
        })
    });
    group.finish();
}

fn bench_phase_size(c: &mut Criterion) {
    let n = 200_000u64;
    let trace = mcf_trace(n);
    let mut group = c.benchmark_group("parda/phase_chunk");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    for chunk in [1_024usize, 8_192, 65_536] {
        let config = PardaConfig::with_ranks(4);
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                black_box(parda_phased::<SplayTree, _>(
                    SliceStream::new(trace.as_slice()),
                    chunk,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    let n = 200_000u64;
    let trace = mcf_trace(n);
    let config = PardaConfig::with_ranks(4);
    let mut group = c.benchmark_group("parda/transport");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    group.bench_function("threads-cascade", |b| {
        b.iter(|| {
            black_box(parallel::parda_threads::<SplayTree>(
                trace.as_slice(),
                &config,
            ))
        })
    });
    group.bench_function("message-passing", |b| {
        b.iter(|| black_box(parallel::parda_msg::<SplayTree>(trace.as_slice(), &config)))
    });
    group.finish();
}

fn bench_reduction_strategy(c: &mut Criterion) {
    // D4-adjacent: the §IV-D renumbering enhancement avoids one O(M) state
    // transfer per phase; visible when phases are short and M is large.
    let n = 200_000u64;
    let trace = mcf_trace(n);
    let config = PardaConfig::with_ranks(4);
    let mut group = c.benchmark_group("parda/reduction");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    for (name, reduction) in [
        ("ship-to-zero", Reduction::ShipToRankZero),
        ("renumber", Reduction::RenumberRanks),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(parda_phased_with::<SplayTree, _>(
                    SliceStream::new(trace.as_slice()),
                    4_096,
                    &config,
                    reduction,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rank_scaling,
    bench_bound_sweep,
    bench_phase_size,
    bench_transport,
    bench_reduction_strategy
);
criterion_main!(benches);

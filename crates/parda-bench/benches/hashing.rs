//! Ablation **D5**: the last-access table's hash map.
//!
//! The original PARDA leaned on GLib's hash table; we built a Robin Hood
//! open-addressing map with an Fx-style hasher. This bench compares it
//! against `std::HashMap` with SipHash (the safe default) and with the Fx
//! hasher, on the exact access mix the analyzer produces: lookup + insert
//! per reference, plus deletions in bounded mode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parda_hash::{FxHashMap, RobinHoodMap};
use parda_trace::gen::{ReuseProfile, StackDistGen};
use parda_trace::AddressStream;
use std::collections::HashMap;
use std::hint::black_box;

fn workload(n: u64) -> Vec<u64> {
    StackDistGen::new(n, n / 20, ReuseProfile::geometric(64.0), 5)
        .take_trace(n as usize)
        .into_vec()
}

fn bench_upsert(c: &mut Criterion) {
    let n = 200_000u64;
    let addrs = workload(n);
    let mut group = c.benchmark_group("hashing/upsert");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("robin-hood-fx", |b| {
        b.iter(|| {
            let mut map: RobinHoodMap<u64, u64> = RobinHoodMap::new();
            for (ts, &a) in addrs.iter().enumerate() {
                let _ = black_box(map.get(a));
                map.insert(a, ts as u64);
            }
            black_box(map.len())
        })
    });
    group.bench_function("std-siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<u64, u64> = HashMap::new();
            for (ts, &a) in addrs.iter().enumerate() {
                let _ = black_box(map.get(&a));
                map.insert(a, ts as u64);
            }
            black_box(map.len())
        })
    });
    group.bench_function("std-fx", |b| {
        b.iter(|| {
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            for (ts, &a) in addrs.iter().enumerate() {
                let _ = black_box(map.get(&a));
                map.insert(a, ts as u64);
            }
            black_box(map.len())
        })
    });
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // Bounded-mode pattern: insert + evict keeps the table at a fixed size.
    let n = 200_000u64;
    let addrs = workload(n);
    let cap = 4_096usize;
    let mut group = c.benchmark_group("hashing/churn");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("robin-hood-fx", |b| {
        b.iter(|| {
            let mut map: RobinHoodMap<u64, u64> = RobinHoodMap::with_capacity(cap);
            let mut fifo: std::collections::VecDeque<u64> = Default::default();
            for (ts, &a) in addrs.iter().enumerate() {
                if map.insert(a, ts as u64).is_none() {
                    fifo.push_back(a);
                    if fifo.len() > cap {
                        let victim = fifo.pop_front().unwrap();
                        map.remove(victim);
                    }
                }
            }
            black_box(map.len())
        })
    });
    group.bench_function("std-siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<u64, u64> = HashMap::with_capacity(cap);
            let mut fifo: std::collections::VecDeque<u64> = Default::default();
            for (ts, &a) in addrs.iter().enumerate() {
                if map.insert(a, ts as u64).is_none() {
                    fifo.push_back(a);
                    if fifo.len() > cap {
                        let victim = fifo.pop_front().unwrap();
                        map.remove(&victim);
                    }
                }
            }
            black_box(map.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_upsert, bench_churn);
criterion_main!(benches);

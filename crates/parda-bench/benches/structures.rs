//! Ablation **D1**: which search structure should back the analyzer?
//!
//! The paper follows Sugumar & Abraham in using a splay tree; Olken's
//! original used an AVL tree; the naïve stack is the O(N·M) strawman that
//! motivates trees at all. Criterion compares all four on a
//! locality-heavy trace (where splay trees shine — recently accessed
//! timestamps stay near the root) and on a uniform trace (where strict
//! balance wins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parda_core::seq::{analyze_naive, analyze_sequential};
use parda_trace::gen::{ReuseProfile, StackDistGen};
use parda_trace::{AddressStream, Trace};
use parda_tree::{AvlTree, SplayTree, Treap, VectorTree};
use std::hint::black_box;

fn local_trace(n: u64) -> Trace {
    StackDistGen::new(n, n / 50, ReuseProfile::geometric(8.0), 1).take_trace(n as usize)
}

fn uniform_trace(n: u64) -> Trace {
    parda_trace::gen::UniformGen::new(n / 50, 0, 2).take_trace(n as usize)
}

fn bench_structures(c: &mut Criterion) {
    let n = 100_000u64;
    for (label, trace) in [("local", local_trace(n)), ("uniform", uniform_trace(n))] {
        let mut group = c.benchmark_group(format!("structures/{label}"));
        group.throughput(Throughput::Elements(n));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("splay", n), &trace, |b, t| {
            b.iter(|| black_box(analyze_sequential::<SplayTree>(t.as_slice(), None)))
        });
        group.bench_with_input(BenchmarkId::new("avl", n), &trace, |b, t| {
            b.iter(|| black_box(analyze_sequential::<AvlTree>(t.as_slice(), None)))
        });
        group.bench_with_input(BenchmarkId::new("treap", n), &trace, |b, t| {
            b.iter(|| black_box(analyze_sequential::<Treap>(t.as_slice(), None)))
        });
        group.bench_with_input(BenchmarkId::new("vector", n), &trace, |b, t| {
            b.iter(|| black_box(analyze_sequential::<VectorTree>(t.as_slice(), None)))
        });
        group.finish();
    }

    // The naïve stack is quadratic: bench a much smaller slice so the suite
    // stays fast, with the same per-element throughput scale for contrast.
    let small = local_trace(5_000);
    let mut group = c.benchmark_group("structures/naive");
    group.throughput(Throughput::Elements(small.len() as u64));
    group.sample_size(10);
    group.bench_function("naive-stack-5k", |b| {
        b.iter(|| black_box(analyze_naive(small.as_slice())))
    });
    group.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);

//! Trace format throughput: v1 sequential decode vs v2 parallel frame
//! decode, and streamed analysis (decode overlapping the phased analyzer)
//! vs load-then-analyze.
//!
//! Acceptance targets: v2 parallel decode at least 2x v1 sequential decode
//! on a 10M-reference zipf trace with 4+ threads, and streamed analyze
//! beating load-then-analyze end to end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parda_core::phased::parda_phased;
use parda_core::{parallel, PardaConfig};
use parda_trace::gen::ZipfGen;
use parda_trace::io::{load_trace, save_trace, save_trace_v2, Encoding};
use parda_trace::stream::FramedStream;
use parda_trace::{AddressStream, SliceStream, Trace};
use parda_tree::SplayTree;
use std::hint::black_box;
use std::path::PathBuf;

const RANKS: usize = 4;
const PHASE_CHUNK: usize = 1 << 19;

fn zipf_trace(n: u64) -> Trace {
    ZipfGen::new(1 << 20, 0.99, 0x1000_0000, 7).take_trace(n as usize)
}

fn bench_trace_io(c: &mut Criterion) {
    // Full scale only when actually measuring; `cargo test` smoke-runs each
    // body once and should stay quick.
    let n: u64 = if c.measuring() { 10_000_000 } else { 500_000 };
    let trace = zipf_trace(n);

    let dir = std::env::temp_dir().join("parda-trace-io-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let v1: PathBuf = dir.join("zipf.v1.trc");
    let v2: PathBuf = dir.join("zipf.v2.trc");
    save_trace(&v1, &trace, Encoding::DeltaVarint).unwrap();
    save_trace_v2(&v2, &trace, Encoding::DeltaVarint).unwrap();
    drop(trace);

    let mut group = c.benchmark_group("trace_io");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("v1-sequential-decode", |b| {
        b.iter(|| black_box(load_trace(&v1).unwrap().len()))
    });
    group.bench_function("v2-parallel-decode", |b| {
        b.iter(|| black_box(load_trace(&v2).unwrap().len()))
    });
    // Load-then-analyze with the same phased engine: the direct control
    // for the streamed row — the only difference is whether the full trace
    // is materialized before analysis or decoded concurrently with it.
    group.bench_function("v2-load-then-analyze", |b| {
        b.iter(|| {
            let t = load_trace(&v2).unwrap();
            let config = PardaConfig::with_ranks(RANKS);
            black_box(
                parda_phased::<SplayTree, _>(SliceStream::new(t.as_slice()), PHASE_CHUNK, &config)
                    .total(),
            )
        })
    });
    // Context row: the one-shot chunked engine over the loaded trace.
    group.bench_function("v2-load-then-analyze-threads", |b| {
        b.iter(|| {
            let t = load_trace(&v2).unwrap();
            let config = PardaConfig::with_ranks(RANKS);
            black_box(parallel::parda_threads::<SplayTree>(t.as_slice(), &config).total())
        })
    });
    group.bench_function("v2-streamed-analyze", |b| {
        b.iter(|| {
            let stream = FramedStream::open(&v2).unwrap();
            let config = PardaConfig::with_ranks(RANKS);
            black_box(parda_phased::<SplayTree, _>(stream, PHASE_CHUNK, &config).total())
        })
    });
    group.finish();

    std::fs::remove_file(&v1).unwrap();
    std::fs::remove_file(&v2).unwrap();
}

criterion_group!(benches, bench_trace_io);
criterion_main!(benches);

//! Ablation **D2** (time axis): Algorithm 4's space-optimized infinity
//! processing vs plain Algorithm 3 re-insertion.
//!
//! The optimization avoids inserting stream elements into the tree/table,
//! trading insertions for a running counter. On workloads with heavy
//! cross-chunk sharing the plain variant pays O(stream) extra tree
//! insertions per rank; this bench quantifies that on the full parallel
//! analyzer. (The space axis is measured by the `ablation_space` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parda_core::{parallel, PardaConfig};
use parda_trace::gen::{ReuseProfile, StackDistGen};
use parda_trace::{AddressStream, Trace};
use parda_tree::SplayTree;
use std::hint::black_box;

/// Heavy cross-chunk sharing: a modest footprint reused at distances well
/// beyond the chunk size, so most distinct elements travel the cascade.
fn shared_trace(n: u64) -> Trace {
    StackDistGen::new(n, n / 25, ReuseProfile::geometric(5_000.0), 9).take_trace(n as usize)
}

fn bench_infinity_processing(c: &mut Criterion) {
    let n = 200_000u64;
    let trace = shared_trace(n);
    let mut group = c.benchmark_group("infinity_opt");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    for ranks in [4usize, 16] {
        let optimized = PardaConfig::with_ranks(ranks).space_optimized(true);
        let plain = PardaConfig::with_ranks(ranks).space_optimized(false);
        group.bench_with_input(
            BenchmarkId::new("optimized", ranks),
            &optimized,
            |b, cfg| {
                b.iter(|| black_box(parallel::parda_threads::<SplayTree>(trace.as_slice(), cfg)))
            },
        );
        group.bench_with_input(BenchmarkId::new("plain", ranks), &plain, |b, cfg| {
            b.iter(|| black_box(parallel::parda_threads::<SplayTree>(trace.as_slice(), cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_infinity_processing);
criterion_main!(benches);

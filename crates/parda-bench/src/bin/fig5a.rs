//! Regenerates the paper's **Figure 5(a)**: slowdown factor per benchmark
//! as the cache bound varies (paper: 512 Kw → 4 Mw), with the processor
//! count and pipe size fixed.
//!
//! Run with: `cargo run --release -p parda-bench --bin fig5a -- [--refs N] [--ranks P] [--json]`

use parda_bench::report::line_chart;
use parda_bench::{build_workload, time, BenchArgs, Report};
use parda_core::{parallel, PardaConfig};
use parda_trace::spec::SPEC2006;
use parda_tree::SplayTree;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    slowdowns: Vec<(u64, f64)>,
}

fn main() {
    let args = BenchArgs::parse(500_000, 8);
    // The paper sweeps one absolute bound set across all benchmarks
    // (512Kw, 1Mw, 2Mw, 4Mw over traces of ~10^10). Scale the absolute
    // bounds by the same N ratio we scale traces by (~2·10^4), giving
    // 256w..2048w.
    let bounds = [256u64, 512, 1024, 2048];

    println!(
        "Figure 5(a) reproduction: refs/bench={} ranks={} bounds={:?} (≙ 512Kw..4Mw)",
        args.refs, args.ranks, bounds
    );

    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(bounds.iter().map(|b| format!("x@{b}w")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let report = Report::new(&header_refs, args.json);
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    for bench in &SPEC2006 {
        let w = build_workload(bench, args.refs, args.seed);
        let mut row = Row {
            benchmark: bench.name,
            slowdowns: Vec::new(),
        };
        let mut cells = vec![bench.name.to_string()];
        for &bound in &bounds {
            let mut config = PardaConfig::with_ranks(args.ranks);
            config.bound = Some(bound);
            let (_, secs) =
                time(|| parallel::parda_threads::<SplayTree>(w.trace.as_slice(), &config));
            let x = w.slowdown(secs);
            row.slowdowns.push((bound, x));
            cells.push(format!("{x:.1}"));
        }
        all_rows.push(row.slowdowns.iter().map(|&(_, x)| x).collect());
        report.print_row(&mut out, &cells, &row);
    }
    let x_labels: Vec<String> = bounds.iter().map(|b| format!("{b}w")).collect();
    let agg = |f: &dyn Fn(&[f64]) -> f64| -> Vec<f64> {
        (0..bounds.len())
            .map(|i| f(&all_rows.iter().map(|r| r[i]).collect::<Vec<_>>()))
            .collect()
    };
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let minf = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
    let maxf = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\n{}",
        line_chart(
            "slowdown vs cache bound across the suite (cf. paper Figure 5a)",
            &x_labels,
            &[
                ("geo-mean".to_string(), agg(&geo)),
                ("min".to_string(), agg(&minf)),
                ("max".to_string(), agg(&maxf)),
            ],
            12,
        )
    );
    println!(
        "\nshape check vs paper Fig. 5(a): larger bounds generally cost slightly more \
         (bigger trees), with occasional reversals where replacement overhead dominates \
         — the paper calls out the same non-monotonicity."
    );
}

//! Ablation **D2**: the space impact of Algorithm 4 (space-optimized local
//! infinity processing).
//!
//! The paper proves that with the optimization the final aggregate state is
//! O(M) while the plain algorithm grows to O(np·M). This binary measures
//! the aggregate number of live tree nodes across all ranks after the
//! cascade, with the optimization on and off, across rank counts.
//!
//! Run with: `cargo run --release -p parda-bench --bin ablation_space -- [--refs N] [--json]`

use parda_bench::{BenchArgs, Report};
use parda_core::{Engine, MissSink};
use parda_trace::gen::{ReuseProfile, StackDistGen};
use parda_trace::{chunk_slice, AddressStream};
use parda_tree::SplayTree;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ranks: usize,
    live_optimized: usize,
    live_plain: usize,
    m: usize,
}

/// Run the cascade manually so the per-rank engines stay inspectable.
fn aggregate_live(trace: &[u64], np: usize, optimized: bool) -> usize {
    let chunks = chunk_slice(trace, np);
    let mut engines: Vec<Engine<SplayTree>> = Vec::new();
    let mut own_infs: Vec<Vec<u64>> = Vec::new();
    let mut start = 0u64;
    for chunk in &chunks {
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf = Vec::new();
        engine.process_chunk(chunk, start, MissSink::Forward(&mut inf));
        start += chunk.len() as u64;
        engines.push(engine);
        own_infs.push(inf);
    }
    let starts: Vec<u64> = chunks
        .iter()
        .scan(0u64, |acc, c| {
            let s = *acc;
            *acc += c.len() as u64;
            Some(s)
        })
        .collect();

    let mut stream: Vec<u64> = Vec::new();
    for p in (1..np).rev() {
        let mut survivors = Vec::new();
        if optimized {
            engines[p].process_infinities(&stream, &mut survivors);
        } else {
            let ts = starts[p] + chunks[p].len() as u64;
            engines[p].process_infinities_unoptimized(&stream, ts, &mut survivors);
        }
        let mut fwd = own_infs[p].clone();
        fwd.extend_from_slice(&survivors);
        stream = fwd;
    }
    let mut survivors = Vec::new();
    if optimized {
        engines[0].process_infinities(&stream, &mut survivors);
    } else {
        let ts = starts[0] + chunks[0].len() as u64;
        engines[0].process_infinities_unoptimized(&stream, ts, &mut survivors);
    }
    engines.iter().map(|e| e.live()).sum()
}

fn main() {
    let args = BenchArgs::parse(200_000, 8);
    // A workload with heavy cross-chunk sharing maximizes replica blowup:
    // uniform reuse over a footprint much smaller than the chunk size.
    let m = 10_000u64;
    let trace = StackDistGen::new(args.refs, m, ReuseProfile::geometric(2_000.0), args.seed)
        .take_trace(args.refs as usize);

    println!(
        "Ablation D2 (Algorithm 4 space optimization): N={} M={m}",
        trace.len()
    );
    let report = Report::new(&["ranks", "live_opt", "live_plain", "plain/opt"], args.json);
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    for np in [2usize, 4, 8, 16, 32] {
        let live_optimized = aggregate_live(trace.as_slice(), np, true);
        let live_plain = aggregate_live(trace.as_slice(), np, false);
        let row = Row {
            ranks: np,
            live_optimized,
            live_plain,
            m: m as usize,
        };
        report.print_row(
            &mut out,
            &[
                np.to_string(),
                live_optimized.to_string(),
                live_plain.to_string(),
                format!("{:.2}", live_plain as f64 / live_optimized as f64),
            ],
            &row,
        );
    }
    println!(
        "\nexpected shape (paper §IV-C): optimized stays ≈ M = {m} regardless of ranks; \
         plain grows toward np·M as every rank retains replicas of shared elements."
    );
}

//! Approximate-analysis accuracy/speed/memory trade-off: the
//! `parda_core::approx` engines (SHARDS fixed-rate, SHARDS fixed-size,
//! AET) against exact analysis.
//!
//! The paper notes Parda "can be combined with approximate analysis
//! techniques to further improve the performance"; this binary quantifies
//! that combination. For each workload and approx mode it reports the
//! speedup over exact analysis, the mean/max absolute miss-ratio error
//! across a pow-2 capacity sweep, and the sketch memory — the axis exact
//! analysis cannot offer (O(M) tree vs O(s_max) sketch).
//!
//! Emits machine-readable JSON (`BENCH_approx.json` at the repo root) so
//! future PRs and ci.sh can diff accuracy against the recorded floors
//! (`BENCH_approx_floor.json`).
//!
//!   cargo run --release -p parda-bench --bin sampling_accuracy -- \
//!       --refs 10000000 --out BENCH_approx.json

use parda_bench::time;
use parda_core::approx::analyze_approx;
use parda_core::seq::analyze_sequential;
use parda_core::ApproxMode;
use parda_hist::ReuseHistogram;
use parda_trace::gen::ZipfGen;
use parda_trace::spec::SpecBenchmark;
use parda_trace::{AddressStream, Trace};
use parda_tree::SplayTree;
use serde::Serialize;

/// One measured (workload, mode) configuration.
#[derive(Serialize)]
struct Row {
    workload: String,
    mode: String,
    mae: f64,
    max_err: f64,
    speedup: f64,
    sketch_bytes: u64,
    sampled_addrs: u64,
    effective_rate: f64,
}

/// The whole report (`BENCH_approx.json`).
#[derive(Serialize)]
struct ApproxReport {
    bench: &'static str,
    refs: u64,
    seed: u64,
    capacity_floor: u64,
    rows: Vec<Row>,
}

/// Pow-2 capacities where the MRC comparison is meaningful: spatial
/// sampling cannot resolve distances below its resolution 1/R, so the
/// sweep starts at a floor well above 1/R for every mode measured here.
fn capacities(exact: &ReuseHistogram, floor: u64) -> Vec<u64> {
    (0..)
        .map(|i| 1u64 << i)
        .take_while(|&c| c <= exact.max_distance().unwrap_or(1) * 2)
        .filter(|&c| c >= floor)
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let out = get("--out").unwrap_or_else(|| "BENCH_approx.json".into());
    const CAPACITY_FLOOR: u64 = 1024;

    let modes = [
        ApproxMode::ShardsFixedRate { rate: 0.1 },
        ApproxMode::ShardsFixedRate { rate: 0.01 },
        ApproxMode::ShardsFixedRate { rate: 0.001 },
        ApproxMode::ShardsFixedSize { s_max: 1024 },
        ApproxMode::ShardsFixedSize { s_max: 8192 },
        ApproxMode::Aet { rate: 0.01 },
    ];

    // The zipf workload mirrors the hotpath anchor (footprint = refs/10);
    // the SPEC models cover locality shapes the paper's Table IV measures.
    let workloads: Vec<(String, Trace)> = vec![
        (
            "zipf".to_string(),
            ZipfGen::new((refs / 10).max(1_000) as usize, 0.8, 0, seed).take_trace(refs as usize),
        ),
        (
            "mcf".to_string(),
            SpecBenchmark::by_name("mcf")
                .expect("known benchmark")
                .generator(refs, seed)
                .take_trace(refs as usize),
        ),
    ];

    println!(
        "{:<8} {:<16} {:>8} {:>8} {:>8} {:>12} {:>10}",
        "workload", "mode", "mae", "max_err", "speedup", "sketch_bytes", "eff_rate"
    );
    let mut rows = Vec::new();
    for (name, trace) in &workloads {
        let (exact, exact_secs) = time(|| analyze_sequential::<SplayTree>(trace.as_slice(), None));
        let caps = capacities(&exact, CAPACITY_FLOOR);
        for mode in modes {
            let ((hist, metrics), approx_secs) = time(|| analyze_approx(trace.as_slice(), mode));
            let mae = hist.mrc_mean_absolute_error(&exact, &caps);
            let max_err = caps
                .iter()
                .map(|&c| (hist.miss_ratio(c) - exact.miss_ratio(c)).abs())
                .fold(0.0f64, f64::max);
            let row = Row {
                workload: name.clone(),
                mode: mode.spec(),
                mae,
                max_err,
                speedup: exact_secs / approx_secs.max(1e-9),
                sketch_bytes: metrics.sketch_bytes,
                sampled_addrs: metrics.sampled_addrs,
                effective_rate: metrics.effective_rate,
            };
            println!(
                "{:<8} {:<16} {:>8.4} {:>8.4} {:>8.2} {:>12} {:>10.5}",
                row.workload,
                row.mode,
                row.mae,
                row.max_err,
                row.speedup,
                row.sketch_bytes,
                row.effective_rate
            );
            rows.push(row);
        }
    }

    let report = ApproxReport {
        bench: "sampling_accuracy",
        refs,
        seed,
        capacity_floor: CAPACITY_FLOOR,
        rows,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("\nwrote {out}");
    println!(
        "expected shape: speedup grows toward 1/R while MAE stays in the \
         few-percent band; fixed-size rows hold sketch_bytes flat (O(s_max)) \
         by driving effective_rate down instead."
    );
}

//! Extension experiment: accuracy/speed trade-off of the sampling
//! estimator (`parda_core::sampled`) against exact analysis.
//!
//! The paper notes Parda "can be combined with approximate analysis
//! techniques to further improve the performance"; this binary quantifies
//! that combination: for each SPEC workload model and sampling rate
//! 2⁻¹…2⁻⁶, the speedup over exact analysis and the worst-case absolute
//! miss-ratio error across a capacity sweep.
//!
//! Run with: `cargo run --release -p parda-bench --bin sampling_accuracy -- [--refs N] [--json]`

use parda_bench::{time, BenchArgs, Report};
use parda_core::sampled::{analyze_sampled, SampleRate};
use parda_core::seq::analyze_sequential;
use parda_trace::spec::SpecBenchmark;
use parda_trace::AddressStream;
use parda_tree::SplayTree;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    rate_log2: u32,
    speedup: f64,
    max_mrc_error: f64,
}

fn main() {
    let args = BenchArgs::parse(1_000_000, 1);
    let rates = [1u32, 2, 3, 4, 5, 6];
    let benchmarks = ["mcf", "gcc", "soplex", "sphinx3"];

    println!(
        "Sampling estimator accuracy (refs={}, capacities = pow2 sweep per benchmark)",
        args.refs
    );
    let report = Report::new(&["benchmark", "rate", "speedup", "max_mrc_err"], args.json);
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    for name in benchmarks {
        let bench = SpecBenchmark::by_name(name).expect("known benchmark");
        let trace = bench
            .generator(args.refs, args.seed)
            .take_trace(args.refs as usize);
        let (exact, exact_secs) = time(|| analyze_sequential::<SplayTree>(trace.as_slice(), None));
        let capacities: Vec<u64> = (0..)
            .map(|i| 1u64 << i)
            .take_while(|&c| c <= exact.max_distance().unwrap_or(1) * 2)
            .collect();

        for &rate in &rates {
            let (approx, approx_secs) = time(|| {
                analyze_sampled::<SplayTree>(trace.as_slice(), SampleRate::one_in_pow2(rate))
            });
            // The estimator's distance resolution is 1/R = 2^rate: below a
            // few resolution steps the scaled histogram cannot resolve the
            // MRC, so error is only meaningful at capacities ≥ 8·2^rate
            // (SHARDS evaluates at realistic cache sizes for the same
            // reason).
            let floor = 8u64 << rate;
            let max_err = capacities
                .iter()
                .filter(|&&c| c >= floor)
                .map(|&c| (approx.miss_ratio(c) - exact.miss_ratio(c)).abs())
                .fold(0.0f64, f64::max);
            let row = Row {
                benchmark: bench.name,
                rate_log2: rate,
                speedup: exact_secs / approx_secs.max(1e-9),
                max_mrc_error: max_err,
            };
            report.print_row(
                &mut out,
                &[
                    row.benchmark.to_string(),
                    format!("1/{}", 1u64 << rate),
                    format!("{:.2}", row.speedup),
                    format!("{:.4}", row.max_mrc_error),
                ],
                &row,
            );
        }
    }
    println!(
        "\nexpected shape: speedup grows toward the inverse rate (fewer monitored \
         references) while the error at resolvable capacities grows slowly. Note the \
         error column only covers capacities >= 8/R: spatial sampling cannot resolve \
         the MRC below its distance resolution 1/R."
    );
}

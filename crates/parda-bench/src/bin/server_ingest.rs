//! Server ingest-throughput benchmark: the daemon's perf anchor.
//!
//! Measures aggregate loopback refs/s for concurrent client sessions
//! submitting zipf traces to an in-process daemon, next to the offline
//! streaming baseline (the identical analysis with no sockets or
//! framing). Exact-mode configs run 1/4/8 sessions over the full trace
//! and 16 sessions over a quarter trace; sketch-mode configs
//! (`approx=shards-smax:8192`) push 64 and 256 concurrent sessions to
//! exercise the constant-space session claim. Each row reports aggregate
//! refs/s, the server's p99 session latency (admission to reply), and the
//! per-session resident-memory high-water mark from the shard metrics.
//!
//! Emits machine-readable JSON (`BENCH_server.json` at the repo root) so
//! future PRs can diff the daemon against the numbers recorded here;
//! `BENCH_server_floor.json` holds the minimums ci.sh enforces.
//!
//!   cargo run --release -p parda-bench --bin server_ingest -- \
//!       --refs 2000000 --out BENCH_server.json

use parda_bench::time;
use parda_comm::pipe;
use parda_core::Analysis;
use parda_obs::ServerMetrics;
use parda_server::{submit, RetryPolicy, Server, ServerConfig, SubmitOptions};
use parda_trace::gen::ZipfGen;
use parda_trace::{AddressStream, Trace};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// One measured configuration.
#[derive(Serialize)]
struct Row {
    mode: String,
    sessions: usize,
    /// References each session streamed.
    refs_per_session: u64,
    /// Aggregate across all concurrent sessions.
    refs_per_sec: u64,
    secs: f64,
    /// p99 session wall time (admission to reply) from the server's
    /// merged shard histograms; 0 for the offline baseline.
    p99_session_ms: f64,
    /// Largest per-session analysis-state estimate any shard observed —
    /// the "resident memory per session" readout.
    mem_per_session_bytes: u64,
    /// Largest sketch among approx sessions (0 for exact configs).
    sketch_bytes_hwm: u64,
    /// Successful RESUMEs across all clients (0 unless the row injects
    /// connection failures).
    resumes: u64,
    /// Slowest first-resume latency any client paid (drop detected to
    /// resume-ACCEPT); 0 when no connection was lost.
    resume_latency_ms: f64,
}

/// The whole report (`BENCH_server.json`).
#[derive(Serialize)]
struct ServerReport {
    bench: &'static str,
    refs: u64,
    footprint: u64,
    theta: f64,
    seed: u64,
    runs_per_config: u32,
    results: Vec<Row>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let footprint: u64 = get("--footprint")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let theta: f64 = get("--theta").and_then(|v| v.parse().ok()).unwrap_or(0.99);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let runs: u32 = get("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = get("--out").unwrap_or_else(|| "BENCH_server.json".into());

    eprintln!("server_ingest: generating {refs} zipf({theta}) refs over {footprint} addresses");
    let trace: Trace = ZipfGen::new(footprint as usize, theta, 0, seed).take_trace(refs as usize);
    let trace = Arc::new(trace);

    let mut results = Vec::new();

    // Offline streaming baseline: one session's trace through the
    // streaming analyzer with no sockets, framing, or protocol.
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (hist, secs) = time(|| {
            let (mut tx, rx) = pipe(1 << 16, pipe::DEFAULT_BATCH);
            let t = Arc::clone(&trace);
            let feeder = std::thread::spawn(move || {
                tx.write_all(t.as_slice());
            });
            let (hist, _) = Analysis::new().run_stream(rx);
            feeder.join().unwrap();
            hist
        });
        black_box(hist);
        best = best.min(secs);
    }
    push_row(
        &mut results,
        "offline-stream",
        1,
        refs,
        best,
        &ServerMetrics::default(),
        0,
        0,
    );

    // Exact sessions: the full trace at 1/4/8 (the historical surface),
    // a quarter trace at 16.
    let exact = SubmitOptions::default();
    for (sessions, per_session) in [(1usize, refs), (4, refs), (8, refs), (16, refs / 4)] {
        let (secs, metrics) = best_config(runs, &trace, sessions, per_session, &exact);
        push_row(
            &mut results,
            "loopback",
            sessions,
            per_session,
            secs,
            &metrics,
            0,
            0,
        );
    }

    // Sketch sessions: constant-space per session, so the daemon can hold
    // hundreds of them — the SHARDS-at-daemon-scale claim.
    let mut sketch = SubmitOptions::default();
    sketch
        .config
        .push(("approx".into(), "shards-smax:8192".into()));
    for (sessions, per_session) in [(64usize, refs / 8), (256, refs / 32)] {
        let (secs, metrics) = best_config(runs, &trace, sessions, per_session, &sketch);
        push_row(
            &mut results,
            "loopback-sketch",
            sessions,
            per_session,
            secs,
            &metrics,
            0,
            0,
        );
    }

    // Flaky network: every client's connection is severed at three fixed
    // sent-frame marks (deterministic, seed-independent chaos), forcing a
    // reconnect + RESUME each time. Reports goodput — unique trace refs
    // delivered per wall second, with retransmission and reconnect
    // overhead inside the clock — and the slowest first-resume latency.
    {
        let (sessions, per_session) = (4usize, refs / 2);
        let (secs, metrics, resumes, latency_ns) =
            flaky_config(runs, &trace, sessions, per_session);
        push_row(
            &mut results,
            "loopback-flaky",
            sessions,
            per_session,
            secs,
            &metrics,
            resumes,
            latency_ns,
        );
    }

    let report = ServerReport {
        bench: "server_ingest",
        refs,
        footprint,
        theta,
        seed,
        runs_per_config: runs,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH json");
    eprintln!("server_ingest: wrote {out}");
    println!("{json}");
}

/// Run one (sessions × refs) config `runs` times against a fresh daemon
/// each time; returns the fastest wall time and that run's server metrics.
fn best_config(
    runs: u32,
    trace: &Arc<Trace>,
    sessions: usize,
    per_session: u64,
    opts: &SubmitOptions,
) -> (f64, ServerMetrics) {
    let mut best = f64::INFINITY;
    let mut best_metrics = ServerMetrics::default();
    for _ in 0..runs {
        let server = Server::bind(ServerConfig {
            max_sessions: sessions,
            accept_limit: Some(sessions as u64),
            ..ServerConfig::default()
        })
        .expect("bind benchmark server");
        let addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let ((), secs) = time(|| {
            let clients: Vec<_> = (0..sessions)
                .map(|_| {
                    let t = Arc::clone(trace);
                    let addr = addr.clone();
                    let opts = opts.clone();
                    std::thread::spawn(move || {
                        let slice = &t.as_slice()[..per_session as usize];
                        submit(&addr, slice, &opts).expect("benchmark submission")
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().unwrap())
                .for_each(|reply| {
                    black_box(reply.histogram);
                })
        });
        let metrics = daemon.join().unwrap();
        assert_eq!(
            metrics.sessions_completed, sessions as u64,
            "every benchmark session must complete"
        );
        if secs < best {
            best = secs;
            best_metrics = metrics;
        }
    }
    (best, best_metrics)
}

/// The flaky-network config: like `best_config`, but every client severs
/// its own connection at three fixed sent-frame marks and recovers via
/// the retrying RESUME path. The server keeps orphans parked long enough
/// that no retention expiry can race the reconnect, and ACKs every 8th
/// frame so resumed clients retransmit bounded tails. Returns the fastest
/// run's wall time, metrics, total successful resumes, and the slowest
/// first-resume latency any client saw in that run.
fn flaky_config(
    runs: u32,
    trace: &Arc<Trace>,
    sessions: usize,
    per_session: u64,
) -> (f64, ServerMetrics, u64, u64) {
    // Smaller frames than the default so even the ci.sh smoke scale
    // (--refs 400000) leaves room for three staggered cuts per client.
    let frame_refs: usize = 16 * 1024;
    let frames = per_session.div_ceil(frame_refs as u64);
    let mut best = f64::INFINITY;
    let mut best_metrics = ServerMetrics::default();
    let mut best_resumes = 0u64;
    let mut best_latency_ns = 0u64;
    for _ in 0..runs {
        let server = Server::bind(ServerConfig {
            // Headroom over `sessions`: a reconnecting client's RESUME
            // shell is admitted before it adopts the parked session.
            max_sessions: sessions * 2,
            orphan_retention: Duration::from_secs(60),
            ack_every: 8,
            ..ServerConfig::default()
        })
        .expect("bind benchmark server");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.shutdown_handle();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        // Three cuts per client at quarter marks, staggered by client
        // index so the drops don't land in lockstep across sessions.
        // Marks are cumulative sent-frame counts, so later ones stay
        // valid after the earlier retransmissions.
        let plans: Vec<Vec<u64>> = (0..sessions)
            .map(|i| {
                let mut drops: Vec<u64> = [frames / 4, frames / 2, 3 * frames / 4]
                    .into_iter()
                    .map(|p| p + i as u64)
                    .filter(|&p| p >= 1 && p < frames)
                    .collect();
                drops.dedup();
                drops
            })
            .collect();
        let expected_resumes: u64 = plans.iter().map(|p| p.len() as u64).sum();

        let ((resumes, latency_ns), secs) = time(|| {
            let clients: Vec<_> = plans
                .iter()
                .map(|drops| {
                    let t = Arc::clone(trace);
                    let addr = addr.clone();
                    let mut opts = SubmitOptions {
                        retry: RetryPolicy::with_attempts(10),
                        chaos_drop_points: drops.clone(),
                        frame_refs,
                        ..SubmitOptions::default()
                    };
                    opts.retry.backoff = Duration::from_millis(5);
                    opts.retry.backoff_max = Duration::from_millis(100);
                    std::thread::spawn(move || {
                        let slice = &t.as_slice()[..per_session as usize];
                        submit(&addr, slice, &opts).expect("benchmark submission")
                    })
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).fold(
                (0u64, 0u64),
                |(resumes, latency), reply| {
                    black_box(&reply.histogram);
                    (
                        resumes + u64::from(reply.retry.resumes),
                        latency.max(reply.retry.resume_latency_ns),
                    )
                },
            )
        });
        handle.shutdown();
        let metrics = daemon.join().unwrap();
        assert_eq!(
            metrics.sessions_completed, sessions as u64,
            "every flaky-network session must complete"
        );
        assert_eq!(metrics.sessions_failed, 0, "no session may fail");
        assert_eq!(
            resumes, expected_resumes,
            "every injected drop must recover through RESUME"
        );
        if secs < best {
            best = secs;
            best_metrics = metrics;
            best_resumes = resumes;
            best_latency_ns = latency_ns;
        }
    }
    (best, best_metrics, best_resumes, best_latency_ns)
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    results: &mut Vec<Row>,
    mode: &str,
    sessions: usize,
    per_session: u64,
    secs: f64,
    metrics: &ServerMetrics,
    resumes: u64,
    resume_latency_ns: u64,
) {
    let total_refs = per_session * sessions as u64;
    let rps = (total_refs as f64 / secs) as u64;
    let mem = metrics
        .per_shard
        .iter()
        .map(|s| s.state_bytes_hwm)
        .max()
        .unwrap_or(0);
    let p99_ms = metrics.p99_session_ns as f64 / 1e6;
    let resume_latency_ms = resume_latency_ns as f64 / 1e6;
    let resume_note = if resumes > 0 {
        format!("  resumes={resumes} resume_latency={resume_latency_ms:.1}ms")
    } else {
        String::new()
    };
    eprintln!(
        "  {mode:<16} sessions={sessions:<4} {rps:>12} refs/s ({secs:.3}s)  \
         p99={p99_ms:.1}ms  mem/session={mem}B{resume_note}"
    );
    results.push(Row {
        mode: mode.to_string(),
        sessions,
        refs_per_session: per_session,
        refs_per_sec: rps,
        secs,
        p99_session_ms: p99_ms,
        mem_per_session_bytes: mem,
        sketch_bytes_hwm: metrics.sketch_bytes_hwm,
        resumes,
        resume_latency_ms,
    });
}

//! Server ingest-throughput benchmark: the daemon's perf anchor.
//!
//! Measures aggregate loopback refs/s for 1, 4, and 8 concurrent client
//! sessions submitting the same zipf trace to one in-process daemon, next
//! to the offline streaming baseline (the identical phased analysis fed
//! through a `parda_comm::pipe` with no sockets or framing), and emits
//! machine-readable JSON (`BENCH_server.json` at the repo root) so future
//! PRs can diff the protocol overhead against the numbers recorded here.
//!
//!   cargo run --release -p parda-bench --bin server_ingest -- \
//!       --refs 2000000 --out BENCH_server.json

use parda_bench::time;
use parda_comm::pipe;
use parda_core::Analysis;
use parda_server::{submit, Server, ServerConfig, SubmitOptions};
use parda_trace::gen::ZipfGen;
use parda_trace::{AddressStream, Trace};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;

/// One measured configuration.
#[derive(Serialize)]
struct Row {
    mode: String,
    sessions: usize,
    /// Aggregate across all concurrent sessions.
    refs_per_sec: u64,
    secs: f64,
}

/// The whole report (`BENCH_server.json`).
#[derive(Serialize)]
struct ServerReport {
    bench: &'static str,
    refs: u64,
    footprint: u64,
    theta: f64,
    seed: u64,
    runs_per_config: u32,
    results: Vec<Row>,
}

fn best_of<R>(runs: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (r, secs) = time(&mut f);
        black_box(r);
        best = best.min(secs);
    }
    best
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let footprint: u64 = get("--footprint")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let theta: f64 = get("--theta").and_then(|v| v.parse().ok()).unwrap_or(0.99);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let runs: u32 = get("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = get("--out").unwrap_or_else(|| "BENCH_server.json".into());

    eprintln!("server_ingest: generating {refs} zipf({theta}) refs over {footprint} addresses");
    let trace: Trace = ZipfGen::new(footprint as usize, theta, 0, seed).take_trace(refs as usize);
    let trace = Arc::new(trace);

    let mut results = Vec::new();

    // Offline streaming baseline: the exact per-session pipeline (bounded
    // pipe into the phased engine) minus the protocol and the kernel.
    let secs = best_of(runs, || {
        let (mut tx, rx) = pipe(1 << 16, pipe::DEFAULT_BATCH);
        let t = Arc::clone(&trace);
        let feeder = std::thread::spawn(move || {
            tx.write_all(t.as_slice());
        });
        let (hist, _) = Analysis::new().run_stream(rx);
        feeder.join().unwrap();
        hist
    });
    push_row(&mut results, "offline-stream", 1, refs, secs);

    // Loopback sessions: one daemon, N concurrent submitting clients.
    let server = Server::bind(ServerConfig {
        max_sessions: 8,
        ..ServerConfig::default()
    })
    .expect("bind benchmark server");
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    for sessions in [1usize, 4, 8] {
        let secs = best_of(runs, || {
            let clients: Vec<_> = (0..sessions)
                .map(|_| {
                    let t = Arc::clone(&trace);
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        submit(&addr, t.as_slice(), &SubmitOptions::default())
                            .expect("benchmark submission")
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().unwrap())
                .for_each(|reply| {
                    black_box(reply.histogram);
                })
        });
        // Aggregate: every session ingested the full trace.
        push_row(
            &mut results,
            "loopback",
            sessions,
            refs * sessions as u64,
            secs,
        );
    }

    stop.shutdown();
    daemon.join().unwrap();

    let report = ServerReport {
        bench: "server_ingest",
        refs,
        footprint,
        theta,
        seed,
        runs_per_config: runs,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH json");
    eprintln!("server_ingest: wrote {out}");
    println!("{json}");
}

fn push_row(results: &mut Vec<Row>, mode: &str, sessions: usize, total_refs: u64, secs: f64) {
    let rps = (total_refs as f64 / secs) as u64;
    eprintln!("  {mode:<16} sessions={sessions} {rps:>12} refs/s ({secs:.3}s)");
    results.push(Row {
        mode: mode.to_string(),
        sessions,
        refs_per_sec: rps,
        secs,
    });
}

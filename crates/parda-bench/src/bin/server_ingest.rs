//! Server ingest-throughput benchmark: the daemon's perf anchor.
//!
//! Measures aggregate loopback refs/s for concurrent client sessions
//! submitting zipf traces to an in-process daemon, next to the offline
//! streaming baseline (the identical analysis with no sockets or
//! framing). Exact-mode configs run 1/4/8 sessions over the full trace
//! and 16 sessions over a quarter trace; sketch-mode configs
//! (`approx=shards-smax:8192`) push 64 and 256 concurrent sessions to
//! exercise the constant-space session claim. Each row reports aggregate
//! refs/s, the server's p99 session latency (admission to reply), and the
//! per-session resident-memory high-water mark from the shard metrics.
//!
//! Emits machine-readable JSON (`BENCH_server.json` at the repo root) so
//! future PRs can diff the daemon against the numbers recorded here;
//! `BENCH_server_floor.json` holds the minimums ci.sh enforces.
//!
//!   cargo run --release -p parda-bench --bin server_ingest -- \
//!       --refs 2000000 --out BENCH_server.json

use parda_bench::time;
use parda_comm::pipe;
use parda_core::Analysis;
use parda_obs::ServerMetrics;
use parda_server::{submit, Server, ServerConfig, SubmitOptions};
use parda_trace::gen::ZipfGen;
use parda_trace::{AddressStream, Trace};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;

/// One measured configuration.
#[derive(Serialize)]
struct Row {
    mode: String,
    sessions: usize,
    /// References each session streamed.
    refs_per_session: u64,
    /// Aggregate across all concurrent sessions.
    refs_per_sec: u64,
    secs: f64,
    /// p99 session wall time (admission to reply) from the server's
    /// merged shard histograms; 0 for the offline baseline.
    p99_session_ms: f64,
    /// Largest per-session analysis-state estimate any shard observed —
    /// the "resident memory per session" readout.
    mem_per_session_bytes: u64,
    /// Largest sketch among approx sessions (0 for exact configs).
    sketch_bytes_hwm: u64,
}

/// The whole report (`BENCH_server.json`).
#[derive(Serialize)]
struct ServerReport {
    bench: &'static str,
    refs: u64,
    footprint: u64,
    theta: f64,
    seed: u64,
    runs_per_config: u32,
    results: Vec<Row>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let footprint: u64 = get("--footprint")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let theta: f64 = get("--theta").and_then(|v| v.parse().ok()).unwrap_or(0.99);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let runs: u32 = get("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = get("--out").unwrap_or_else(|| "BENCH_server.json".into());

    eprintln!("server_ingest: generating {refs} zipf({theta}) refs over {footprint} addresses");
    let trace: Trace = ZipfGen::new(footprint as usize, theta, 0, seed).take_trace(refs as usize);
    let trace = Arc::new(trace);

    let mut results = Vec::new();

    // Offline streaming baseline: one session's trace through the
    // streaming analyzer with no sockets, framing, or protocol.
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (hist, secs) = time(|| {
            let (mut tx, rx) = pipe(1 << 16, pipe::DEFAULT_BATCH);
            let t = Arc::clone(&trace);
            let feeder = std::thread::spawn(move || {
                tx.write_all(t.as_slice());
            });
            let (hist, _) = Analysis::new().run_stream(rx);
            feeder.join().unwrap();
            hist
        });
        black_box(hist);
        best = best.min(secs);
    }
    push_row(
        &mut results,
        "offline-stream",
        1,
        refs,
        best,
        &ServerMetrics::default(),
    );

    // Exact sessions: the full trace at 1/4/8 (the historical surface),
    // a quarter trace at 16.
    let exact = SubmitOptions::default();
    for (sessions, per_session) in [(1usize, refs), (4, refs), (8, refs), (16, refs / 4)] {
        let (secs, metrics) = best_config(runs, &trace, sessions, per_session, &exact);
        push_row(
            &mut results,
            "loopback",
            sessions,
            per_session,
            secs,
            &metrics,
        );
    }

    // Sketch sessions: constant-space per session, so the daemon can hold
    // hundreds of them — the SHARDS-at-daemon-scale claim.
    let mut sketch = SubmitOptions::default();
    sketch
        .config
        .push(("approx".into(), "shards-smax:8192".into()));
    for (sessions, per_session) in [(64usize, refs / 8), (256, refs / 32)] {
        let (secs, metrics) = best_config(runs, &trace, sessions, per_session, &sketch);
        push_row(
            &mut results,
            "loopback-sketch",
            sessions,
            per_session,
            secs,
            &metrics,
        );
    }

    let report = ServerReport {
        bench: "server_ingest",
        refs,
        footprint,
        theta,
        seed,
        runs_per_config: runs,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH json");
    eprintln!("server_ingest: wrote {out}");
    println!("{json}");
}

/// Run one (sessions × refs) config `runs` times against a fresh daemon
/// each time; returns the fastest wall time and that run's server metrics.
fn best_config(
    runs: u32,
    trace: &Arc<Trace>,
    sessions: usize,
    per_session: u64,
    opts: &SubmitOptions,
) -> (f64, ServerMetrics) {
    let mut best = f64::INFINITY;
    let mut best_metrics = ServerMetrics::default();
    for _ in 0..runs {
        let server = Server::bind(ServerConfig {
            max_sessions: sessions,
            accept_limit: Some(sessions as u64),
            ..ServerConfig::default()
        })
        .expect("bind benchmark server");
        let addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let ((), secs) = time(|| {
            let clients: Vec<_> = (0..sessions)
                .map(|_| {
                    let t = Arc::clone(trace);
                    let addr = addr.clone();
                    let opts = opts.clone();
                    std::thread::spawn(move || {
                        let slice = &t.as_slice()[..per_session as usize];
                        submit(&addr, slice, &opts).expect("benchmark submission")
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().unwrap())
                .for_each(|reply| {
                    black_box(reply.histogram);
                })
        });
        let metrics = daemon.join().unwrap();
        assert_eq!(
            metrics.sessions_completed, sessions as u64,
            "every benchmark session must complete"
        );
        if secs < best {
            best = secs;
            best_metrics = metrics;
        }
    }
    (best, best_metrics)
}

fn push_row(
    results: &mut Vec<Row>,
    mode: &str,
    sessions: usize,
    per_session: u64,
    secs: f64,
    metrics: &ServerMetrics,
) {
    let total_refs = per_session * sessions as u64;
    let rps = (total_refs as f64 / secs) as u64;
    let mem = metrics
        .per_shard
        .iter()
        .map(|s| s.state_bytes_hwm)
        .max()
        .unwrap_or(0);
    let p99_ms = metrics.p99_session_ns as f64 / 1e6;
    eprintln!(
        "  {mode:<16} sessions={sessions:<4} {rps:>12} refs/s ({secs:.3}s)  \
         p99={p99_ms:.1}ms  mem/session={mem}B"
    );
    results.push(Row {
        mode: mode.to_string(),
        sessions,
        refs_per_session: per_session,
        refs_per_sec: rps,
        secs,
        p99_session_ms: p99_ms,
        mem_per_session_bytes: mem,
        sketch_bytes_hwm: metrics.sketch_bytes_hwm,
    });
}

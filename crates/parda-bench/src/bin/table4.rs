//! Regenerates the paper's **Table IV**: per-benchmark trace parameters
//! (M, N) and the cost of each pipeline stage — trace generation ("Pin"),
//! pipe transfer, sequential tree-based analysis (Olken81), and Parda —
//! as absolute seconds and as slowdown factors against the scaled
//! uninstrumented baseline. The paper's slowdown factors are printed
//! alongside for the shape comparison.
//!
//! Run with: `cargo run --release -p parda-bench --bin table4 -- [--refs N] [--ranks P] [--json]`

use parda_bench::{build_workload, pipe_transfer_secs, time, BenchArgs, BenchTimings, Report};
use parda_core::{parallel, PardaConfig};
use parda_trace::spec::SPEC2006;
use parda_tree::SplayTree;

fn main() {
    let args = BenchArgs::parse(1_000_000, 8);
    // Paper setup: 64 Mw pipe, 2 Mw cache bound, 64 processors over traces
    // of ~10^10 refs. Scaled by the same N ratio: 64 Kw pipe, bound =
    // refs-proportional equivalent of 2 Mw (≈ M/5 for mcf-like ratios); we
    // use a fixed fraction of the scaled footprint ceiling, 4096 words.
    let pipe_words = 64 * 1024;
    let bound = 4_096u64;
    let mut config = PardaConfig::with_ranks(args.ranks);
    config.bound = Some(bound);

    println!(
        "Table IV reproduction: refs/bench={} ranks={} bound={}w pipe={}w",
        args.refs, args.ranks, bound, pipe_words
    );
    println!("(paper: 64 procs, 2Mw bound, 64Mw pipe, full SPEC traces)\n");

    let report = Report::new(
        &[
            "benchmark",
            "M",
            "N",
            "gen_s",
            "pipe_s",
            "olken_s",
            "parda_s",
            "olken_x",
            "parda_x",
            "paper_ox",
            "paper_px",
        ],
        args.json,
    );
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    let mut olken_ratios = Vec::new();
    let mut parda_ratios = Vec::new();
    for bench in &SPEC2006 {
        let w = build_workload(bench, args.refs, args.seed);
        let pipe_secs = pipe_transfer_secs(&w.trace, pipe_words);
        let (seq_hist, olken_secs) =
            time(|| parda_core::seq::analyze_sequential::<SplayTree>(w.trace.as_slice(), None));
        let (par_hist, parda_secs) =
            time(|| parallel::parda_threads::<SplayTree>(w.trace.as_slice(), &config));
        assert_eq!(seq_hist.total(), par_hist.total());

        let timings = BenchTimings {
            name: bench.name,
            n: w.trace.len() as u64,
            m: w.trace.distinct() as u64,
            orig_secs: w.orig_scaled_secs,
            gen_secs: w.gen_secs,
            pipe_secs,
            olken_secs,
            parda_secs,
            olken_slowdown: w.slowdown(olken_secs),
            parda_slowdown: w.slowdown(parda_secs),
            paper_olken_slowdown: bench.olken_slowdown(),
            paper_parda_slowdown: bench.parda_slowdown(),
        };
        olken_ratios.push(timings.olken_slowdown);
        parda_ratios.push(timings.parda_slowdown);
        report.print_row(
            &mut out,
            &[
                timings.name.to_string(),
                timings.m.to_string(),
                timings.n.to_string(),
                format!("{:.3}", timings.gen_secs),
                format!("{:.3}", timings.pipe_secs),
                format!("{:.3}", timings.olken_secs),
                format!("{:.3}", timings.parda_secs),
                format!("{:.1}", timings.olken_slowdown),
                format!("{:.1}", timings.parda_slowdown),
                format!("{:.1}", timings.paper_olken_slowdown),
                format!("{:.1}", timings.paper_parda_slowdown),
            ],
            &timings,
        );
    }

    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "\ngeometric-mean slowdowns: olken {:.1}x, parda {:.1}x (paper averages: 28.5x parda; \
         hundreds-to-thousands olken)",
        geo(&olken_ratios),
        geo(&parda_ratios)
    );
    println!(
        "shape check: on a multi-core host parda beats olken on every row (the paper's \
         13-53x vs hundreds-to-thousands); with {} hardware thread(s) the ranks time-share \
         and parda ~ olken — the parallel decomposition itself is validated by the \
         equal-histogram property tests and the D2 space ablation.",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
}

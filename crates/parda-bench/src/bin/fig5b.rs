//! Regenerates the paper's **Figure 5(b)**: slowdown factor per benchmark
//! as the processor count varies (paper: 8 → 64) with the cache bound and
//! pipe fixed (paper: 512 Kw, 64 Mw).
//!
//! Run with: `cargo run --release -p parda-bench --bin fig5b -- [--refs N] [--json]`

use parda_bench::report::line_chart;
use parda_bench::{build_workload, time, BenchArgs, Report};
use parda_core::{parallel, PardaConfig};
use parda_trace::spec::SPEC2006;
use parda_tree::SplayTree;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: &'static str,
    slowdowns: Vec<(usize, f64)>,
    speedup_1_to_max: f64,
}

fn main() {
    let args = BenchArgs::parse(500_000, 8);
    let rank_counts = [1usize, 2, 4, 8];
    let bound = 256u64; // ≙ the paper's fixed 512 Kw

    println!(
        "Figure 5(b) reproduction: refs/bench={} bound={bound}w ranks={:?} (paper: 8..64 procs)",
        args.refs, rank_counts
    );

    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(rank_counts.iter().map(|p| format!("x@p{p}")))
        .chain(std::iter::once("speedup".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let report = Report::new(&header_refs, args.json);
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    let mut all_rows: Vec<Vec<f64>> = Vec::new();
    for bench in &SPEC2006 {
        let w = build_workload(bench, args.refs, args.seed);
        let mut row = Row {
            benchmark: bench.name,
            slowdowns: Vec::new(),
            speedup_1_to_max: 0.0,
        };
        let mut cells = vec![bench.name.to_string()];
        let mut times = Vec::new();
        for &ranks in &rank_counts {
            let mut config = PardaConfig::with_ranks(ranks);
            config.bound = Some(bound);
            let (_, secs) =
                time(|| parallel::parda_threads::<SplayTree>(w.trace.as_slice(), &config));
            times.push(secs);
            let x = w.slowdown(secs);
            row.slowdowns.push((ranks, x));
            cells.push(format!("{x:.1}"));
        }
        row.speedup_1_to_max = times[0] / times[times.len() - 1];
        cells.push(format!("{:.2}", row.speedup_1_to_max));
        all_rows.push(row.slowdowns.iter().map(|&(_, x)| x).collect());
        report.print_row(&mut out, &cells, &row);
    }
    let x_labels: Vec<String> = rank_counts.iter().map(|p| format!("p{p}")).collect();
    let agg = |f: &dyn Fn(&[f64]) -> f64| -> Vec<f64> {
        (0..rank_counts.len())
            .map(|i| f(&all_rows.iter().map(|r| r[i]).collect::<Vec<_>>()))
            .collect()
    };
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    let minf = |v: &[f64]| v.iter().cloned().fold(f64::MAX, f64::min);
    let maxf = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\n{}",
        line_chart(
            "slowdown vs processors across the suite (cf. paper Figure 5b)",
            &x_labels,
            &[
                ("geo-mean".to_string(), agg(&geo)),
                ("min".to_string(), agg(&minf)),
                ("max".to_string(), agg(&maxf)),
            ],
            12,
        )
    );
    println!(
        "\nshape check vs paper Fig. 5(b): the paper reports an average ~3.5x speedup from \
         8→64 procs with diminishing returns; with {} hardware thread(s) here the wall-clock \
         speedup column is hardware-gated — the algorithmic work split is what is exercised.",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
}

//! Hot-path throughput benchmark: the perf-trajectory anchor.
//!
//! Measures single-thread and parallel engine throughput (refs/s) on a
//! zipf workload for every tree structure and emits machine-readable JSON
//! (`BENCH_hotpath.json` at the repo root) so future PRs can diff perf
//! against the numbers recorded here.
//!
//!   cargo run --release -p parda-bench --bin hotpath -- \
//!       --refs 10000000 --out BENCH_hotpath.json

use parda_bench::time;
use parda_core::{Analysis, Engine, MissSink, Mode, PardaConfig};
use parda_trace::gen::ZipfGen;
use parda_trace::{AddressStream, Trace};
use parda_tree::{AvlTree, ReuseTree, SplayTree, Treap, TreeKind};
use serde::Serialize;
use std::hint::black_box;

/// One measured configuration.
#[derive(Serialize)]
struct Row {
    tree: &'static str,
    mode: &'static str,
    refs_per_sec: u64,
    secs: f64,
}

/// Parallel speedup over the sequential batched engine for one tree.
#[derive(Serialize)]
struct Speedup {
    tree: &'static str,
    threads8_over_seq: f64,
}

/// The whole report (`BENCH_hotpath.json`).
#[derive(Serialize)]
struct HotpathReport {
    bench: &'static str,
    refs: u64,
    footprint: u64,
    theta: f64,
    seed: u64,
    runs_per_config: u32,
    results: Vec<Row>,
    speedups: Vec<Speedup>,
}

fn best_of<R>(runs: u32, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (r, secs) = time(&mut f);
        black_box(r);
        best = best.min(secs);
    }
    best
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let footprint: u64 = get("--footprint")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let theta: f64 = get("--theta").and_then(|v| v.parse().ok()).unwrap_or(0.99);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let runs: u32 = get("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = get("--out").unwrap_or_else(|| "BENCH_hotpath.json".into());
    // Optional comma-separated tree filter (e.g. --trees splay,avl) and
    // work-stealing grain override (--subchunk N), for tuning runs.
    let tree_filter: Option<Vec<String>> =
        get("--trees").map(|v| v.split(',').map(str::to_string).collect());
    let subchunk: Option<usize> = get("--subchunk").and_then(|v| v.parse().ok());

    eprintln!("hotpath: generating {refs} zipf({theta}) refs over {footprint} addresses");
    let trace: Trace = ZipfGen::new(footprint as usize, theta, 0, seed).take_trace(refs as usize);

    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for kind in [TreeKind::Splay, TreeKind::Avl, TreeKind::Treap] {
        if let Some(filter) = &tree_filter {
            if !filter.iter().any(|t| t == kind.name()) {
                continue;
            }
        }
        // Single-thread sequential throughput: the prefetch-batched hot loop.
        let seq_secs = best_of(runs, || {
            Analysis::new()
                .tree(kind)
                .mode(Mode::Seq)
                .run(trace.as_slice())
                .0
        });
        push_row(&mut results, kind, "seq", refs, seq_secs);

        // The scalar reference loop — the batched-vs-scalar ablation.
        let secs = best_of(runs, || match kind {
            TreeKind::Splay => seq_scalar::<SplayTree>(trace.as_slice()),
            TreeKind::Avl => seq_scalar::<AvlTree>(trace.as_slice()),
            TreeKind::Treap => seq_scalar::<Treap>(trace.as_slice()),
            TreeKind::Vector => unreachable!("vector tree is not benchmarked"),
        });
        push_row(&mut results, kind, "seq-scalar", refs, secs);

        // Pipelined shared-memory driver at 8 ranks (work-stealing
        // sub-chunks + merge-based cascade).
        let mut config = PardaConfig::with_ranks(8);
        if let Some(grain) = subchunk {
            config = config.subchunk_refs(grain);
        }
        let secs = best_of(runs, || {
            parda_core::parda_kind(trace.as_slice(), kind, &config)
        });
        push_row(&mut results, kind, "threads8", refs, secs);
        let ratio = seq_secs / secs;
        eprintln!("  {:<6} threads8/seq speedup: {ratio:.2}x", kind.name());
        speedups.push(Speedup {
            tree: kind.name(),
            threads8_over_seq: (ratio * 100.0).round() / 100.0,
        });
    }

    let report = HotpathReport {
        bench: "hotpath",
        refs,
        footprint,
        theta,
        seed,
        runs_per_config: runs,
        results,
        speedups,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write BENCH json");
    eprintln!("hotpath: wrote {out}");
    println!("{json}");
}

/// Drive [`Engine::process_chunk_scalar`] directly: the pre-batching
/// per-reference loop, kept measurable as the ablation baseline.
fn seq_scalar<T: ReuseTree + Default>(trace: &[u64]) -> parda_hist::ReuseHistogram {
    let mut engine: Engine<T> = Engine::new(None, trace.len());
    engine.process_chunk_scalar(trace, 0, MissSink::Infinite);
    engine.into_histogram()
}

fn push_row(results: &mut Vec<Row>, kind: TreeKind, mode: &'static str, refs: u64, secs: f64) {
    let rps = (refs as f64 / secs) as u64;
    eprintln!(
        "  {:<6} {:<12} {:>12} refs/s ({secs:.3}s)",
        kind.name(),
        mode,
        rps
    );
    results.push(Row {
        tree: kind.name(),
        mode,
        refs_per_sec: rps,
        secs,
    });
}

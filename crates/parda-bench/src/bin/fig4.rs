//! Regenerates the paper's **Figure 4**: MCF slowdown factor as the number
//! of processors varies (paper: 8→64) for a range of cache-bound values
//! (paper: 512 Kw → 4 Mw), with a fixed pipe.
//!
//! Scaled mapping: processors {1, 2, 4, 8}; bounds scaled by the trace
//! ratio so they cross MCF's scaled footprint the same way the paper's
//! bounds cross its 55.7 M-word footprint.
//!
//! Run with: `cargo run --release -p parda-bench --bin fig4 -- [--refs N] [--json]`

use parda_bench::report::line_chart;
use parda_bench::{build_workload, time, BenchArgs, Report};
use parda_core::Analysis;
use parda_trace::spec::SpecBenchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    bound_words: u64,
    ranks: usize,
    parda_secs: f64,
    slowdown: f64,
    chunk_ms: f64,
    cascade_ms: f64,
    infinities_forwarded: u64,
    stats: parda_core::Report,
}

fn main() {
    let args = BenchArgs::parse(2_000_000, 8);
    let mcf = SpecBenchmark::by_name("mcf").expect("mcf is in Table IV");
    let w = build_workload(mcf, args.refs, args.seed);
    let m = w.trace.distinct() as u64;

    // Paper bounds 512Kw..4Mw against M=55.7M ⇒ ratios ~0.9%..7.2% of M.
    // Apply the same ratios to the scaled footprint.
    let bounds: Vec<u64> = [0.009f64, 0.018, 0.036, 0.072]
        .iter()
        .map(|r| ((m as f64 * r) as u64).max(16))
        .collect();
    let rank_counts = [1usize, 2, 4, 8];

    println!(
        "Figure 4 reproduction: MCF, N={} M={m}, bounds {:?} (≙ 512Kw..4Mw), ranks {:?}",
        w.trace.len(),
        bounds,
        rank_counts
    );

    let report = Report::new(
        &[
            "bound_w",
            "ranks",
            "parda_s",
            "slowdown_x",
            "chunk_ms",
            "cascade_ms",
            "fwd_inf",
        ],
        args.json,
    );
    let mut out = std::io::stdout();
    report.print_header(&mut out);

    let mut chart_series: Vec<(String, Vec<f64>)> = Vec::new();
    for &bound in &bounds {
        let mut ys = Vec::new();
        for &ranks in &rank_counts {
            // Default mode is the parda-threads driver; stats(true) yields
            // the per-rank breakdown the paper's Fig. 4 discussion is about.
            let analysis = Analysis::new().ranks(ranks).bound(bound).stats(true);
            let ((_, stats), secs) = time(|| analysis.run(w.trace.as_slice()));
            let stats = stats.expect("stats were requested");
            let point = Point {
                bound_words: bound,
                ranks,
                parda_secs: secs,
                slowdown: w.slowdown(secs),
                chunk_ms: stats.total_chunk_ns() as f64 / 1e6,
                cascade_ms: stats.total_cascade_ns() as f64 / 1e6,
                infinities_forwarded: stats.total_infinities_forwarded(),
                stats,
            };
            ys.push(point.slowdown);
            report.print_row(
                &mut out,
                &[
                    bound.to_string(),
                    ranks.to_string(),
                    format!("{:.3}", point.parda_secs),
                    format!("{:.1}", point.slowdown),
                    format!("{:.1}", point.chunk_ms),
                    format!("{:.1}", point.cascade_ms),
                    point.infinities_forwarded.to_string(),
                ],
                &point,
            );
        }
        chart_series.push((format!("{bound}w"), ys));
    }
    let x_labels: Vec<String> = rank_counts.iter().map(|p| format!("p{p}")).collect();
    println!(
        "\n{}",
        line_chart(
            "slowdown factor vs processors (cf. paper Figure 4)",
            &x_labels,
            &chart_series,
            12,
        )
    );
    println!(
        "\nshape check vs paper Fig. 4: slowdown decreases with smaller bounds; the paper's \
         8→64-proc speedup is ~3.3x — wall-clock speedup here is limited by the host's \
         hardware threads ({}).",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
}

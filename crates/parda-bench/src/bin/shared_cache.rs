//! Shared-cache analysis benchmark: the concurrent-analyzer perf anchor.
//!
//! Measures the throughput (refs/s) of the thread-aware concurrent
//! analyzer — one exact shared-stream reuse-distance pass with per-thread
//! attribution plus a solo pass per thread — over the multi-threaded
//! pinsim kernels (true- and false-sharing stencil, parallel matmul) and
//! a modeled interleaving of per-thread zipf streams. Every row also
//! cross-checks the shared histogram against `parda-cachesim` LRU
//! simulation of the same interleaved trace at three capacities
//! (`cachesim_exact`), and records the partition the solo MRCs recommend,
//! so the numbers stay tied to a verified analysis.
//!
//! Emits machine-readable JSON (`BENCH_shared.json` at the repo root) so
//! future PRs can diff the analyzer against the numbers recorded here;
//! `BENCH_shared_floor.json` holds the floors ci.sh enforces.
//!
//!   cargo run --release -p parda-bench --bin shared_cache -- \
//!       --refs 2000000 --out BENCH_shared.json

use parda_bench::time;
use parda_cachesim::LruCache;
use parda_core::{
    analyze_concurrent, default_granularity, interleave_threads, recommend_partition,
    ConcurrentAnalysis, InterleaveModel,
};
use parda_pinsim::{collect_mt_trace, MtMatMul, MtStencil2D};
use parda_trace::gen::ZipfGen;
use parda_trace::{AddressStream, ThreadedTrace};
use parda_tree::SplayTree;
use serde::Serialize;
use std::hint::black_box;

/// One measured configuration.
#[derive(Serialize)]
struct Row {
    workload: String,
    threads: usize,
    refs: u64,
    refs_per_sec: u64,
    secs: f64,
    sharing_ratio: f64,
    /// Shared histogram == cachesim LRU at every checked capacity.
    cachesim_exact: bool,
    /// Recommended allocation for `capacity` lines (sorted-TID order).
    capacity: u64,
    allocation: Vec<u64>,
    predicted_misses: u64,
}

/// The whole report (`BENCH_shared.json`).
#[derive(Serialize)]
struct SharedReport {
    bench: &'static str,
    refs: u64,
    capacity: u64,
    seed: u64,
    runs_per_config: u32,
    results: Vec<Row>,
}

fn best_of(runs: u32, mut f: impl FnMut() -> ConcurrentAnalysis) -> (ConcurrentAnalysis, f64) {
    let mut best = f64::INFINITY;
    let mut kept = None;
    for _ in 0..runs {
        let (r, secs) = time(&mut f);
        best = best.min(secs);
        kept = Some(black_box(r));
    }
    (kept.expect("at least one run"), best)
}

/// The shared histogram must predict the LRU simulation exactly — a wrong
/// analyzer benchmarked fast is worse than useless.
fn matches_cachesim(analysis: &ConcurrentAnalysis, trace: &ThreadedTrace) -> bool {
    [64u64, 512, 2048].iter().all(|&c| {
        analysis.shared.hit_count(c) == LruCache::new(c as usize).run_trace(trace.addrs()).hits
    })
}

fn measure(
    results: &mut Vec<Row>,
    workload: String,
    trace: &ThreadedTrace,
    capacity: u64,
    runs: u32,
) {
    let (analysis, secs) = best_of(runs, || analyze_concurrent::<SplayTree>(trace));
    let plan = recommend_partition(
        &analysis.per_thread_solo,
        capacity,
        default_granularity(capacity),
    );
    let refs = trace.len() as u64;
    results.push(Row {
        workload,
        threads: analysis.thread_ids.len(),
        refs,
        refs_per_sec: (refs as f64 / secs) as u64,
        secs,
        sharing_ratio: analysis.sharing_ratio(),
        cachesim_exact: matches_cachesim(&analysis, trace),
        capacity,
        allocation: plan.allocation,
        predicted_misses: plan.predicted_misses,
    });
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let refs: u64 = get("--refs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let capacity: u64 = get("--capacity")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_096);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let runs: u32 = get("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let out = get("--out").unwrap_or_else(|| "BENCH_shared.json".into());

    let mut results = Vec::new();

    // Kernel sizes scale with --refs so the smoke run stays cheap: the
    // stencil issues ~6·n²·iters refs, the matmul 3·n³ + counters.
    let stencil_n = ((refs as f64 / (6.0 * 8.0)).sqrt() as usize).max(16);
    let matmul_n = ((refs as f64 / 3.0).cbrt() as usize).max(8);
    for (name, false_sharing) in [("mt-stencil", false), ("mt-stencil-false-sharing", true)] {
        let mt = collect_mt_trace(MtStencil2D::new(stencil_n, 8, 4, false_sharing));
        eprintln!(
            "shared_cache: {name} n={stencil_n} refs={}",
            mt.interleaved.len()
        );
        measure(
            &mut results,
            name.to_string(),
            &mt.interleaved,
            capacity,
            runs,
        );
    }
    let mt = collect_mt_trace(MtMatMul::new(matmul_n, 4, false));
    eprintln!(
        "shared_cache: mt-matmul n={matmul_n} refs={}",
        mt.interleaved.len()
    );
    measure(
        &mut results,
        "mt-matmul".to_string(),
        &mt.interleaved,
        capacity,
        runs,
    );

    // Modeled interleaving of independent zipf threads: the co-run shape
    // (low true sharing, contended capacity) at full --refs scale.
    let per_thread = refs as usize / 4;
    let threads: Vec<_> = (0..4u64)
        .map(|t| ZipfGen::new(100_000, 0.99, t << 40, seed + t).take_trace(per_thread))
        .collect();
    let slices: Vec<&[parda_trace::Addr]> = threads.iter().map(|t| t.as_slice()).collect();
    for (name, model) in [
        ("zipf4-rr", InterleaveModel::round_robin()),
        (
            "zipf4-prob",
            InterleaveModel::Probabilistic {
                weights: vec![4, 2, 1, 1],
                seed,
            },
        ),
    ] {
        let interleaved = interleave_threads(&slices, &model);
        eprintln!("shared_cache: {name} refs={}", interleaved.len());
        measure(&mut results, name.to_string(), &interleaved, capacity, runs);
    }

    let report = SharedReport {
        bench: "shared_cache",
        refs,
        capacity,
        seed,
        runs_per_config: runs,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write report");
    eprintln!("shared_cache: wrote {out}");
    for row in &report.results {
        println!(
            "{:<26} threads={} refs={} {:>10} refs/s sharing={:.4} cachesim_exact={} predicted_misses={}",
            row.workload,
            row.threads,
            row.refs,
            row.refs_per_sec,
            row.sharing_ratio,
            row.cachesim_exact,
            row.predicted_misses
        );
    }
}

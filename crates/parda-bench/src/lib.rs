//! Experiment harness for the PARDA reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5); this library holds the shared machinery:
//!
//! * [`workload`] — building scaled SPEC traces and accounting for the
//!   trace-generation ("Pin") and pipe-transfer overheads the paper reports
//!   alongside analysis time;
//! * [`report`] — aligned text tables plus JSON-lines output so
//!   EXPERIMENTS.md entries are reproducible verbatim.
//!
//! ## Reading slowdown factors
//!
//! The paper reports every cost as a *slowdown factor*: time divided by the
//! uninstrumented runtime of the benchmark (`Orig` in Table IV). Our traces
//! are scaled down by `n_scaled / n_paper`, so the comparable baseline is
//! `orig_secs · n_scaled / n_paper` — the time the original program would
//! have spent issuing that many references. All slowdowns printed by the
//! harness use this scaled baseline, making them directly comparable to the
//! paper's factors.

pub mod report;
pub mod workload;

pub use report::{format_row, Report};
pub use workload::{build_workload, pipe_transfer_secs, BenchTimings, Workload};

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Parse `--key value` style overrides from a binary's argv, with defaults.
/// (The experiment binaries share a tiny flag surface: `--refs`, `--ranks`,
/// `--seed`, `--json`.)
pub struct BenchArgs {
    /// References per benchmark trace.
    pub refs: u64,
    /// Ranks for the parallel analyzer.
    pub ranks: usize,
    /// Generator seed.
    pub seed: u64,
    /// Also emit JSON lines.
    pub json: bool,
}

impl BenchArgs {
    /// Parse from `std::env::args`, applying the given defaults.
    pub fn parse(default_refs: u64, default_ranks: usize) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let get = |key: &str| -> Option<String> {
            argv.iter()
                .position(|a| a == key)
                .and_then(|i| argv.get(i + 1).cloned())
        };
        Self {
            refs: get("--refs")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_refs),
            ranks: get("--ranks")
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_ranks),
            seed: get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
            json: argv.iter().any(|a| a == "--json"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (value, secs) = time(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(secs >= 0.0);
    }
}

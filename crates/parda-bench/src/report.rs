//! Text/JSON reporting for the experiment binaries.

use serde::Serialize;
use std::io::Write;

/// A simple aligned-column report writer that can mirror rows as JSON
/// lines (for machine consumption by EXPERIMENTS.md tooling).
pub struct Report {
    headers: Vec<String>,
    widths: Vec<usize>,
    json: bool,
}

impl Report {
    /// Start a report with the given column headers; widths are derived
    /// from the headers (min 8 columns wide).
    pub fn new(headers: &[&str], json: bool) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths = headers.iter().map(|h| h.len().max(10)).collect();
        Self {
            headers,
            widths,
            json,
        }
    }

    /// Print the header row.
    pub fn print_header(&self, out: &mut dyn Write) {
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&self.widths) {
            line.push_str(&format!("{h:>w$} ", w = w));
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    }

    /// Print one row of already-formatted cells (and a JSON mirror of any
    /// serializable record when JSON mode is on).
    pub fn print_row<S: Serialize>(&self, out: &mut dyn Write, cells: &[String], record: &S) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$} ", w = w));
        }
        let _ = writeln!(out, "{}", line.trim_end());
        if self.json {
            if let Ok(json) = serde_json::to_string(record) {
                let _ = writeln!(out, "#json {json}");
            }
        }
    }
}

/// Format a float with 2 decimals (the paper's table style).
pub fn format_row(v: f64) -> String {
    format!("{v:.2}")
}

/// Render a terminal line chart: one column group per x category, one mark
/// character per series — the figure binaries print these alongside the raw
/// tables so the paper's figure *shapes* are visible at a glance.
pub fn line_chart(
    title: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    height: usize,
) -> String {
    assert!(height >= 2);
    assert!(!x_labels.is_empty());
    assert!(series.iter().all(|(_, ys)| ys.len() == x_labels.len()));
    const MARKS: &[u8] = b"*o+x#@%&";

    let values: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-9);

    let col_width = x_labels.iter().map(|l| l.len()).max().unwrap_or(1).max(6) + 1;
    let mut grid = vec![vec![b' '; col_width * x_labels.len()]; height];
    for (s, (_, ys)) in series.iter().enumerate() {
        let mark = MARKS[s % MARKS.len()];
        for (x, &y) in ys.iter().enumerate() {
            let row = ((max - y) / span * (height - 1) as f64).round() as usize;
            let col = x * col_width + col_width / 2;
            let cell = &mut grid[row.min(height - 1)][col];
            // Overlapping series at the same point: show a generic marker.
            *cell = if *cell == b' ' { mark } else { b'=' };
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y = max - span * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:>9.1} |"));
        out.push_str(String::from_utf8_lossy(row).trim_end());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +", ""));
    out.push_str(&"-".repeat(col_width * x_labels.len()));
    out.push('\n');
    out.push_str(&format!("{:>10}", ""));
    for label in x_labels {
        out.push_str(&format!("{label:^col_width$}"));
    }
    out.push('\n');
    for (s, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>10}{} = {}\n",
            "",
            MARKS[s % MARKS.len()] as char,
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned_rows() {
        let mut buf = Vec::new();
        let r = Report::new(&["name", "value"], false);
        r.print_header(&mut buf);
        r.print_row(
            &mut buf,
            &["mcf".into(), "1.23".into()],
            &serde_json::json!({}),
        );
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("name"));
        assert!(text.contains("mcf"));
        assert!(!text.contains("#json"));
    }

    #[test]
    fn json_mode_mirrors_rows() {
        let mut buf = Vec::new();
        let r = Report::new(&["a"], true);
        r.print_row(&mut buf, &["x".into()], &serde_json::json!({"a": 1}));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("#json {\"a\":1}"));
    }

    #[test]
    fn format_row_two_decimals() {
        assert_eq!(format_row(1.234), "1.23");
        assert_eq!(format_row(100.0), "100.00");
    }

    #[test]
    fn line_chart_places_extremes_on_edge_rows() {
        let chart = line_chart(
            "test",
            &["a".into(), "b".into(), "c".into()],
            &[("s1".into(), vec![1.0, 5.0, 3.0])],
            5,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0], "test");
        // Max (5.0) on the top data row, min (1.0) on the bottom data row.
        assert!(lines[1].contains('*'), "top row: {chart}");
        assert!(lines[5].contains('*'), "bottom row: {chart}");
        assert!(chart.contains("* = s1"));
        assert!(chart.contains("a"));
    }

    #[test]
    fn line_chart_marks_overlap() {
        let chart = line_chart(
            "t",
            &["x".into()],
            &[("a".into(), vec![2.0]), ("b".into(), vec![2.0])],
            3,
        );
        assert!(chart.contains('='), "overlap marker missing: {chart}");
    }

    #[test]
    fn line_chart_handles_flat_series() {
        let chart = line_chart(
            "flat",
            &["x".into(), "y".into()],
            &[("a".into(), vec![7.0, 7.0])],
            4,
        );
        assert!(chart.contains('*'));
    }
}

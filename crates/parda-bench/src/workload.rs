//! Workload construction and overhead accounting for the experiments.

use crate::time;
use parda_comm::pipe;
use parda_trace::spec::SpecBenchmark;
use parda_trace::{AddressStream, Trace};
use serde::Serialize;

/// A materialized, scaled benchmark workload plus the costs of producing it.
pub struct Workload {
    /// The benchmark this models.
    pub bench: &'static SpecBenchmark,
    /// The scaled trace.
    pub trace: Trace,
    /// Time to generate the trace — our analogue of the paper's Pin
    /// instrumentation overhead (trace *production* cost).
    pub gen_secs: f64,
    /// The uninstrumented-runtime baseline for slowdown factors:
    /// `orig_secs · n_scaled / n_paper`.
    pub orig_scaled_secs: f64,
}

impl Workload {
    /// Slowdown factor of a measured time against the scaled baseline.
    pub fn slowdown(&self, secs: f64) -> f64 {
        secs / self.orig_scaled_secs
    }
}

/// Generate the scaled trace for `bench` and record the generation cost.
pub fn build_workload(bench: &'static SpecBenchmark, refs: u64, seed: u64) -> Workload {
    let (trace, gen_secs) = time(|| bench.generator(refs, seed).take_trace(refs as usize));
    let orig_scaled_secs = bench.orig_secs * refs as f64 / bench.n_paper as f64;
    Workload {
        bench,
        trace,
        gen_secs,
        orig_scaled_secs,
    }
}

/// Measure shipping the trace through a bounded pipe (the paper's `Pipe`
/// column): producer thread writes, consumer drains, wall time reported.
pub fn pipe_transfer_secs(trace: &Trace, pipe_words: usize) -> f64 {
    let addrs = trace.as_slice().to_vec();
    let n = addrs.len();
    let (result, secs) = time(move || {
        let (mut writer, mut reader) = pipe(pipe_words, parda_comm::pipe::DEFAULT_BATCH);
        let producer = std::thread::spawn(move || {
            writer.write_all(&addrs);
        });
        let mut buf = Vec::with_capacity(n);
        reader.fill(&mut buf, n + 1);
        producer.join().expect("producer thread");
        buf.len()
    });
    assert_eq!(result, n, "pipe must deliver the whole trace");
    secs
}

/// One row of timing results for a benchmark (Table IV shape).
#[derive(Clone, Debug, Serialize)]
pub struct BenchTimings {
    /// Benchmark name.
    pub name: &'static str,
    /// Scaled trace length.
    pub n: u64,
    /// Scaled distinct addresses.
    pub m: u64,
    /// Scaled uninstrumented baseline, seconds.
    pub orig_secs: f64,
    /// Trace generation time ("Pin"), seconds.
    pub gen_secs: f64,
    /// Pipe transfer time, seconds.
    pub pipe_secs: f64,
    /// Sequential tree-based analysis time (Olken81), seconds.
    pub olken_secs: f64,
    /// Parda parallel analysis time, seconds.
    pub parda_secs: f64,
    /// Measured sequential slowdown factor.
    pub olken_slowdown: f64,
    /// Measured Parda slowdown factor.
    pub parda_slowdown: f64,
    /// Paper's sequential slowdown factor (for the comparison column).
    pub paper_olken_slowdown: f64,
    /// Paper's Parda slowdown factor.
    pub paper_parda_slowdown: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_trace::spec::SPEC2006;

    #[test]
    fn build_workload_scales_correctly() {
        let w = build_workload(&SPEC2006[3], 10_000, 1); // mcf
        assert_eq!(w.trace.len(), 10_000);
        let expect_m = SPEC2006[3].scaled(10_000).m;
        assert_eq!(w.trace.distinct() as u64, expect_m);
        assert!(w.orig_scaled_secs > 0.0);
        assert!(w.slowdown(w.orig_scaled_secs) > 0.99);
    }

    #[test]
    fn pipe_transfer_delivers_everything() {
        let trace: Trace = (0..50_000u64).collect();
        let secs = pipe_transfer_secs(&trace, 1 << 14);
        assert!(secs > 0.0);
    }
}

//! Observability layer for the PARDA engines (`parda-obs`).
//!
//! The paper's entire evaluation is a *timing breakdown*: per-rank chunk
//! analysis vs. infinity-cascade time (Fig. 4) and end-to-end scaling
//! (Tables II–IV). This crate supplies the always-compiled metrics substrate
//! the engines record into:
//!
//! * [`Stopwatch`] — a monotonic timer for driver-side phase timing; the
//!   hot path never reads the clock per reference, only per chunk/round;
//! * [`Counter`] — a relaxed atomic counter for cross-thread pipelines
//!   (the framed-decode pipeline in `parda-trace`);
//! * [`EngineMetrics`] — per-engine operation counts (tree ops, live-set
//!   high-water mark, cascade hit/forward counts), plain `u64` fields
//!   incremented by the owning thread;
//! * [`RankMetrics`] — one rank's view of a parallel run: chunk-analysis
//!   time, cascade time, per-round infinity-list lengths — the raw data
//!   behind the paper's Figure 4 breakdown;
//! * [`StreamCounters`]/[`StreamMetrics`] — decode-pipeline backpressure:
//!   frames decoded, decoder idle time, channel-full stalls;
//! * [`Report`] — the aggregate tree, serializable to JSON (`--stats=json`)
//!   or renderable as an aligned text table (`--stats`).
//!
//! Everything here is dependency-free on the hot path; serialization uses
//! the workspace `serde` value-tree. The optional `tracing` feature makes
//! [`span`] emit enter/exit lines with durations to stderr; without it a
//! span is a zero-sized no-op.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic stopwatch. Started on creation, read with [`Stopwatch::ns`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Nanoseconds elapsed since start (saturating at `u64::MAX`).
    pub fn ns(&self) -> u64 {
        let n = self.0.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// A relaxed atomic counter for metrics shared across threads.
///
/// Relaxed ordering is deliberate: metrics are monotone tallies read after
/// the pipeline has quiesced (post-join), so no inter-thread ordering is
/// required and the increment compiles to a plain atomic add.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the counter to `n` if `n` is larger (high-water-mark tracking).
    #[inline]
    pub fn record_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }
}

/// Per-engine operation counts (one [`Engine`](../parda_core/engine) =
/// one rank, or the whole trace when sequential).
///
/// All fields are plain `u64`s incremented by the owning thread on branches
/// the engine already takes — no extra hashing, no clock reads.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct EngineMetrics {
    /// Chunk references processed (paper `N` share of this rank).
    pub refs: u64,
    /// Intra-chunk reuses resolved (finite distances from `process_chunk`).
    pub finite_hits: u64,
    /// Infinite distances recorded into the histogram (rank 0's global
    /// infinities, plus capacity misses in bounded mode).
    pub cold_misses: u64,
    /// Incoming cascade infinities examined (`process_infinities` stream).
    pub stream_refs: u64,
    /// Cascade infinities resolved at this rank (finite via Algorithm 4).
    pub stream_hits: u64,
    /// First touches forwarded leftward (pushes into a `MissSink::Forward`
    /// queue or a survivors list), cumulative across phases.
    pub forwarded: u64,
    /// Tree operations performed (inserts + distance queries + removals).
    pub tree_ops: u64,
    /// High-water mark of the live set `|H| = |T|`.
    pub live_hwm: u64,
    /// Prefetch-batched hot-path rounds executed by `process_chunk` (each
    /// covers up to the engine's batch width of references; 0 when the
    /// scalar path ran, i.e. bounded mode or tiny chunks).
    pub batches: u64,
}

impl EngineMetrics {
    /// Fold another engine's counters into this one (aggregation).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.refs += other.refs;
        self.finite_hits += other.finite_hits;
        self.cold_misses += other.cold_misses;
        self.stream_refs += other.stream_refs;
        self.stream_hits += other.stream_hits;
        self.forwarded += other.forwarded;
        self.tree_ops += other.tree_ops;
        self.live_hwm = self.live_hwm.max(other.live_hwm);
        self.batches += other.batches;
    }
}

/// One absorb round's breakdown inside the batched cascade: how many
/// incoming infinities resolved at this rank, and where the round's time
/// went (merge/partition bookkeeping vs. the bulk tree sweep). Returned by
/// the engine so the driver can fold it into [`RankMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CascadeRoundStats {
    /// Infinities resolved to finite distances this round (batch deletes
    /// performed by `rank_delete_batch`, or scalar hits on the fallback
    /// path).
    pub resolved: u64,
    /// Wall time spent probing the table and partitioning/ordering the hit
    /// set before the tree sweep.
    pub merge_ns: u64,
    /// Wall time spent inside the bulk `rank_delete_batch` sweep (plus the
    /// distance fix-up); zero when the scalar path ran.
    pub batch_ns: u64,
}

/// One rank's timing/counter breakdown of a parallel run — the live
/// counterpart of the paper's Figure 4 bars.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RankMetrics {
    /// Rank id (`p` in the paper).
    pub rank: usize,
    /// References in this rank's chunk(s).
    pub refs: u64,
    /// Wall time spent analyzing own chunk(s) (`T_chunk`, Fig. 4 bottom).
    pub chunk_ns: u64,
    /// Wall time spent absorbing neighbours' infinity streams (`T_cascade`,
    /// Fig. 4 top).
    pub cascade_ns: u64,
    /// Pipeline bubble: wall time the cascade spent *waiting* for this
    /// rank's chunk analysis to finish before its fold could start. Zero
    /// when the pipelined schedule fully overlapped cascade with upstream
    /// chunk work (the Figure-4 serial tail eliminated).
    pub cascade_wait_ns: u64,
    /// Cascade rounds this rank participated in as a receiver.
    pub cascade_rounds: u64,
    /// Incoming infinity-list length per receive round, in order.
    pub round_infinity_lens: Vec<u64>,
    /// Infinities resolved per receive round (batch deletes performed by
    /// the sorted-slab sweep; scalar hits on the fallback path). Same
    /// length and order as `round_infinity_lens`.
    pub round_batch_deletes: Vec<u64>,
    /// Wall time spent merging/ordering incoming infinity slabs before the
    /// bulk tree sweep, summed over rounds (subset of `cascade_ns`).
    pub merge_ns: u64,
    /// Wall time spent inside bulk `rank_delete_batch` sweeps, summed over
    /// rounds (subset of `cascade_ns`).
    pub batch_ns: u64,
    /// Total infinities this rank sent leftward (local first touches plus
    /// unresolved survivors).
    pub infinities_forwarded: u64,
    /// Wall time spent in phase state reductions (streaming engine only).
    pub reduction_ns: u64,
    /// The rank's engine operation counters.
    pub engine: EngineMetrics,
}

impl RankMetrics {
    /// Fold one absorb round's stats into this rank's tallies. Callers push
    /// the round's incoming length themselves (they know it before the
    /// engine runs); this records the resolution count and timing split.
    pub fn record_round(&mut self, stats: &CascadeRoundStats) {
        self.round_batch_deletes.push(stats.resolved);
        self.merge_ns += stats.merge_ns;
        self.batch_ns += stats.batch_ns;
    }
}

/// Phase-level aggregates of the streaming (Algorithm 5–6) engine.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct PhasedMetrics {
    /// Number of phases executed.
    pub phases: u64,
    /// Per-phase reduction wall time: the maximum across ranks (the
    /// critical path — every rank waits on the merger).
    pub phase_reduction_ns: Vec<u64>,
}

/// Snapshot of the framed-decode pipeline counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StreamMetrics {
    /// Frames decoded by the pool.
    pub frames_decoded: u64,
    /// References decoded.
    pub refs_decoded: u64,
    /// Wall time spent inside frame decoding, summed over decoders.
    pub decode_ns: u64,
    /// Time decoders spent idle waiting for the reader to hand them work.
    pub decoder_idle_ns: u64,
    /// Sends of decoded frames that found the consumer channel full
    /// (analysis is the bottleneck — backpressure is working).
    pub backpressure_stalls: u64,
    /// Time decoders spent blocked in those full-channel sends.
    pub backpressure_ns: u64,
    /// Time the consumer spent blocked waiting for the next in-order frame
    /// (decode is the bottleneck).
    pub consumer_wait_ns: u64,
}

/// Shared atomic counters backing [`StreamMetrics`]; lives in an `Arc`
/// spanning the reader, the decoder pool, and the consumer.
#[derive(Debug, Default)]
pub struct StreamCounters {
    /// See [`StreamMetrics::frames_decoded`].
    pub frames_decoded: Counter,
    /// See [`StreamMetrics::refs_decoded`].
    pub refs_decoded: Counter,
    /// See [`StreamMetrics::decode_ns`].
    pub decode_ns: Counter,
    /// See [`StreamMetrics::decoder_idle_ns`].
    pub decoder_idle_ns: Counter,
    /// See [`StreamMetrics::backpressure_stalls`].
    pub backpressure_stalls: Counter,
    /// See [`StreamMetrics::backpressure_ns`].
    pub backpressure_ns: Counter,
    /// See [`StreamMetrics::consumer_wait_ns`].
    pub consumer_wait_ns: Counter,
}

impl StreamCounters {
    /// Read every counter into a serializable snapshot.
    pub fn snapshot(&self) -> StreamMetrics {
        StreamMetrics {
            frames_decoded: self.frames_decoded.get(),
            refs_decoded: self.refs_decoded.get(),
            decode_ns: self.decode_ns.get(),
            decoder_idle_ns: self.decoder_idle_ns.get(),
            backpressure_stalls: self.backpressure_stalls.get(),
            backpressure_ns: self.backpressure_ns.get(),
            consumer_wait_ns: self.consumer_wait_ns.get(),
        }
    }
}

/// Configuration and accuracy summary of one approximate (sketch-mode)
/// analysis run: which engine ran, at what sampling rate, and how much
/// state it kept. Attached to [`Report::approx`] and serialized by
/// `--stats=json` so callers can see the memory/error trade-off that was
/// actually realized.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ApproxMetrics {
    /// Engine label: `shards`, `shards-smax`, or `aet`.
    pub mode: String,
    /// Configured initial sampling rate `R` in (0, 1].
    pub rate: f64,
    /// Final effective sampling rate — equals `rate` for fixed-rate
    /// engines; lower when fixed-size eviction tightened the threshold.
    pub effective_rate: f64,
    /// Sketch cardinality cap for fixed-size SHARDS; `None` otherwise.
    pub s_max: Option<u64>,
    /// References that passed the spatial-hash filter.
    pub sampled_refs: u64,
    /// Distinct monitored addresses still tracked at the end of the run.
    pub sampled_addrs: u64,
    /// Entries evicted by the fixed-size threshold-lowering policy.
    pub evictions: u64,
    /// Approximate resident size of the sketch (table + tree + heap).
    pub sketch_bytes: u64,
    /// A-priori mean-absolute-error envelope for the miss-ratio curve,
    /// `~1/sqrt(sampled_addrs)` per the MRC survey; 0 when exact.
    pub expected_mae: f64,
}

/// Summary of one thread-aware shared-cache analysis: how the threads
/// shared the address space, under which interleave model the shared
/// stream was built, and the recommended static partition. Attached to
/// [`Report::shared`] and serialized by `--stats=json` for the `partition`
/// verb (offline and server).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SharedMetrics {
    /// Threads analyzed.
    pub threads: usize,
    /// References issued per thread, in sorted-TID order.
    pub per_thread_refs: Vec<u64>,
    /// Distinct addresses touched by two or more threads.
    pub shared_addrs: u64,
    /// Fraction of distinct addresses touched by more than one thread.
    pub sharing_ratio: f64,
    /// Interleave model label (`rr:1`, `prob:3,1@42`, or `as-recorded`).
    pub model: String,
    /// Shared-cache capacity partitioned (lines).
    pub capacity: u64,
    /// Partition granularity (lines).
    pub granularity: u64,
    /// Recommended allocation per thread, in sorted-TID order.
    pub allocation: Vec<u64>,
    /// Total predicted misses under the recommended partition.
    pub predicted_misses: u64,
}

/// Fixed-bucket (powers of two, nanoseconds) latency histogram: constant
/// space, mergeable across shards, good enough for a p99 readout without
/// keeping every sample. Bucket `i` covers `[2^i, 2^(i+1))` ns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; 64],
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self { buckets: [0; 64] }
    }
}

impl LatencyHist {
    /// Record one duration in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile sample
    /// (`q` in [0, 1]); 0 when empty. Accuracy is the 2× bucket width —
    /// plenty for an order-of-magnitude p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// Lifetime summary of one ingest/analysis shard of the daemon: how many
/// sessions were pinned to it, how concurrent it got, and the per-session
/// resource high-water marks. Serialized inside [`ServerMetrics`] so shard
/// balance is observable from the shutdown summary and the bench harness.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Connections pinned to this shard over its lifetime.
    pub sessions: u64,
    /// High-water mark of concurrently resident sessions.
    pub sessions_peak: u64,
    /// High-water mark of the shard's pending-connection inbox.
    pub queue_depth_hwm: u64,
    /// Largest sketch resident size observed on this shard (approx
    /// sessions only).
    pub sketch_bytes_hwm: u64,
    /// Largest per-session analysis-state estimate observed on this shard
    /// (any mode; see `SessionAnalysis::state_bytes`).
    pub state_bytes_hwm: u64,
    /// p99 session wall time (admission to reply), nanoseconds.
    pub p99_session_ns: u64,
}

impl ShardMetrics {
    /// Fold another shard summary into this one: lifetime tallies add,
    /// high-water marks take the max. Sum and max are both associative
    /// and commutative, so shard summaries can be combined in any order
    /// (the property the obs test suite pins down).
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.sessions += other.sessions;
        self.sessions_peak = self.sessions_peak.max(other.sessions_peak);
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.sketch_bytes_hwm = self.sketch_bytes_hwm.max(other.sketch_bytes_hwm);
        self.state_bytes_hwm = self.state_bytes_hwm.max(other.state_bytes_hwm);
        self.p99_session_ns = self.p99_session_ns.max(other.p99_session_ns);
    }
}

/// Snapshot of a `parda-server` daemon's lifetime counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServerMetrics {
    /// Sessions admitted (HELLO + CONFIG accepted under the session cap).
    pub sessions_opened: u64,
    /// Sessions refused by admission control (cap reached, bad handshake).
    pub sessions_rejected: u64,
    /// Admitted sessions that ended in an error or a panic.
    pub sessions_failed: u64,
    /// Admitted sessions that returned a STATS reply.
    pub sessions_completed: u64,
    /// DATA payload bytes received across all sessions.
    pub bytes_in: u64,
    /// Trace references decoded from DATA frames across all sessions.
    pub refs_in: u64,
    /// DATA frames received across all sessions.
    pub frames_in: u64,
    /// DATA frames quarantined by a lossy degradation policy.
    pub frames_quarantined: u64,
    /// Admitted sessions that ran in an approximate (sketch) mode.
    pub approx_sessions: u64,
    /// Largest sketch resident size observed across approx sessions.
    pub sketch_bytes_hwm: u64,
    /// p99 session wall time (admission to reply) across all shards,
    /// nanoseconds; 0 when no session completed.
    pub p99_session_ns: u64,
    /// Admitted sessions whose transport died mid-stream and that were
    /// parked in the orphan pool instead of being discarded.
    pub sessions_orphaned: u64,
    /// Orphaned sessions reattached by a RESUME on a new connection.
    pub sessions_resumed: u64,
    /// Orphaned sessions evicted by the retention deadline or the pool
    /// byte budget (or drained at shutdown) before any RESUME arrived.
    /// Invariant: `sessions_resumed + orphans_expired == sessions_orphaned`
    /// once the daemon has drained.
    pub orphans_expired: u64,
    /// ACK messages queued to clients across all sessions.
    pub acks_sent: u64,
    /// Per-shard breakdown; only shards that saw at least one session are
    /// listed, so an idle server snapshot stays `== Default::default()`.
    pub per_shard: Vec<ShardMetrics>,
}

impl ServerMetrics {
    /// Ingest rate over the given wall time, for the shutdown summary.
    pub fn refs_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs > 0.0 {
            self.refs_in as f64 / elapsed_secs
        } else {
            0.0
        }
    }

    /// One-line summary printed by `parda serve` on shutdown.
    pub fn render_pretty(&self, elapsed_secs: f64) -> String {
        let mut line = format!(
            "server: sessions opened={} rejected={} failed={} completed={} \
             bytes_in={} refs_in={} frames_in={} quarantined={} \
             approx_sessions={} sketch_hwm={} refs/s={:.0}\n",
            self.sessions_opened,
            self.sessions_rejected,
            self.sessions_failed,
            self.sessions_completed,
            self.bytes_in,
            self.refs_in,
            self.frames_in,
            self.frames_quarantined,
            self.approx_sessions,
            self.sketch_bytes_hwm,
            self.refs_per_sec(elapsed_secs),
        );
        if self.p99_session_ns > 0 {
            line.push_str(&format!(
                "server: p99_session_ms={:.3}\n",
                self.p99_session_ns as f64 / 1e6
            ));
        }
        // Kept off the headline line (scripts grep its field sequence) and
        // omitted entirely for daemons that never orphaned a session.
        if self.sessions_orphaned > 0 {
            line.push_str(&format!(
                "server: resume orphaned={} resumed={} expired={} acks_sent={}\n",
                self.sessions_orphaned, self.sessions_resumed, self.orphans_expired, self.acks_sent,
            ));
        }
        for s in &self.per_shard {
            line.push_str(&format!(
                "shard {}: sessions={} peak={} queue_hwm={} sketch_hwm={} \
                 state_hwm={} p99_ms={:.3}\n",
                s.shard,
                s.sessions,
                s.sessions_peak,
                s.queue_depth_hwm,
                s.sketch_bytes_hwm,
                s.state_bytes_hwm,
                s.p99_session_ns as f64 / 1e6,
            ));
        }
        line
    }
}

/// Shared atomic counters backing [`ServerMetrics`]; lives in an `Arc`
/// spanning the accept loop and every session thread.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// See [`ServerMetrics::sessions_opened`].
    pub sessions_opened: Counter,
    /// See [`ServerMetrics::sessions_rejected`].
    pub sessions_rejected: Counter,
    /// See [`ServerMetrics::sessions_failed`].
    pub sessions_failed: Counter,
    /// See [`ServerMetrics::sessions_completed`].
    pub sessions_completed: Counter,
    /// See [`ServerMetrics::bytes_in`].
    pub bytes_in: Counter,
    /// See [`ServerMetrics::refs_in`].
    pub refs_in: Counter,
    /// See [`ServerMetrics::frames_in`].
    pub frames_in: Counter,
    /// See [`ServerMetrics::frames_quarantined`].
    pub frames_quarantined: Counter,
    /// See [`ServerMetrics::approx_sessions`].
    pub approx_sessions: Counter,
    /// See [`ServerMetrics::sketch_bytes_hwm`] (updated via
    /// [`Counter::record_max`]).
    pub sketch_bytes_hwm: Counter,
    /// See [`ServerMetrics::sessions_orphaned`].
    pub sessions_orphaned: Counter,
    /// See [`ServerMetrics::sessions_resumed`].
    pub sessions_resumed: Counter,
    /// See [`ServerMetrics::orphans_expired`].
    pub orphans_expired: Counter,
    /// See [`ServerMetrics::acks_sent`].
    pub acks_sent: Counter,
}

impl ServerCounters {
    /// Read every counter into a serializable snapshot.
    pub fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            sessions_opened: self.sessions_opened.get(),
            sessions_rejected: self.sessions_rejected.get(),
            sessions_failed: self.sessions_failed.get(),
            sessions_completed: self.sessions_completed.get(),
            bytes_in: self.bytes_in.get(),
            refs_in: self.refs_in.get(),
            frames_in: self.frames_in.get(),
            frames_quarantined: self.frames_quarantined.get(),
            approx_sessions: self.approx_sessions.get(),
            sketch_bytes_hwm: self.sketch_bytes_hwm.get(),
            p99_session_ns: 0,
            sessions_orphaned: self.sessions_orphaned.get(),
            sessions_resumed: self.sessions_resumed.get(),
            orphans_expired: self.orphans_expired.get(),
            acks_sent: self.acks_sent.get(),
            per_shard: Vec::new(),
        }
    }
}

/// What one retrying `submit` went through to deliver its reply: how many
/// connections it burned, how many of those reattached an existing server
/// session, and the retransmission volume the disconnects cost. All-zero
/// `resumes`/`retransmitted_frames` with `attempts == 1` means the happy
/// path. Returned alongside the reply so callers (and the chaos harness)
/// can assert resilience happened rather than infer it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ClientRetryMetrics {
    /// Connections attempted (1 = no retry was needed).
    pub attempts: u32,
    /// Successful RESUME handshakes (reconnects that reattached state).
    pub resumes: u32,
    /// DATA frames sent again because they were past the server's
    /// acknowledged watermark when the transport died.
    pub retransmitted_frames: u64,
    /// ACK messages observed while streaming.
    pub acks_seen: u64,
    /// Wall time from the first failed I/O operation to the first
    /// successful RESUME accept, nanoseconds; 0 when no resume happened.
    pub resume_latency_ns: u64,
}

/// Fault-recovery tally for one analysis run: what the degradation
/// machinery skipped, repaired, or retried on the way to a result.
///
/// Populated by the recovering decoders in `parda-trace` and the
/// panic-isolated cascade in `parda-core`; all-zero means the run was clean.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryMetrics {
    /// Frames the source claimed to contain (0 when unknown, e.g. after a
    /// destroyed footer forced a resync scan).
    pub frames_total: u64,
    /// Frames quarantined: CRC mismatch, undecodable payload, or truncation.
    pub frames_skipped: u64,
    /// References lost with those frames.
    pub refs_dropped: u64,
    /// Frames whose CRC32C did not match (subset of `frames_skipped` for
    /// checksummed files; zero for pre-checksum v2.0 files).
    pub crc_failures: u64,
    /// Byte-level resync scans performed after losing frame alignment
    /// (BestEffort only).
    pub resyncs: u64,
    /// Rank analyses re-run after a worker panic.
    pub rank_retries: u64,
    /// Ranks whose result came from a successful re-run on the scalar
    /// reference engine rather than the original worker.
    pub rank_rescues: u64,
    /// Indices of the first quarantined frames (capped — see
    /// [`RecoveryMetrics::SKIPPED_FRAMES_CAP`]).
    pub skipped_frames: Vec<u64>,
}

impl RecoveryMetrics {
    /// Cap on the `skipped_frames` detail list; the counters stay exact.
    pub const SKIPPED_FRAMES_CAP: usize = 64;

    /// Record frame `index` (carrying `refs` references) as quarantined.
    pub fn skip_frame(&mut self, index: u64, refs: u64) {
        self.frames_skipped += 1;
        self.refs_dropped += refs;
        if self.skipped_frames.len() < Self::SKIPPED_FRAMES_CAP {
            self.skipped_frames.push(index);
        }
    }

    /// `true` when nothing was skipped, retried, or rescued.
    pub fn is_clean(&self) -> bool {
        self.frames_skipped == 0
            && self.refs_dropped == 0
            && self.crc_failures == 0
            && self.resyncs == 0
            && self.rank_retries == 0
            && self.rank_rescues == 0
    }

    /// Fold another recovery tally into this one.
    pub fn merge(&mut self, other: &RecoveryMetrics) {
        self.frames_total += other.frames_total;
        self.frames_skipped += other.frames_skipped;
        self.refs_dropped += other.refs_dropped;
        self.crc_failures += other.crc_failures;
        self.resyncs += other.resyncs;
        self.rank_retries += other.rank_retries;
        self.rank_rescues += other.rank_rescues;
        for &f in &other.skipped_frames {
            if self.skipped_frames.len() >= Self::SKIPPED_FRAMES_CAP {
                break;
            }
            self.skipped_frames.push(f);
        }
    }
}

/// Aggregate observability report for one analysis run.
///
/// Produced by `parda_core::Analysis` when stats are requested; serialized
/// verbatim by `--stats=json` and rendered by [`Report::render_pretty`].
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Report {
    /// Engine mode label (`seq`, `parda-threads`, `parda-msg`, `phased`,
    /// `naive`, `sampled`).
    pub mode: String,
    /// Tree structure used (`splay`, `avl`, `treap`, `vector`).
    pub tree: String,
    /// Configured rank count.
    pub ranks: usize,
    /// Cache bound `B`, when bounded (Algorithm 7).
    pub bound: Option<u64>,
    /// Total references analyzed.
    pub trace_refs: u64,
    /// End-to-end wall time of the run.
    pub total_ns: u64,
    /// Per-rank breakdown (one entry for sequential engines).
    pub per_rank: Vec<RankMetrics>,
    /// Streaming-decode pipeline counters, when the source was a framed
    /// trace stream.
    pub stream: Option<StreamMetrics>,
    /// Phase-level aggregates, for the streaming multi-phase engine.
    pub phased: Option<PhasedMetrics>,
    /// Fault-recovery events (frames skipped, rank retries), when the run
    /// used a lossy degradation policy or survived injected faults. `None`
    /// when recovery was never engaged.
    pub recovery: Option<RecoveryMetrics>,
    /// Sampling configuration and realized accuracy/memory, when the run
    /// used an approximate (sketch) engine. `None` for exact runs.
    pub approx: Option<ApproxMetrics>,
    /// Thread-aware shared-cache summary and partition recommendation,
    /// when the run analyzed a thread-tagged trace. `None` otherwise.
    pub shared: Option<SharedMetrics>,
}

impl Report {
    /// Sum of per-rank chunk-analysis time.
    pub fn total_chunk_ns(&self) -> u64 {
        self.per_rank.iter().map(|r| r.chunk_ns).sum()
    }

    /// Sum of per-rank cascade time.
    pub fn total_cascade_ns(&self) -> u64 {
        self.per_rank.iter().map(|r| r.cascade_ns).sum()
    }

    /// Sum of per-rank chunk references (equals the trace length for the
    /// offline engines — asserted in tests).
    pub fn total_rank_refs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.refs).sum()
    }

    /// Sum of infinities forwarded across ranks (total cascade traffic).
    pub fn total_infinities_forwarded(&self) -> u64 {
        self.per_rank.iter().map(|r| r.infinities_forwarded).sum()
    }

    /// Render an aligned per-rank table plus pipeline/phase summaries —
    /// the `--stats` (pretty) output.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stats: mode={} tree={} ranks={} bound={} refs={} total={}\n",
            self.mode,
            self.tree,
            self.ranks,
            self.bound.map_or("none".into(), |b| b.to_string()),
            self.trace_refs,
            fmt_ns(self.total_ns),
        ));
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "rank",
            "refs",
            "chunk",
            "cascade",
            "wait",
            "merge",
            "batch",
            "rounds",
            "fwd",
            "hits",
            "stream_hit",
            "live_hwm"
        ));
        for r in &self.per_rank {
            out.push_str(&format!(
                "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                r.rank,
                r.refs,
                fmt_ns(r.chunk_ns),
                fmt_ns(r.cascade_ns),
                fmt_ns(r.cascade_wait_ns),
                fmt_ns(r.merge_ns),
                fmt_ns(r.batch_ns),
                r.cascade_rounds,
                r.infinities_forwarded,
                r.engine.finite_hits,
                r.engine.stream_hits,
                r.engine.live_hwm,
            ));
        }
        if let Some(p) = &self.phased {
            let reduction_total: u64 = p.phase_reduction_ns.iter().sum();
            out.push_str(&format!(
                "phases={} reduction_total={} (per-phase max across ranks)\n",
                p.phases,
                fmt_ns(reduction_total),
            ));
        }
        if let Some(a) = &self.approx {
            out.push_str(&format!(
                "approx: mode={} rate={} effective_rate={:.6} s_max={} \
                 sampled_refs={} sampled_addrs={} evictions={} \
                 sketch_bytes={} expected_mae={:.4}\n",
                a.mode,
                a.rate,
                a.effective_rate,
                a.s_max.map_or("none".into(), |s| s.to_string()),
                a.sampled_refs,
                a.sampled_addrs,
                a.evictions,
                a.sketch_bytes,
                a.expected_mae,
            ));
        }
        if let Some(s) = &self.shared {
            let alloc: Vec<String> = s.allocation.iter().map(|a| a.to_string()).collect();
            out.push_str(&format!(
                "shared: threads={} model={} shared_addrs={} sharing_ratio={:.4} \
                 capacity={} granularity={} alloc=[{}] predicted_misses={}\n",
                s.threads,
                s.model,
                s.shared_addrs,
                s.sharing_ratio,
                s.capacity,
                s.granularity,
                alloc.join(","),
                s.predicted_misses,
            ));
        }
        if let Some(r) = &self.recovery {
            out.push_str(&format!(
                "recovery: frames_skipped={}/{} refs_dropped={} crc_failures={} \
                 resyncs={} rank_retries={} rank_rescues={}\n",
                r.frames_skipped,
                r.frames_total,
                r.refs_dropped,
                r.crc_failures,
                r.resyncs,
                r.rank_retries,
                r.rank_rescues,
            ));
        }
        if let Some(s) = &self.stream {
            out.push_str(&format!(
                "stream: frames={} refs={} decode={} idle={} stalls={} \
                 backpressure={} consumer_wait={}\n",
                s.frames_decoded,
                s.refs_decoded,
                fmt_ns(s.decode_ns),
                fmt_ns(s.decoder_idle_ns),
                s.backpressure_stalls,
                fmt_ns(s.backpressure_ns),
                fmt_ns(s.consumer_wait_ns),
            ));
        }
        out
    }
}

/// Human-friendly duration: ns with unit scaling (`1.23ms`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.2}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// RAII span: emits `enter`/`exit` lines (with duration) to stderr when the
/// `tracing` feature is enabled; a no-op otherwise.
///
/// ```
/// let _guard = parda_obs::span("cascade");
/// // ... work ...
/// // guard drop emits the exit line under `--features tracing`
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "tracing")]
    {
        eprintln!("[parda-obs] enter {name}");
        SpanGuard {
            name,
            start: Stopwatch::start(),
        }
    }
    #[cfg(not(feature = "tracing"))]
    {
        let _ = name;
        SpanGuard {}
    }
}

/// Guard returned by [`span`]; logs the span duration on drop when the
/// `tracing` feature is on.
#[cfg(feature = "tracing")]
pub struct SpanGuard {
    name: &'static str,
    start: Stopwatch,
}

#[cfg(feature = "tracing")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        eprintln!(
            "[parda-obs] exit {} ({})",
            self.name,
            fmt_ns(self.start.ns())
        );
    }
}

/// No-op guard (the `tracing` feature is off).
#[cfg(not(feature = "tracing"))]
pub struct SpanGuard {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.ns();
        let b = sw.ns();
        assert!(b >= a);
    }

    #[test]
    fn counter_adds_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn engine_metrics_merge_sums_and_maxes() {
        let mut a = EngineMetrics {
            refs: 10,
            live_hwm: 5,
            ..Default::default()
        };
        let b = EngineMetrics {
            refs: 7,
            live_hwm: 9,
            finite_hits: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.refs, 17);
        assert_eq!(a.live_hwm, 9);
        assert_eq!(a.finite_hits, 3);
    }

    #[test]
    fn report_totals_sum_per_rank() {
        let report = Report {
            per_rank: vec![
                RankMetrics {
                    rank: 0,
                    refs: 50,
                    chunk_ns: 100,
                    cascade_ns: 20,
                    ..Default::default()
                },
                RankMetrics {
                    rank: 1,
                    refs: 50,
                    chunk_ns: 200,
                    cascade_ns: 30,
                    infinities_forwarded: 7,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(report.total_rank_refs(), 100);
        assert_eq!(report.total_chunk_ns(), 300);
        assert_eq!(report.total_cascade_ns(), 50);
        assert_eq!(report.total_infinities_forwarded(), 7);
    }

    #[test]
    fn report_serializes_to_json_with_rank_array() {
        let report = Report {
            mode: "parda-threads".into(),
            tree: "splay".into(),
            ranks: 2,
            bound: None,
            trace_refs: 13,
            total_ns: 1,
            per_rank: vec![RankMetrics::default()],
            stream: None,
            phased: None,
            recovery: None,
            approx: None,
            shared: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"mode\":\"parda-threads\""), "{json}");
        assert!(json.contains("\"per_rank\":[{"), "{json}");
        assert!(json.contains("\"chunk_ns\":0"), "{json}");
        // Round-trips through the JSON parser as a value tree.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.field("trace_refs").unwrap(), &serde_json::Value::U64(13));
    }

    #[test]
    fn stream_counters_snapshot() {
        let c = StreamCounters::default();
        c.frames_decoded.add(3);
        c.backpressure_stalls.incr();
        let snap = c.snapshot();
        assert_eq!(snap.frames_decoded, 3);
        assert_eq!(snap.backpressure_stalls, 1);
        assert_eq!(snap.decode_ns, 0);
    }

    #[test]
    fn render_pretty_lists_every_rank() {
        let report = Report {
            mode: "parda-msg".into(),
            tree: "avl".into(),
            ranks: 2,
            trace_refs: 100,
            per_rank: vec![
                RankMetrics {
                    rank: 0,
                    refs: 50,
                    ..Default::default()
                },
                RankMetrics {
                    rank: 1,
                    refs: 50,
                    ..Default::default()
                },
            ],
            stream: Some(StreamMetrics::default()),
            phased: Some(PhasedMetrics {
                phases: 2,
                phase_reduction_ns: vec![5, 10],
            }),
            ..Default::default()
        };
        let text = report.render_pretty();
        assert!(text.contains("mode=parda-msg"));
        assert!(text.contains("rank"));
        assert!(text.contains("phases=2"));
        assert!(text.contains("stream: frames=0"));
        assert_eq!(text.lines().count(), 6, "{text}");
    }

    #[test]
    fn record_round_accumulates_timing_and_deletes() {
        let mut rm = RankMetrics::default();
        rm.record_round(&CascadeRoundStats {
            resolved: 5,
            merge_ns: 10,
            batch_ns: 20,
        });
        rm.record_round(&CascadeRoundStats {
            resolved: 0,
            merge_ns: 3,
            batch_ns: 0,
        });
        assert_eq!(rm.round_batch_deletes, vec![5, 0]);
        assert_eq!(rm.merge_ns, 13);
        assert_eq!(rm.batch_ns, 20);
    }

    #[test]
    fn rank_metrics_serialize_cascade_fields() {
        let mut rm = RankMetrics {
            rank: 1,
            round_infinity_lens: vec![7],
            ..Default::default()
        };
        rm.record_round(&CascadeRoundStats {
            resolved: 4,
            merge_ns: 11,
            batch_ns: 22,
        });
        let json = serde_json::to_string(&rm).unwrap();
        assert!(json.contains("\"round_batch_deletes\":[4]"), "{json}");
        assert!(json.contains("\"merge_ns\":11"), "{json}");
        assert!(json.contains("\"batch_ns\":22"), "{json}");
    }

    #[test]
    fn render_pretty_has_merge_and_batch_columns() {
        let report = Report {
            per_rank: vec![RankMetrics {
                merge_ns: 1_000,
                batch_ns: 2_000,
                ..Default::default()
            }],
            ..Default::default()
        };
        let text = report.render_pretty();
        assert!(text.contains("merge"), "{text}");
        assert!(text.contains("batch"), "{text}");
    }

    #[test]
    fn server_counters_snapshot_and_rate() {
        let c = ServerCounters::default();
        c.sessions_opened.add(3);
        c.sessions_completed.add(2);
        c.sessions_failed.incr();
        c.refs_in.add(1_000_000);
        c.bytes_in.add(8_000_000);
        let snap = c.snapshot();
        assert_eq!(snap.sessions_opened, 3);
        assert_eq!(snap.sessions_completed, 2);
        assert_eq!(snap.sessions_failed, 1);
        assert_eq!(snap.sessions_rejected, 0);
        assert_eq!(snap.refs_per_sec(2.0) as u64, 500_000);
        assert_eq!(snap.refs_per_sec(0.0), 0.0);
        let line = snap.render_pretty(1.0);
        assert!(line.contains("opened=3"), "{line}");
        assert!(line.contains("refs/s=1000000"), "{line}");
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"refs_in\":1000000"), "{json}");
    }

    #[test]
    fn recovery_metrics_skip_and_merge() {
        let mut a = RecoveryMetrics {
            frames_total: 10,
            ..Default::default()
        };
        assert!(a.is_clean());
        a.skip_frame(3, 100);
        a.skip_frame(7, 50);
        assert!(!a.is_clean());
        assert_eq!(a.frames_skipped, 2);
        assert_eq!(a.refs_dropped, 150);
        assert_eq!(a.skipped_frames, vec![3, 7]);
        let b = RecoveryMetrics {
            rank_retries: 2,
            rank_rescues: 1,
            crc_failures: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rank_retries, 2);
        assert_eq!(a.crc_failures, 1);
    }

    #[test]
    fn recovery_skipped_frames_detail_is_capped() {
        let mut r = RecoveryMetrics::default();
        for i in 0..200 {
            r.skip_frame(i, 1);
        }
        assert_eq!(r.frames_skipped, 200);
        assert_eq!(r.refs_dropped, 200);
        assert_eq!(r.skipped_frames.len(), RecoveryMetrics::SKIPPED_FRAMES_CAP);
    }

    #[test]
    fn render_pretty_includes_recovery_line_when_present() {
        let mut rec = RecoveryMetrics {
            frames_total: 4,
            ..Default::default()
        };
        rec.skip_frame(1, 16);
        let report = Report {
            recovery: Some(rec),
            ..Default::default()
        };
        let text = report.render_pretty();
        assert!(text.contains("recovery: frames_skipped=1/4"), "{text}");
    }

    #[test]
    fn counter_record_max_keeps_high_water() {
        let c = Counter::new();
        c.record_max(5);
        c.record_max(3);
        assert_eq!(c.get(), 5);
        c.record_max(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn approx_metrics_serialize_and_render() {
        let report = Report {
            mode: "shards".into(),
            approx: Some(ApproxMetrics {
                mode: "shards".into(),
                rate: 0.01,
                effective_rate: 0.01,
                s_max: None,
                sampled_refs: 1_000,
                sampled_addrs: 120,
                evictions: 0,
                sketch_bytes: 4_096,
                expected_mae: 0.09,
            }),
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"approx\":{"), "{json}");
        assert!(json.contains("\"sampled_addrs\":120"), "{json}");
        let text = report.render_pretty();
        assert!(text.contains("approx: mode=shards rate=0.01"), "{text}");
        assert!(text.contains("s_max=none"), "{text}");
    }

    #[test]
    fn server_counters_track_approx_sessions() {
        let c = ServerCounters::default();
        c.approx_sessions.incr();
        c.sketch_bytes_hwm.record_max(1_024);
        c.sketch_bytes_hwm.record_max(512);
        let snap = c.snapshot();
        assert_eq!(snap.approx_sessions, 1);
        assert_eq!(snap.sketch_bytes_hwm, 1_024);
        let line = snap.render_pretty(1.0);
        assert!(line.contains("approx_sessions=1"), "{line}");
        assert!(line.contains("sketch_hwm=1024"), "{line}");
    }

    #[test]
    fn shared_metrics_serialize_and_render() {
        let report = Report {
            mode: "concurrent".into(),
            shared: Some(SharedMetrics {
                threads: 2,
                per_thread_refs: vec![600, 400],
                shared_addrs: 64,
                sharing_ratio: 0.25,
                model: "rr:1".into(),
                capacity: 1024,
                granularity: 64,
                allocation: vec![256, 768],
                predicted_misses: 900,
            }),
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"shared\":{"), "{json}");
        assert!(json.contains("\"allocation\":[256,768]"), "{json}");
        assert!(json.contains("\"model\":\"rr:1\""), "{json}");
        let text = report.render_pretty();
        assert!(text.contains("shared: threads=2 model=rr:1"), "{text}");
        assert!(text.contains("alloc=[256,768]"), "{text}");
        assert!(text.contains("predicted_misses=900"), "{text}");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500_000), "1500.00us");
        assert_eq!(fmt_ns(25_000_000), "25.00ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.00s");
    }

    #[test]
    fn span_guard_is_droppable() {
        let _g = span("test");
    }
}

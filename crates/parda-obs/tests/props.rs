//! Property tests for the metrics substrate the daemon's resumption
//! accounting leans on: the latency histogram's quantile bound, the
//! algebra of shard-summary merging, and the orphan-pool reconciliation
//! invariant `sessions_resumed + orphans_expired == sessions_orphaned`.

use parda_obs::{LatencyHist, ServerCounters, ShardMetrics};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LatencyHist {
    let mut h = LatencyHist::default();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// The quantile estimate brackets the true order statistic: it is an
    /// upper bound on the exact q-th sample, and never looser than the
    /// power-of-two bucket containing it (2x the sample value).
    #[test]
    fn latency_hist_p99_brackets_the_true_order_statistic(
        samples in proptest::collection::vec(1u64..1 << 40, 1..200),
    ) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            prop_assert!(
                est < 2 * exact.max(1),
                "q={q}: estimate {est} looser than the 2x bucket bound of {exact}"
            );
        }
    }

    /// Quantiles are monotone in q, and merging histograms is exactly
    /// recording the concatenated sample set.
    #[test]
    fn latency_hist_merge_is_sample_concatenation(
        a in proptest::collection::vec(1u64..1 << 40, 0..100),
        b in proptest::collection::vec(1u64..1 << 40, 0..100),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged.clone(), hist_of(&all));

        let mut last = 0u64;
        for i in 0..=10 {
            let q = f64::from(i) / 10.0;
            let v = merged.quantile(q);
            prop_assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    /// Shard summaries combine in any order: merge is associative and
    /// commutative (sums for lifetime tallies, max for high-water marks),
    /// so the server can fold shard reports however its shutdown
    /// sequence interleaves them.
    #[test]
    fn shard_metrics_merge_is_associative_and_commutative(
        fields in proptest::collection::vec(0u64..1 << 40, 18),
    ) {
        let shard_of = |f: &[u64]| ShardMetrics {
            shard: 0,
            sessions: f[0],
            sessions_peak: f[1],
            queue_depth_hwm: f[2],
            sketch_bytes_hwm: f[3],
            state_bytes_hwm: f[4],
            p99_session_ns: f[5],
        };
        let (a, b, c) = (
            shard_of(&fields[0..6]),
            shard_of(&fields[6..12]),
            shard_of(&fields[12..18]),
        );

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// However a random orphan population splits into adopted and
    /// expired, the lifecycle counters reconcile exactly, and the pretty
    /// renderer surfaces the resume line precisely when orphaning
    /// happened at all.
    #[test]
    fn orphan_lifecycle_counters_always_reconcile(
        adopted in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let counters = ServerCounters::default();
        for &resume in &adopted {
            counters.sessions_orphaned.incr();
            if resume {
                counters.sessions_resumed.incr();
            } else {
                counters.orphans_expired.incr();
                counters.sessions_failed.incr();
            }
        }
        let m = counters.snapshot();
        prop_assert_eq!(
            m.sessions_resumed + m.orphans_expired,
            m.sessions_orphaned,
            "every orphan is either adopted or expired, never both or neither"
        );
        prop_assert_eq!(m.orphans_expired, m.sessions_failed);

        let rendered = m.render_pretty(1.0);
        prop_assert_eq!(
            rendered.contains("resume orphaned="),
            m.sessions_orphaned > 0,
            "the resume line appears exactly when orphaning occurred"
        );
    }
}

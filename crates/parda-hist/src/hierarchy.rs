//! Multi-level cache hierarchy modelling from a reuse-distance histogram.
//!
//! The paper's opening observation — "the memory wall problem has been
//! alleviated by a multi-level processor cache design" — is where one
//! histogram pays off most: for an inclusive hierarchy of fully associative
//! LRU levels, a reference with reuse distance `d` hits in the first level
//! with capacity `> d`. Per-level hit counts and the average memory access
//! time (AMAT) therefore read directly off the histogram, no further
//! simulation needed.

use crate::ReuseHistogram;

/// One cache level: capacity in lines and access latency in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheLevel {
    /// Capacity in lines.
    pub capacity: u64,
    /// Hit latency in cycles.
    pub latency: f64,
}

/// An inclusive LRU cache hierarchy (capacities strictly increasing).
#[derive(Clone, Debug, PartialEq)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    /// Latency of a miss in the last level (memory access), cycles.
    pub memory_latency: f64,
}

/// Per-level outcome of [`CacheHierarchy::analyze`].
#[derive(Clone, Debug, PartialEq)]
pub struct LevelStats {
    /// The level's configuration.
    pub level: CacheLevel,
    /// References that hit first in this level.
    pub hits: u64,
    /// References that missed this and all faster levels.
    pub misses: u64,
}

/// Full hierarchy outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchyStats {
    /// Per-level stats, fastest first.
    pub levels: Vec<LevelStats>,
    /// References served by memory.
    pub memory_accesses: u64,
    /// Average memory access time in cycles.
    pub amat: f64,
}

impl CacheHierarchy {
    /// Build a hierarchy; panics unless capacities strictly increase.
    pub fn new(levels: Vec<CacheLevel>, memory_latency: f64) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        assert!(
            levels.windows(2).all(|w| w[0].capacity < w[1].capacity),
            "capacities must strictly increase"
        );
        assert!(levels.iter().all(|l| l.capacity > 0 && l.latency >= 0.0));
        Self {
            levels,
            memory_latency,
        }
    }

    /// A typical three-level geometry (in lines): 512 / 8 K / 128 K with
    /// 4 / 12 / 40-cycle latencies and 200-cycle memory.
    pub fn typical_l1_l2_l3() -> Self {
        Self::new(
            vec![
                CacheLevel {
                    capacity: 512,
                    latency: 4.0,
                },
                CacheLevel {
                    capacity: 8 * 1024,
                    latency: 12.0,
                },
                CacheLevel {
                    capacity: 128 * 1024,
                    latency: 40.0,
                },
            ],
            200.0,
        )
    }

    /// The configured levels, fastest first.
    pub fn levels(&self) -> &[CacheLevel] {
        &self.levels
    }

    /// Attribute every reference of `hist` to the level that serves it and
    /// compute AMAT.
    pub fn analyze(&self, hist: &ReuseHistogram) -> HierarchyStats {
        let total = hist.total();
        let mut levels = Vec::with_capacity(self.levels.len());
        let mut served_so_far = 0u64;
        let mut weighted = 0.0f64;
        for &level in &self.levels {
            let cumulative_hits = hist.hit_count(level.capacity);
            let hits = cumulative_hits - served_so_far;
            let misses = total - cumulative_hits;
            weighted += hits as f64 * level.latency;
            levels.push(LevelStats {
                level,
                hits,
                misses,
            });
            served_so_far = cumulative_hits;
        }
        let memory_accesses = total - served_so_far;
        weighted += memory_accesses as f64 * self.memory_latency;
        HierarchyStats {
            levels,
            memory_accesses,
            amat: if total == 0 {
                0.0
            } else {
                weighted / total as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distance;

    fn hist_with(distances: &[(u64, u64)], cold: u64) -> ReuseHistogram {
        let mut h = ReuseHistogram::new();
        for &(d, n) in distances {
            for _ in 0..n {
                h.record(Distance::Finite(d));
            }
        }
        h.record_infinite_n(cold);
        h
    }

    fn two_level() -> CacheHierarchy {
        CacheHierarchy::new(
            vec![
                CacheLevel {
                    capacity: 10,
                    latency: 1.0,
                },
                CacheLevel {
                    capacity: 100,
                    latency: 10.0,
                },
            ],
            100.0,
        )
    }

    #[test]
    fn references_are_attributed_to_first_fitting_level() {
        // d=5 → L1; d=50 → L2; d=500 and ∞ → memory.
        let hist = hist_with(&[(5, 4), (50, 3), (500, 2)], 1);
        let stats = two_level().analyze(&hist);
        assert_eq!(stats.levels[0].hits, 4);
        assert_eq!(stats.levels[1].hits, 3);
        assert_eq!(stats.memory_accesses, 3);
        assert_eq!(stats.levels[0].misses, 6);
        assert_eq!(stats.levels[1].misses, 3);
        let expect = (4.0 * 1.0 + 3.0 * 10.0 + 3.0 * 100.0) / 10.0;
        assert!((stats.amat - expect).abs() < 1e-12);
    }

    #[test]
    fn all_hits_in_l1_gives_l1_latency() {
        let hist = hist_with(&[(0, 100)], 0);
        let stats = two_level().analyze(&hist);
        assert!((stats.amat - 1.0).abs() < 1e-12);
        assert_eq!(stats.memory_accesses, 0);
    }

    #[test]
    fn cold_only_trace_pays_memory_latency() {
        let hist = hist_with(&[], 50);
        let stats = two_level().analyze(&hist);
        assert!((stats.amat - 100.0).abs() < 1e-12);
        assert_eq!(stats.levels[0].hits, 0);
    }

    #[test]
    fn empty_histogram_amat_is_zero() {
        let stats = two_level().analyze(&ReuseHistogram::new());
        assert_eq!(stats.amat, 0.0);
        assert_eq!(stats.memory_accesses, 0);
    }

    #[test]
    fn larger_l2_never_hurts_amat() {
        let hist = hist_with(&[(5, 10), (50, 10), (5_000, 10)], 5);
        let small = two_level().analyze(&hist).amat;
        let big = CacheHierarchy::new(
            vec![
                CacheLevel {
                    capacity: 10,
                    latency: 1.0,
                },
                CacheLevel {
                    capacity: 10_000,
                    latency: 10.0,
                },
            ],
            100.0,
        )
        .analyze(&hist)
        .amat;
        assert!(big <= small, "big {big} vs small {small}");
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_capacities_rejected() {
        CacheHierarchy::new(
            vec![
                CacheLevel {
                    capacity: 100,
                    latency: 1.0,
                },
                CacheLevel {
                    capacity: 100,
                    latency: 10.0,
                },
            ],
            100.0,
        );
    }

    #[test]
    fn typical_geometry_is_valid() {
        let h = CacheHierarchy::typical_l1_l2_l3();
        assert_eq!(h.levels().len(), 3);
    }
}

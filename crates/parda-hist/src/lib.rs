//! Reuse-distance histograms and the locality metrics derived from them.
//!
//! Every analysis engine in this workspace produces a [`ReuseHistogram`]:
//! the count of references at each exact reuse distance plus a dedicated
//! bucket for infinite distances (cold / compulsory misses). From the
//! histogram one derives the quantities the paper motivates reuse-distance
//! analysis with:
//!
//! * cache hit/miss counts for any fully associative LRU cache size
//!   ([`ReuseHistogram::miss_count`]),
//! * whole miss-ratio curves ([`ReuseHistogram::miss_ratio_curve`]),
//! * log₂-binned summaries for compact reporting ([`BinnedHistogram`]),
//! * multi-level hierarchy attribution and AMAT ([`CacheHierarchy`]).
//!
//! Histograms form a commutative monoid under [`ReuseHistogram::merge`] —
//! this is the `reduce_sum` of paper Algorithm 3.

mod binned;
pub mod hierarchy;
mod histogram;

pub use binned::BinnedHistogram;
pub use hierarchy::{CacheHierarchy, CacheLevel, HierarchyStats, LevelStats};
pub use histogram::ReuseHistogram;

use serde::{Deserialize, Serialize};

/// A reuse distance: the number of *distinct* addresses referenced between
/// two successive accesses to the same address, or [`Distance::Infinite`]
/// for a first touch.
///
/// Distances are zero-based, matching the paper's Table I (an immediate
/// re-reference has distance 0). Consequently a fully associative LRU cache
/// of size `C` hits exactly the references with `d < C`; the paper's prose
/// writes this bound as `d ≤ N` with one-based stack positions in mind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// A re-reference with the given number of intervening distinct
    /// addresses.
    Finite(u64),
    /// A first touch (compulsory miss); also produced by the bounded
    /// analyzer for every reference beyond the cache bound.
    Infinite,
}

impl Distance {
    /// The finite value, if any.
    #[inline]
    pub fn finite(self) -> Option<u64> {
        match self {
            Distance::Finite(d) => Some(d),
            Distance::Infinite => None,
        }
    }

    /// `true` for [`Distance::Infinite`].
    #[inline]
    pub fn is_infinite(self) -> bool {
        matches!(self, Distance::Infinite)
    }

    /// Would this reference hit in a fully associative LRU cache holding
    /// `capacity` lines?
    #[inline]
    pub fn hits_in(self, capacity: u64) -> bool {
        match self {
            Distance::Finite(d) => d < capacity,
            Distance::Infinite => false,
        }
    }
}

impl From<Option<u64>> for Distance {
    fn from(value: Option<u64>) -> Self {
        match value {
            Some(d) => Distance::Finite(d),
            None => Distance::Infinite,
        }
    }
}

impl std::fmt::Display for Distance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Distance::Finite(d) => write!(f, "{d}"),
            Distance::Infinite => write!(f, "inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_in_uses_strict_bound() {
        assert!(Distance::Finite(0).hits_in(1));
        assert!(!Distance::Finite(1).hits_in(1));
        assert!(Distance::Finite(7).hits_in(8));
        assert!(!Distance::Infinite.hits_in(u64::MAX));
    }

    #[test]
    fn conversion_from_option() {
        assert_eq!(Distance::from(Some(3)), Distance::Finite(3));
        assert_eq!(Distance::from(None), Distance::Infinite);
        assert_eq!(Distance::Finite(3).finite(), Some(3));
        assert_eq!(Distance::Infinite.finite(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Distance::Finite(42).to_string(), "42");
        assert_eq!(Distance::Infinite.to_string(), "inf");
    }
}

//! The exact reuse-distance histogram (`hist` in paper Algorithms 1–7).

use crate::{BinnedHistogram, Distance};
use serde::{Deserialize, Serialize};

/// Exact histogram of reuse distances with a dedicated infinity bucket.
///
/// `counts[d]` is the number of references observed with finite reuse
/// distance `d`; [`ReuseHistogram::infinite`] counts first touches (the
/// paper's `hist[∞]`). The vector grows on demand, so the memory footprint
/// is proportional to the *maximum observed* distance, which is bounded by
/// the number of distinct addresses M (or by the cache bound B under the
/// bounded algorithm).
///
/// # Examples
///
/// ```
/// use parda_hist::{Distance, ReuseHistogram};
///
/// let mut hist = ReuseHistogram::new();
/// hist.record(Distance::Infinite);        // first touch of `a`
/// hist.record(Distance::Infinite);        // first touch of `b`
/// hist.record(Distance::Finite(1));       // reuse of `a` over `b`
///
/// assert_eq!(hist.total(), 3);
/// assert_eq!(hist.infinite(), 2);
/// // A 2-line LRU cache hits the single d=1 reference:
/// assert_eq!(hist.hit_count(2), 1);
/// assert_eq!(hist.miss_count(2), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    counts: Vec<u64>,
    infinite: u64,
    total: u64,
}

impl ReuseHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty histogram pre-sized for distances up to
    /// `max_distance`.
    pub fn with_max_distance(max_distance: usize) -> Self {
        Self {
            counts: vec![0; max_distance + 1],
            infinite: 0,
            total: 0,
        }
    }

    /// Record one reference at the given distance.
    #[inline]
    pub fn record(&mut self, distance: Distance) {
        match distance {
            Distance::Finite(d) => self.record_finite(d),
            Distance::Infinite => self.record_infinite(),
        }
    }

    /// Record one reference at finite distance `d`.
    #[inline]
    pub fn record_finite(&mut self, d: u64) {
        let idx = d as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record `n` references at finite distance `d` (sampling estimators
    /// scale each observation by the inverse sampling rate).
    #[inline]
    pub fn record_finite_n(&mut self, d: u64, n: u64) {
        let idx = d as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
    }

    /// Record one first touch (`hist[∞] += 1`).
    #[inline]
    pub fn record_infinite(&mut self) {
        self.infinite += 1;
        self.total += 1;
    }

    /// Record `n` first touches at once (rank 0 absorbing a surviving
    /// local-infinity batch in Algorithm 3 does exactly this).
    #[inline]
    pub fn record_infinite_n(&mut self, n: u64) {
        self.infinite += n;
        self.total += n;
    }

    /// Count of references with finite distance exactly `d`.
    #[inline]
    pub fn count(&self, d: u64) -> u64 {
        self.counts.get(d as usize).copied().unwrap_or(0)
    }

    /// Count of first touches.
    #[inline]
    pub fn infinite(&self) -> u64 {
        self.infinite
    }

    /// Total references recorded (finite + infinite).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total references at finite distances.
    #[inline]
    pub fn finite_total(&self) -> u64 {
        self.total - self.infinite
    }

    /// Largest finite distance with a non-zero count.
    pub fn max_distance(&self) -> Option<u64> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|idx| idx as u64)
    }

    /// The dense finite-distance counts, index = distance.
    pub fn finite_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merge `other` into `self` — the commutative, associative
    /// `reduce_sum` of Algorithm 3.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.infinite += other.infinite;
        self.total += other.total;
    }

    /// Number of references that would *hit* in a fully associative LRU
    /// cache of `capacity` lines (distances `d < capacity`).
    pub fn hit_count(&self, capacity: u64) -> u64 {
        let end = (capacity as usize).min(self.counts.len());
        self.counts[..end].iter().sum()
    }

    /// Number of references that would *miss* in a fully associative LRU
    /// cache of `capacity` lines (capacity misses + cold misses).
    pub fn miss_count(&self, capacity: u64) -> u64 {
        self.total - self.hit_count(capacity)
    }

    /// Miss ratio for an LRU cache of `capacity` lines; 0 for an empty
    /// histogram.
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.miss_count(capacity) as f64 / self.total as f64
        }
    }

    /// Miss-ratio curve sampled at each capacity in `capacities`
    /// (the classic application from the paper's introduction: one pass of
    /// reuse-distance analysis predicts *all* cache sizes at once).
    pub fn miss_ratio_curve(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_ratio(c)))
            .collect()
    }

    /// Mean absolute miss-ratio error against a reference histogram,
    /// sampled at `capacities`.
    ///
    /// This is the accuracy figure of merit for the approximate engines:
    /// average over the given cache sizes of `|mr_self(c) - mr_ref(c)|`.
    /// Returns 0 for an empty capacity list.
    pub fn mrc_mean_absolute_error(&self, reference: &ReuseHistogram, capacities: &[u64]) -> f64 {
        if capacities.is_empty() {
            return 0.0;
        }
        let sum: f64 = capacities
            .iter()
            .map(|&c| (self.miss_ratio(c) - reference.miss_ratio(c)).abs())
            .sum();
        sum / capacities.len() as f64
    }

    /// Miss-ratio curve at every power of two up to (and one past) the
    /// maximum observed distance.
    pub fn miss_ratio_curve_pow2(&self) -> Vec<(u64, f64)> {
        let max = self.max_distance().unwrap_or(0);
        let mut caps = Vec::new();
        let mut c = 1u64;
        loop {
            caps.push(c);
            if c > max {
                break;
            }
            c *= 2;
        }
        self.miss_ratio_curve(&caps)
    }

    /// Mean finite reuse distance, if any finite distance was recorded.
    pub fn mean_finite_distance(&self) -> Option<f64> {
        let n = self.finite_total();
        if n == 0 {
            return None;
        }
        let sum: u128 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u128 * c as u128)
            .sum();
        Some(sum as f64 / n as f64)
    }

    /// Smallest distance `d` such that at least `q` (0..=1) of the finite
    /// references have distance ≤ `d`.
    pub fn finite_distance_quantile(&self, q: f64) -> Option<u64> {
        let n = self.finite_total();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let want = (q * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (d, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= want {
                return Some(d as u64);
            }
        }
        self.max_distance()
    }

    /// Collapse to a log₂-binned summary.
    pub fn to_binned(&self) -> BinnedHistogram {
        let mut binned = BinnedHistogram::new();
        for (d, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                binned.record_n(Distance::Finite(d as u64), c);
            }
        }
        if self.infinite > 0 {
            binned.record_n(Distance::Infinite, self.infinite);
        }
        binned
    }

    /// Reset all counts, keeping allocations.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.infinite = 0;
        self.total = 0;
    }

    /// Iterate over `(distance, count)` pairs with non-zero count, finite
    /// distances in increasing order, then infinity.
    pub fn iter(&self) -> impl Iterator<Item = (Distance, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| (Distance::Finite(d as u64), c))
            .chain((self.infinite > 0).then_some((Distance::Infinite, self.infinite)))
    }
}

impl FromIterator<Distance> for ReuseHistogram {
    fn from_iter<I: IntoIterator<Item = Distance>>(iter: I) -> Self {
        let mut hist = Self::new();
        for d in iter {
            hist.record(d);
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table1_histogram() -> ReuseHistogram {
        // Paper Table I distances: ∞ ∞ ∞ ∞ 1 0 ∞ ∞ ∞ 5
        [
            Distance::Infinite,
            Distance::Infinite,
            Distance::Infinite,
            Distance::Infinite,
            Distance::Finite(1),
            Distance::Finite(0),
            Distance::Infinite,
            Distance::Infinite,
            Distance::Infinite,
            Distance::Finite(5),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn table1_counts() {
        let hist = table1_histogram();
        assert_eq!(hist.total(), 10);
        assert_eq!(hist.infinite(), 7);
        assert_eq!(hist.count(0), 1);
        assert_eq!(hist.count(1), 1);
        assert_eq!(hist.count(5), 1);
        assert_eq!(hist.count(2), 0);
        assert_eq!(hist.max_distance(), Some(5));
        assert_eq!(hist.finite_total(), 3);
    }

    #[test]
    fn hit_miss_counts_by_capacity() {
        let hist = table1_histogram();
        assert_eq!(hist.hit_count(0), 0);
        assert_eq!(hist.hit_count(1), 1); // only d=0
        assert_eq!(hist.hit_count(2), 2); // d=0, d=1
        assert_eq!(hist.hit_count(6), 3); // all finite
        assert_eq!(hist.hit_count(1_000_000), 3);
        assert_eq!(hist.miss_count(6), 7);
        assert!((hist.miss_ratio(6) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mrc_mean_absolute_error_averages_pointwise_gaps() {
        let exact = table1_histogram();
        assert_eq!(exact.mrc_mean_absolute_error(&exact, &[1, 2, 6]), 0.0);
        assert_eq!(exact.mrc_mean_absolute_error(&exact, &[]), 0.0);
        // A histogram with one of the finite hits pushed past capacity 2
        // differs by exactly 0.1 at capacities 2..=5 and agrees elsewhere.
        let mut approx = ReuseHistogram::new();
        approx.record_finite(0);
        approx.record_finite(5);
        approx.record_finite(5);
        approx.record_infinite_n(7);
        let err = approx.mrc_mean_absolute_error(&exact, &[1, 2, 6]);
        assert!((err - 0.1 / 3.0).abs() < 1e-12, "{err}");
    }

    #[test]
    fn merge_is_commutative_sum() {
        let mut a = table1_histogram();
        let mut b = ReuseHistogram::new();
        b.record_finite(100);
        b.record_infinite_n(5);

        let mut ab = a.clone();
        ab.merge(&b);
        b.merge(&a);
        a = ab;
        assert_eq!(a, b);
        assert_eq!(a.total(), 16);
        assert_eq!(a.infinite(), 12);
        assert_eq!(a.count(100), 1);
    }

    #[test]
    fn mean_and_quantiles() {
        let mut hist = ReuseHistogram::new();
        for d in [0u64, 0, 10, 10, 10, 100] {
            hist.record_finite(d);
        }
        let mean = hist.mean_finite_distance().unwrap();
        assert!((mean - (0.0 + 0.0 + 10.0 * 3.0 + 100.0) / 6.0).abs() < 1e-12);
        assert_eq!(hist.finite_distance_quantile(0.5), Some(10));
        assert_eq!(hist.finite_distance_quantile(1.0), Some(100));
        assert_eq!(hist.finite_distance_quantile(0.1), Some(0));
        assert_eq!(ReuseHistogram::new().mean_finite_distance(), None);
    }

    #[test]
    fn mrc_is_monotone_nonincreasing() {
        let hist = table1_histogram();
        let curve = hist.miss_ratio_curve_pow2();
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "MRC must be non-increasing: {curve:?}"
            );
        }
        // Cold misses bound the asymptote.
        let last = curve.last().unwrap().1;
        assert!((last - 0.7).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_nonzero_entries_in_order() {
        let hist = table1_histogram();
        let entries: Vec<_> = hist.iter().collect();
        assert_eq!(
            entries,
            vec![
                (Distance::Finite(0), 1),
                (Distance::Finite(1), 1),
                (Distance::Finite(5), 1),
                (Distance::Infinite, 7),
            ]
        );
    }

    #[test]
    fn clear_keeps_capacity_zeroes_counts() {
        let mut hist = table1_histogram();
        hist.clear();
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.infinite(), 0);
        assert_eq!(hist.max_distance(), None);
    }

    #[test]
    fn serde_round_trip() {
        let hist = table1_histogram();
        let json = serde_json::to_string(&hist).unwrap();
        let back: ReuseHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(hist, back);
    }

    proptest! {
        /// total == infinite + sum(finite) under arbitrary recordings, and
        /// hit_count is monotone in capacity.
        #[test]
        fn invariants_hold(distances in proptest::collection::vec(
            prop_oneof![ (0u64..2_000).prop_map(Distance::Finite), Just(Distance::Infinite) ],
            0..500,
        )) {
            let hist: ReuseHistogram = distances.iter().copied().collect();
            let finite_sum: u64 = hist.finite_counts().iter().sum();
            prop_assert_eq!(hist.total(), finite_sum + hist.infinite());
            let mut prev = 0;
            for cap in [0u64, 1, 2, 4, 1_024, 4_096] {
                let h = hist.hit_count(cap);
                prop_assert!(h >= prev);
                prev = h;
            }
            prop_assert_eq!(hist.hit_count(u64::from(u32::MAX)), hist.finite_total());
        }

        /// merge(a, b).total == a.total + b.total and per-bucket sums match.
        #[test]
        fn merge_adds_pointwise(
            a in proptest::collection::vec(0u64..64, 0..100),
            b in proptest::collection::vec(0u64..64, 0..100),
        ) {
            let ha: ReuseHistogram = a.iter().map(|&d| Distance::Finite(d)).collect();
            let hb: ReuseHistogram = b.iter().map(|&d| Distance::Finite(d)).collect();
            let mut merged = ha.clone();
            merged.merge(&hb);
            prop_assert_eq!(merged.total(), ha.total() + hb.total());
            for d in 0..64u64 {
                prop_assert_eq!(merged.count(d), ha.count(d) + hb.count(d));
            }
        }
    }
}

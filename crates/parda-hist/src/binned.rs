//! Log₂-binned reuse-distance summaries for compact reporting.

use crate::Distance;
use serde::{Deserialize, Serialize};

/// Histogram with logarithmic buckets.
///
/// Bucket `0` holds distance 0; bucket `b ≥ 1` holds distances in
/// `[2^(b-1), 2^b)`. A separate bucket counts infinite distances. This is
/// the presentation format used by most reuse-distance tooling (and by our
/// CLI's `report` output): exact histograms over millions of distances are
/// unreadable, but the pow-2 shape shows working-set knees directly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinnedHistogram {
    bins: Vec<u64>,
    infinite: u64,
    total: u64,
}

impl BinnedHistogram {
    /// Create an empty binned histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for finite distance `d`.
    #[inline]
    pub fn bin_index(d: u64) -> usize {
        if d == 0 {
            0
        } else {
            64 - d.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive distance range `[lo, hi)` covered by bucket `idx`.
    pub fn bin_range(idx: usize) -> (u64, u64) {
        if idx == 0 {
            (0, 1)
        } else {
            (1 << (idx - 1), 1 << idx)
        }
    }

    /// Record one reference.
    #[inline]
    pub fn record(&mut self, distance: Distance) {
        self.record_n(distance, 1);
    }

    /// Record `n` references at the same distance.
    pub fn record_n(&mut self, distance: Distance, n: u64) {
        match distance {
            Distance::Finite(d) => {
                let idx = Self::bin_index(d);
                if idx >= self.bins.len() {
                    self.bins.resize(idx + 1, 0);
                }
                self.bins[idx] += n;
            }
            Distance::Infinite => self.infinite += n,
        }
        self.total += n;
    }

    /// Count in bucket `idx`.
    pub fn bin(&self, idx: usize) -> u64 {
        self.bins.get(idx).copied().unwrap_or(0)
    }

    /// Count of infinite distances.
    pub fn infinite(&self) -> u64 {
        self.infinite
    }

    /// Total references recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets with data (the highest occupied bucket + 1).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Merge another binned histogram into this one.
    pub fn merge(&mut self, other: &BinnedHistogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (dst, &src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst += src;
        }
        self.infinite += other.infinite;
        self.total += other.total;
    }

    /// Render a fixed-width ASCII table of the bins, one row per occupied
    /// bucket — the CLI's `report` body.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = 40usize;
        let max = self
            .bins
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.infinite);
        let bar = |count: u64| {
            if max == 0 {
                String::new()
            } else {
                "#".repeat(((count as u128 * width as u128) / max as u128) as usize)
            }
        };
        let _ = writeln!(out, "{:>16} {:>12}  distribution", "distance", "count");
        for (idx, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (lo, hi) = Self::bin_range(idx);
            let label = if lo + 1 == hi {
                format!("{lo}")
            } else {
                format!("{lo}..{}", hi - 1)
            };
            let _ = writeln!(out, "{label:>16} {count:>12}  {}", bar(count));
        }
        if self.infinite > 0 {
            let _ = writeln!(
                out,
                "{:>16} {:>12}  {}",
                "inf",
                self.infinite,
                bar(self.infinite)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_boundaries() {
        assert_eq!(BinnedHistogram::bin_index(0), 0);
        assert_eq!(BinnedHistogram::bin_index(1), 1);
        assert_eq!(BinnedHistogram::bin_index(2), 2);
        assert_eq!(BinnedHistogram::bin_index(3), 2);
        assert_eq!(BinnedHistogram::bin_index(4), 3);
        assert_eq!(BinnedHistogram::bin_index(7), 3);
        assert_eq!(BinnedHistogram::bin_index(8), 4);
        assert_eq!(BinnedHistogram::bin_index(1023), 10);
        assert_eq!(BinnedHistogram::bin_index(1024), 11);
    }

    #[test]
    fn bin_range_inverts_bin_index() {
        for idx in 0..20usize {
            let (lo, hi) = BinnedHistogram::bin_range(idx);
            assert_eq!(BinnedHistogram::bin_index(lo), idx);
            assert_eq!(BinnedHistogram::bin_index(hi - 1), idx);
            if idx > 0 {
                assert_eq!(BinnedHistogram::bin_index(lo - 1), idx - 1);
            }
        }
    }

    #[test]
    fn record_and_totals() {
        let mut b = BinnedHistogram::new();
        b.record(Distance::Finite(0));
        b.record(Distance::Finite(5)); // bucket 3 (4..8)
        b.record(Distance::Finite(6)); // bucket 3
        b.record(Distance::Infinite);
        assert_eq!(b.total(), 4);
        assert_eq!(b.bin(0), 1);
        assert_eq!(b.bin(3), 2);
        assert_eq!(b.infinite(), 1);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = BinnedHistogram::new();
        a.record_n(Distance::Finite(2), 3);
        let mut b = BinnedHistogram::new();
        b.record_n(Distance::Finite(3), 4);
        b.record_n(Distance::Infinite, 2);
        a.merge(&b);
        assert_eq!(a.bin(2), 7, "distances 2 and 3 share bucket 2");
        assert_eq!(a.infinite(), 2);
        assert_eq!(a.total(), 9);
    }

    #[test]
    fn render_mentions_occupied_buckets_only() {
        let mut b = BinnedHistogram::new();
        b.record_n(Distance::Finite(0), 10);
        b.record_n(Distance::Finite(100), 5);
        b.record_n(Distance::Infinite, 1);
        let text = b.render();
        assert!(text.contains("64..127"), "got:\n{text}");
        assert!(text.contains("inf"));
        assert!(!text.contains("1..1\n"), "empty buckets must be skipped");
    }
}

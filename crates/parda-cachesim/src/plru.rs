//! Tree-based pseudo-LRU (PLRU) cache.
//!
//! Real hardware rarely implements true LRU beyond a few ways; the common
//! substitute is tree-PLRU: a binary tree of direction bits per set,
//! flipped away from the accessed way on every touch, walked "toward the
//! cold side" to choose a victim. The paper grounds reuse distance in "the
//! LRU replacement policy or its variants" — this simulator quantifies how
//! far the variant strays from the model: identical at 2 ways (tested),
//! increasingly approximate at higher associativity.

use crate::CacheStats;

/// One tree-PLRU set of `ways` lines (`ways` a power of two).
#[derive(Clone, Debug)]
struct PlruSet {
    /// Resident block numbers, `u64::MAX` = invalid.
    lines: Vec<u64>,
    /// Direction bits of the complete binary tree, heap-indexed from 1;
    /// `false` = the "older" side is the left child.
    bits: Vec<bool>,
}

impl PlruSet {
    fn new(ways: usize) -> Self {
        Self {
            lines: vec![u64::MAX; ways],
            bits: vec![false; ways.max(2)],
        }
    }

    /// Flip the path bits to point *away* from `way`.
    fn touch(&mut self, way: usize) {
        let ways = self.lines.len();
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                self.bits[node] = true; // cold side is now the right half
                hi = mid;
                node *= 2;
            } else {
                self.bits[node] = false;
                lo = mid;
                node = node * 2 + 1;
            }
        }
    }

    /// Walk the direction bits to the pseudo-LRU victim way.
    /// `bits[node] == true` means the cold (victim) side is the right half.
    fn victim(&self) -> usize {
        let ways = self.lines.len();
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo
    }

    fn access(&mut self, block: u64) -> bool {
        if let Some(way) = self.lines.iter().position(|&b| b == block) {
            self.touch(way);
            return true;
        }
        // Prefer an invalid way before evicting.
        let way = self
            .lines
            .iter()
            .position(|&b| b == u64::MAX)
            .unwrap_or_else(|| self.victim());
        self.lines[way] = block;
        self.touch(way);
        false
    }
}

/// Set-associative cache with tree-PLRU replacement.
///
/// # Examples
///
/// ```
/// use parda_cachesim::PlruCache;
///
/// let mut cache = PlruCache::new(4, 4, 6); // 4 sets × 4 ways × 64 B
/// assert!(!cache.access(0x000));
/// assert!(cache.access(0x001)); // same line
/// ```
#[derive(Clone, Debug)]
pub struct PlruCache {
    sets: Vec<PlruSet>,
    block_bits: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl PlruCache {
    /// `num_sets` sets (power of two) × `ways` ways (power of two) of
    /// `1 << block_bits`-byte lines.
    pub fn new(num_sets: usize, ways: usize, block_bits: u32) -> Self {
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(
            ways > 0 && ways.is_power_of_two(),
            "tree-PLRU needs power-of-two ways"
        );
        assert!(block_bits < 32);
        Self {
            sets: vec![PlruSet::new(ways); num_sets],
            block_bits,
            set_mask: (num_sets - 1) as u64,
            stats: CacheStats::default(),
        }
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.sets[0].lines.len()
    }

    /// Accumulated hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set = (block & self.set_mask) as usize;
        let hit = self.sets[set].access(block);
        self.stats.record(hit);
        hit
    }

    /// Replay a whole trace, returning the final stats.
    pub fn run_trace(&mut self, addrs: &[u64]) -> CacheStats {
        for &a in addrs {
            self.access(a);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetAssociativeCache;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn two_way_plru_equals_true_lru() {
        // With 2 ways the PLRU tree is a single bit — exactly LRU.
        let mut plru = PlruCache::new(8, 2, 0);
        let mut lru = SetAssociativeCache::new(8, 2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            let a = rng.gen_range(0u64..64);
            assert_eq!(plru.access(a), lru.access(a));
        }
        assert_eq!(plru.stats().hits, lru.stats().hits);
    }

    #[test]
    fn repeated_access_always_hits() {
        let mut c = PlruCache::new(1, 8, 0);
        c.access(5);
        for _ in 0..100 {
            assert!(c.access(5));
        }
    }

    #[test]
    fn fills_invalid_ways_before_evicting() {
        let mut c = PlruCache::new(1, 4, 0);
        for a in 0..4u64 {
            assert!(!c.access(a));
        }
        // All four must still be resident: no eviction happened during fill.
        for a in 0..4u64 {
            assert!(c.access(a), "line {a} was evicted during fill");
        }
    }

    #[test]
    fn plru_approximates_lru_miss_ratio() {
        // On random traffic the PLRU miss ratio should track true LRU
        // within a few percent.
        let mut rng = StdRng::seed_from_u64(9);
        let trace: Vec<u64> = (0..200_000)
            .map(|_| rng.gen_range(0u64..2_000) << 6)
            .collect();
        let mut plru = PlruCache::new(64, 8, 6);
        let mut lru = SetAssociativeCache::new(64, 8, 6);
        let plru_mr = plru.run_trace(&trace).miss_ratio();
        let lru_mr = lru.run_trace(&trace).miss_ratio();
        assert!(
            (plru_mr - lru_mr).abs() < 0.03,
            "plru {plru_mr} vs lru {lru_mr}"
        );
    }

    #[test]
    fn plru_diverges_from_lru_on_adversarial_pattern() {
        // Sanity check that this is genuinely a different policy: over
        // random traffic in one 4-way set, PLRU must disagree with true LRU
        // on at least one access.
        let mut plru = PlruCache::new(1, 4, 0);
        let mut lru = SetAssociativeCache::new(1, 4, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut diverged = false;
        for _ in 0..10_000 {
            let a = rng.gen_range(0u64..6);
            if plru.access(a) != lru.access(a) {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "4-way PLRU never deviated from LRU in 10k accesses"
        );
    }

    #[test]
    fn geometry() {
        let c = PlruCache::new(16, 8, 6);
        assert_eq!(c.capacity_lines(), 128);
    }
}

//! Cache simulators.
//!
//! Reuse-distance analysis *predicts* cache behaviour: with a fully
//! associative LRU cache of `C` lines, exactly the references with distance
//! `d < C` hit. These simulators provide the ground truth that prediction is
//! validated against throughout the workspace test suite:
//!
//! * [`LruCache`] — fully associative LRU with O(1) accesses (hash map +
//!   intrusive doubly-linked list). The histogram identity is exact for it.
//! * [`SetAssociativeCache`] — realistic set-associative geometry, for
//!   quantifying how far real caches deviate from the fully associative
//!   model (conflict misses).
//! * [`PlruCache`] — tree pseudo-LRU replacement, the hardware
//!   approximation of LRU ("the LRU replacement policy or its variants",
//!   paper §I).
//!
//! Both count hits/misses in [`CacheStats`].

mod lru;
mod plru;
mod set_assoc;

pub use lru::LruCache;
pub use plru::PlruCache;
pub use set_assoc::SetAssociativeCache;

/// Hit/miss counters shared by the simulators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// References served from the cache.
    pub hits: u64,
    /// References that had to be filled.
    pub misses: u64,
}

impl CacheStats {
    /// Total references processed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0 for no traffic.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Record one access.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CacheStats::default();
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.total(), 3);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}

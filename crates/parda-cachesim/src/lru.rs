//! Fully associative LRU cache with O(1) accesses.

use crate::CacheStats;
use parda_hash::RobinHoodMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Entry {
    addr: u64,
    prev: u32,
    next: u32,
}

/// Fully associative LRU cache over 64-bit line addresses.
///
/// Backed by a [`RobinHoodMap`] for lookup and an arena-based intrusive
/// doubly-linked list for recency order, so `access` is O(1) — important
/// because the test suite replays multi-million-reference traces against it.
///
/// # Examples
///
/// ```
/// use parda_cachesim::LruCache;
///
/// let mut cache = LruCache::new(2);
/// assert!(!cache.access(1)); // miss (cold)
/// assert!(!cache.access(2)); // miss (cold)
/// assert!(cache.access(1));  // hit
/// assert!(!cache.access(3)); // miss, evicts 2 (LRU)
/// assert!(!cache.access(2)); // miss again
/// ```
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    map: RobinHoodMap<u64, u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    stats: CacheStats,
}

impl LruCache {
    /// Create a cache holding `capacity` lines. Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            map: RobinHoodMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Configured capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, idx: u32) {
        let Entry { prev, next, .. } = self.entries[idx as usize];
        if prev != NIL {
            self.entries[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.entries[idx as usize].prev = NIL;
        self.entries[idx as usize].next = self.head;
        if self.head != NIL {
            self.entries[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Access one line address; returns `true` on hit. Misses insert the
    /// line, evicting the LRU line if the cache is full.
    pub fn access(&mut self, addr: u64) -> bool {
        if let Some(&idx) = self.map.get(addr) {
            self.unlink(idx);
            self.push_front(idx);
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let victim_addr = self.entries[victim as usize].addr;
            self.unlink(victim);
            self.map.remove(victim_addr);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx as usize] = Entry {
                    addr,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.entries.push(Entry {
                    addr,
                    prev: NIL,
                    next: NIL,
                });
                (self.entries.len() - 1) as u32
            }
        };
        self.map.insert(addr, idx);
        self.push_front(idx);
        false
    }

    /// `true` if `addr` is resident (no recency update, no stats).
    pub fn contains(&self, addr: u64) -> bool {
        self.map.contains_key(addr)
    }

    /// Replay a whole trace, returning the final stats.
    pub fn run_trace(&mut self, addrs: &[u64]) -> CacheStats {
        for &a in addrs {
            self.access(a);
        }
        self.stats
    }

    /// Resident lines from most to least recently used (diagnostics/tests).
    pub fn recency_order(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.entries[cur as usize].addr);
            cur = self.entries[cur as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_hit_miss_sequence() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1));
        assert!(!c.access(3)); // evicts 2
        assert!(!c.access(2)); // 2 was evicted
        assert!(c.access(3));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn recency_order_tracks_accesses() {
        let mut c = LruCache::new(3);
        for a in [1u64, 2, 3] {
            c.access(a);
        }
        assert_eq!(c.recency_order(), vec![3, 2, 1]);
        c.access(1);
        assert_eq!(c.recency_order(), vec![1, 3, 2]);
        c.access(4);
        assert_eq!(c.recency_order(), vec![4, 1, 3], "2 must be the victim");
    }

    #[test]
    fn capacity_one_only_hits_immediate_reuse() {
        let mut c = LruCache::new(1);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cyclic_sweep_of_capacity_plus_one_never_hits() {
        // The classic LRU pathology.
        let mut c = LruCache::new(4);
        for i in 0..100u64 {
            assert!(!c.access(i % 5), "reference {i} must miss");
        }
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut c = LruCache::new(8);
        for i in 0..1000u64 {
            c.access(i % 37);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn contains_does_not_touch_recency() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        assert!(c.contains(1));
        c.access(3); // victim must still be 1 (contains didn't refresh it)
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    /// Reference model: Vec-based LRU.
    fn naive_lru(capacity: usize, trace: &[u64]) -> (u64, u64) {
        let mut stack: Vec<u64> = Vec::new();
        let (mut hits, mut misses) = (0, 0);
        for &a in trace {
            if let Some(pos) = stack.iter().position(|&x| x == a) {
                stack.remove(pos);
                stack.insert(0, a);
                hits += 1;
            } else {
                if stack.len() == capacity {
                    stack.pop();
                }
                stack.insert(0, a);
                misses += 1;
            }
        }
        (hits, misses)
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            capacity in 1usize..16,
            trace in proptest::collection::vec(0u64..32, 0..500),
        ) {
            let mut c = LruCache::new(capacity);
            let stats = c.run_trace(&trace);
            let (hits, misses) = naive_lru(capacity, &trace);
            prop_assert_eq!(stats.hits, hits);
            prop_assert_eq!(stats.misses, misses);
        }
    }
}

//! Set-associative LRU cache.
//!
//! Reuse distance models a *fully associative* cache; real caches are
//! set-associative and add conflict misses on top. This simulator lets
//! tests and examples quantify that gap (e.g. the `mrc_cache_model`
//! example compares the reuse-distance MRC against 2-/8-way simulations).

use crate::CacheStats;

/// Set-associative LRU cache with configurable geometry.
///
/// Addresses are byte addresses; `block_bits` selects the line size
/// (`1 << block_bits` bytes), and the block index is split into set index
/// and tag. Within a set, replacement is true LRU.
///
/// # Examples
///
/// ```
/// use parda_cachesim::SetAssociativeCache;
///
/// // 4 sets × 2 ways of 64-byte lines = 512 B.
/// let mut cache = SetAssociativeCache::new(4, 2, 6);
/// assert!(!cache.access(0x000));
/// assert!(cache.access(0x03f)); // same 64-byte line
/// assert!(!cache.access(0x040)); // next line
/// ```
#[derive(Clone, Debug)]
pub struct SetAssociativeCache {
    sets: Vec<Vec<u64>>, // per set: block numbers, index 0 = MRU
    ways: usize,
    block_bits: u32,
    set_mask: u64,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Create a cache with `num_sets` sets (power of two), `ways` lines per
    /// set, and `1 << block_bits`-byte lines.
    pub fn new(num_sets: usize, ways: usize, block_bits: u32) -> Self {
        assert!(
            num_sets > 0 && num_sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        assert!(block_bits < 32, "block size out of range");
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            block_bits,
            set_mask: (num_sets - 1) as u64,
            stats: CacheStats::default(),
        }
    }

    /// A fully associative cache of `lines` lines with the given block size
    /// (single set).
    pub fn fully_associative(lines: usize, block_bits: u32) -> Self {
        let mut cache = Self::new(1, lines, block_bits);
        cache.sets[0].reserve(lines);
        cache
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_lines() << self.block_bits
    }

    /// Accumulated hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_bits;
        let set_idx = (block & self.set_mask) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set[..=pos].rotate_right(1);
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        if set.len() == self.ways {
            set.pop();
        }
        set.insert(0, block);
        false
    }

    /// Replay a whole trace, returning the final stats.
    pub fn run_trace(&mut self, addrs: &[u64]) -> CacheStats {
        for &a in addrs {
            self.access(a);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn same_line_accesses_hit() {
        let mut c = SetAssociativeCache::new(4, 2, 6);
        assert!(!c.access(0x100));
        assert!(c.access(0x101));
        assert!(c.access(0x13f));
        assert!(!c.access(0x140));
    }

    #[test]
    fn conflict_misses_within_one_set() {
        // Direct-mapped, 4 sets of 64-byte lines: addresses 0x000 and 0x100
        // map to set 0 and evict each other.
        let mut c = SetAssociativeCache::new(4, 1, 6);
        assert!(!c.access(0x000));
        assert!(!c.access(0x100));
        assert!(!c.access(0x000), "conflict miss expected");
        // A 2-way cache with the same total size avoids the conflict.
        let mut c2 = SetAssociativeCache::new(2, 2, 6);
        assert!(!c2.access(0x000));
        assert!(!c2.access(0x100));
        // 0x000: block 0 → set 0; 0x100: block 4 → set 0. Both fit in 2 ways.
        assert!(c2.access(0x000), "2-way must retain both");
    }

    #[test]
    fn fully_associative_matches_lru_cache() {
        // With block_bits = 0 and one set, the simulator degenerates to the
        // O(1) LruCache semantics: cross-validate the two implementations.
        let mut sa = SetAssociativeCache::fully_associative(16, 0);
        let mut lru = LruCache::new(16);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20_000 {
            let a = rng.gen_range(0u64..64);
            assert_eq!(sa.access(a), lru.access(a));
        }
        assert_eq!(sa.stats().hits, lru.stats().hits);
    }

    #[test]
    fn geometry_accessors() {
        let c = SetAssociativeCache::new(64, 8, 6);
        assert_eq!(c.capacity_lines(), 512);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn higher_associativity_never_increases_misses_on_scan() {
        // Sequential scan through 2× the cache: misses are compulsory for
        // every new line regardless of associativity, but on re-scan the
        // direct-mapped cache keeps missing lines that an associative one
        // with identical size also misses (LRU sweep). Just verify both run
        // and the fully associative result matches theory: all misses.
        let lines = 64u64;
        let mut full = SetAssociativeCache::fully_associative(lines as usize, 6);
        for _ in 0..3 {
            for b in 0..(2 * lines) {
                full.access(b << 6);
            }
        }
        assert_eq!(
            full.stats().hits,
            0,
            "sweep of 2×capacity never hits in LRU"
        );
    }
}

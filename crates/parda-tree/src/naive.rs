//! The naïve stack of the paper's Section III-A.
//!
//! An ordered move-to-front list simulating an infinite, fully associative
//! LRU cache: the reuse distance of a reference is the depth at which its
//! address is found (∞ for a first touch). O(M) per access, O(N·M) per
//! trace — kept as the obviously-correct baseline every other engine is
//! validated against, and as the slow comparator in the Table IV context
//! (the paper's "several orders of magnitude" motivation).

/// Move-to-front LRU stack over addresses.
///
/// # Examples
///
/// ```
/// use parda_tree::NaiveStack;
///
/// let mut stack = NaiveStack::new();
/// assert_eq!(stack.access(10), None);     // first touch: infinite distance
/// assert_eq!(stack.access(20), None);
/// assert_eq!(stack.access(10), Some(1));  // one distinct element in between
/// assert_eq!(stack.access(10), Some(0));  // immediate reuse
/// ```
#[derive(Clone, Debug, Default)]
pub struct NaiveStack {
    /// Index 0 is the top of the stack (most recently used).
    entries: Vec<u64>,
}

impl NaiveStack {
    /// Create an empty stack.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Create an empty stack with room for `capacity` distinct addresses.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Process one reference: return its reuse distance (`None` = ∞, a cold
    /// first touch) and move the address to the top of the stack.
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        match self.entries.iter().position(|&a| a == addr) {
            Some(pos) => {
                // The distance is the number of *distinct* addresses accessed
                // since the previous reference — exactly the stack depth.
                self.entries[..=pos].rotate_right(1);
                debug_assert_eq!(self.entries[0], addr);
                Some(pos as u64)
            }
            None => {
                self.entries.insert(0, addr);
                None
            }
        }
    }

    /// Peek at the reuse distance `addr` *would* have, without updating.
    pub fn peek(&self, addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .position(|&a| a == addr)
            .map(|p| p as u64)
    }

    /// Number of distinct addresses seen so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no reference has been processed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all state, retaining the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The stack from most to least recently used (diagnostic).
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_trace_distances() {
        // Paper Table I: trace `d a c b c c g e f a` has distances
        // ∞ ∞ ∞ ∞ 1 0 ∞ ∞ ∞ 5.
        let trace = [b'd', b'a', b'c', b'b', b'c', b'c', b'g', b'e', b'f', b'a'];
        let expected = [
            None,
            None,
            None,
            None,
            Some(1),
            Some(0),
            None,
            None,
            None,
            Some(5),
        ];
        let mut stack = NaiveStack::new();
        for (i, (&a, &want)) in trace.iter().zip(expected.iter()).enumerate() {
            assert_eq!(stack.access(a as u64), want, "reference {i}");
        }
        assert_eq!(stack.len(), 7, "Table I has M = 7 distinct elements");
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut stack = NaiveStack::new();
        for a in [1u64, 2, 3] {
            stack.access(a);
        }
        assert_eq!(stack.as_slice(), &[3, 2, 1]);
        stack.access(1);
        assert_eq!(stack.as_slice(), &[1, 3, 2]);
    }

    #[test]
    fn peek_does_not_mutate() {
        let mut stack = NaiveStack::new();
        stack.access(1);
        stack.access(2);
        assert_eq!(stack.peek(1), Some(1));
        assert_eq!(stack.peek(1), Some(1), "peek must be idempotent");
        assert_eq!(stack.peek(9), None);
        assert_eq!(stack.as_slice(), &[2, 1]);
    }

    #[test]
    fn clear_resets_history() {
        let mut stack = NaiveStack::new();
        stack.access(5);
        stack.clear();
        assert!(stack.is_empty());
        assert_eq!(stack.access(5), None, "post-clear access is a cold miss");
    }
}

//! Fenwick (binary indexed) tree with prefix sums and rank selection.
//!
//! Backs [`crate::VectorTree`] (the Bennett–Kruskal partial-sum structure)
//! and `parda_trace::LruStack`: occupancy counts over time slots, with
//! O(log n) point update, prefix sum, and `select` (find the k-th occupied
//! slot) via binary lifting.

/// Fenwick tree over `u64` counts with rank selection.
///
/// # Examples
///
/// ```
/// use parda_tree::Fenwick;
///
/// let mut f = Fenwick::new(8);
/// f.add(2, 1);
/// f.add(5, 1);
/// assert_eq!(f.prefix_sum(5), 1);    // slots 0..5 contain one item
/// assert_eq!(f.select(1), Some(2));  // 1st item lives at slot 2
/// assert_eq!(f.select(2), Some(5));
/// assert_eq!(f.select(3), None);
/// ```
#[derive(Clone, Debug)]
pub struct Fenwick {
    /// 1-based internal array; `tree[i]` covers `i - lowbit(i) + 1 ..= i`.
    tree: Vec<u64>,
    total: u64,
}

impl Fenwick {
    /// Create a tree over `n` slots, all zero.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
            total: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// `true` if the tree covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all slots.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` to slot `idx` (0-based).
    pub fn add(&mut self, idx: usize, delta: u64) {
        self.total += delta;
        let mut i = idx + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Subtract `delta` from slot `idx` (0-based). Panics in debug builds if
    /// the slot would go negative.
    pub fn sub(&mut self, idx: usize, delta: u64) {
        debug_assert!(self.total >= delta);
        self.total -= delta;
        let mut i = idx + 1;
        while i < self.tree.len() {
            debug_assert!(self.tree[i] >= delta, "Fenwick underflow at {idx}");
            self.tree[i] -= delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of slots `0..idx` (exclusive upper bound; 0-based).
    pub fn prefix_sum(&self, idx: usize) -> u64 {
        let mut i = idx.min(self.len());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of slots `idx..len` (0-based).
    pub fn suffix_sum(&self, idx: usize) -> u64 {
        self.total - self.prefix_sum(idx)
    }

    /// Find the smallest slot index such that the prefix sum through it
    /// reaches `k` (1-based rank). `None` if `k > total`. O(log n) binary
    /// lifting.
    pub fn select(&self, k: u64) -> Option<usize> {
        if k == 0 || k > self.total {
            return None;
        }
        let mut remaining = k;
        let mut pos = 0usize; // 1-based cursor into tree
        let mut step = self.tree.len().next_power_of_two() / 2;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        Some(pos) // pos is 0-based slot (1-based tree index of predecessor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_sums_match_naive() {
        let values = [3u64, 0, 5, 1, 0, 2, 7];
        let mut f = Fenwick::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            f.add(i, v);
        }
        let mut acc = 0;
        for i in 0..=values.len() {
            assert_eq!(f.prefix_sum(i), acc, "prefix {i}");
            if i < values.len() {
                acc += values[i];
            }
        }
        assert_eq!(f.total(), 18);
        assert_eq!(f.suffix_sum(2), 15);
    }

    #[test]
    fn select_finds_kth_occupied() {
        let mut f = Fenwick::new(10);
        for idx in [1usize, 4, 9] {
            f.add(idx, 1);
        }
        assert_eq!(f.select(1), Some(1));
        assert_eq!(f.select(2), Some(4));
        assert_eq!(f.select(3), Some(9));
        assert_eq!(f.select(4), None);
        assert_eq!(f.select(0), None);
    }

    #[test]
    fn select_with_multiplicity() {
        let mut f = Fenwick::new(4);
        f.add(0, 2);
        f.add(3, 3);
        assert_eq!(f.select(1), Some(0));
        assert_eq!(f.select(2), Some(0));
        assert_eq!(f.select(3), Some(3));
        assert_eq!(f.select(5), Some(3));
        assert_eq!(f.select(6), None);
    }

    #[test]
    fn sub_then_select_skips_removed() {
        let mut f = Fenwick::new(8);
        for idx in 0..8 {
            f.add(idx, 1);
        }
        f.sub(3, 1);
        f.sub(0, 1);
        assert_eq!(f.select(1), Some(1));
        assert_eq!(f.select(3), Some(4));
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn non_power_of_two_sizes() {
        // Binary lifting must not read past the end for awkward sizes.
        for n in [1usize, 3, 5, 7, 100, 1000, 1023, 1025] {
            let mut f = Fenwick::new(n);
            for i in 0..n {
                f.add(i, 1);
            }
            for k in 1..=n as u64 {
                assert_eq!(f.select(k), Some(k as usize - 1), "n={n} k={k}");
            }
        }
    }

    proptest! {
        #[test]
        fn select_is_inverse_of_prefix_sum(
            values in proptest::collection::vec(0u64..4, 1..200),
            k in 1u64..500,
        ) {
            let mut f = Fenwick::new(values.len());
            for (i, &v) in values.iter().enumerate() {
                f.add(i, v);
            }
            match f.select(k) {
                None => prop_assert!(k > f.total()),
                Some(idx) => {
                    prop_assert!(f.prefix_sum(idx) < k);
                    prop_assert!(f.prefix_sum(idx + 1) >= k);
                }
            }
        }
    }
}

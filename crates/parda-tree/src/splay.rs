//! Size-augmented splay tree — the structure used by the reference PARDA
//! implementation.
//!
//! Sugumar & Abraham observed that self-adjusting trees perform well for
//! stack-distance processing because trace locality maps directly onto tree
//! locality: recently referenced timestamps sit near the root. Every node
//! maintains the size of its subtree, so the rank query of paper Algorithm 2
//! (count of timestamps greater than `t`) is answered along a single root-to-
//! node path.
//!
//! Nodes live in an index-based arena (`Vec<Node>` + free list): no
//! per-node allocation, 32-bit links halve pointer traffic, and `clear`
//! reuses the buffer across analysis phases.

use crate::{ReuseTree, NIL};

#[derive(Clone, Debug)]
struct Node {
    ts: u64,
    addr: u64,
    left: u32,
    right: u32,
    parent: u32,
    /// Number of nodes in the subtree rooted here (including this node).
    size: u32,
}

/// Self-adjusting binary search tree keyed by timestamp with subtree sizes.
///
/// # Examples
///
/// ```
/// use parda_tree::{ReuseTree, SplayTree};
///
/// let mut tree = SplayTree::new();
/// for (ts, addr) in [(0, 100), (1, 200), (2, 300)] {
///     tree.insert(ts, addr);
/// }
/// // Two elements were accessed after time 0:
/// assert_eq!(tree.distance(0), 2);
/// assert_eq!(tree.oldest(), Some((0, 100)));
/// ```
#[derive(Clone, Debug)]
pub struct SplayTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl Default for SplayTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SplayTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Create an empty tree with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn update(&mut self, n: u32) {
        let left = self.nodes[n as usize].left;
        let right = self.nodes[n as usize].right;
        self.nodes[n as usize].size = 1 + self.size(left) + self.size(right);
    }

    fn alloc(&mut self, ts: u64, addr: u64, parent: u32) -> u32 {
        let node = Node {
            ts,
            addr,
            left: NIL,
            right: NIL,
            parent,
            size: 1,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Rotate `x` above its parent, maintaining sizes and parent links.
    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        debug_assert_ne!(p, NIL, "rotate requires a parent");
        let g = self.nodes[p as usize].parent;
        let x_is_left = self.nodes[p as usize].left == x;

        // Move x's inner child across to p.
        let inner = if x_is_left {
            let inner = self.nodes[x as usize].right;
            self.nodes[p as usize].left = inner;
            self.nodes[x as usize].right = p;
            inner
        } else {
            let inner = self.nodes[x as usize].left;
            self.nodes[p as usize].right = inner;
            self.nodes[x as usize].left = p;
            inner
        };
        if inner != NIL {
            self.nodes[inner as usize].parent = p;
        }
        self.nodes[p as usize].parent = x;
        self.nodes[x as usize].parent = g;
        if g == NIL {
            self.root = x;
        } else if self.nodes[g as usize].left == p {
            self.nodes[g as usize].left = x;
        } else {
            self.nodes[g as usize].right = x;
        }
        self.update(p);
        self.update(x);
    }

    /// Splay `x` to the root with the standard zig / zig-zig / zig-zag steps.
    fn splay(&mut self, x: u32) {
        loop {
            let p = self.nodes[x as usize].parent;
            if p == NIL {
                break;
            }
            let g = self.nodes[p as usize].parent;
            if g == NIL {
                self.rotate(x); // zig
            } else {
                let x_left = self.nodes[p as usize].left == x;
                let p_left = self.nodes[g as usize].left == p;
                if x_left == p_left {
                    self.rotate(p); // zig-zig: rotate parent first
                    self.rotate(x);
                } else {
                    self.rotate(x); // zig-zag: rotate x twice
                    self.rotate(x);
                }
            }
        }
    }

    /// Find the arena index of the node with timestamp `ts` without
    /// restructuring. Also reports the last node on the search path so the
    /// caller can splay it (keeping the amortized bound on misses).
    fn find(&self, ts: u64) -> (u32, u32) {
        let mut cur = self.root;
        let mut last = NIL;
        while cur != NIL {
            last = cur;
            let node = &self.nodes[cur as usize];
            cur = match ts.cmp(&node.ts) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => return (cur, last),
            };
        }
        (NIL, last)
    }

    /// Remove the current root, joining its subtrees.
    fn remove_root(&mut self) -> (u64, u64) {
        let old = self.root;
        debug_assert_ne!(old, NIL);
        let Node {
            ts,
            addr,
            left,
            right,
            ..
        } = self.nodes[old as usize];
        if left != NIL {
            self.nodes[left as usize].parent = NIL;
        }
        if right != NIL {
            self.nodes[right as usize].parent = NIL;
        }
        if left == NIL {
            self.root = right;
        } else {
            // Splay the maximum of the left subtree to its root, then hang
            // the right subtree off it.
            let mut max = left;
            while self.nodes[max as usize].right != NIL {
                max = self.nodes[max as usize].right;
            }
            self.root = left;
            self.splay(max);
            debug_assert_eq!(self.root, max);
            self.nodes[max as usize].right = right;
            if right != NIL {
                self.nodes[right as usize].parent = max;
            }
            self.update(max);
        }
        self.free.push(old);
        self.len -= 1;
        (ts, addr)
    }

    /// Structural self-check for tests: BST order, sizes, parent links.
    #[doc(hidden)]
    pub fn validate(&self) {
        fn walk(tree: &SplayTree, n: u32, lo: Option<u64>, hi: Option<u64>) -> u32 {
            if n == NIL {
                return 0;
            }
            let node = &tree.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.ts > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.ts < hi, "BST order violated");
            }
            for child in [node.left, node.right] {
                if child != NIL {
                    assert_eq!(tree.nodes[child as usize].parent, n, "parent link broken");
                }
            }
            let ls = walk(tree, node.left, lo, Some(node.ts));
            let rs = walk(tree, node.right, Some(node.ts), hi);
            assert_eq!(node.size, 1 + ls + rs, "size augmentation stale");
            node.size
        }
        if self.root != NIL {
            assert_eq!(self.nodes[self.root as usize].parent, NIL);
        }
        let total = walk(self, self.root, None, None);
        assert_eq!(total as usize, self.len, "len out of sync");
    }
}

impl ReuseTree for SplayTree {
    fn insert(&mut self, timestamp: u64, addr: u64) {
        if self.root == NIL {
            self.root = self.alloc(timestamp, addr, NIL);
            self.len = 1;
            return;
        }
        let mut cur = self.root;
        loop {
            let node_ts = self.nodes[cur as usize].ts;
            match timestamp.cmp(&node_ts) {
                std::cmp::Ordering::Less => {
                    let left = self.nodes[cur as usize].left;
                    if left == NIL {
                        let new = self.alloc(timestamp, addr, cur);
                        self.nodes[cur as usize].left = new;
                        self.len += 1;
                        // Splaying the new node to the root refreshes the
                        // sizes of every (stale) ancestor on the way up.
                        self.splay(new);
                        return;
                    }
                    cur = left;
                }
                std::cmp::Ordering::Greater => {
                    let right = self.nodes[cur as usize].right;
                    if right == NIL {
                        let new = self.alloc(timestamp, addr, cur);
                        self.nodes[cur as usize].right = new;
                        self.len += 1;
                        self.splay(new);
                        return;
                    }
                    cur = right;
                }
                std::cmp::Ordering::Equal => {
                    panic!("duplicate timestamp {timestamp} inserted into SplayTree");
                }
            }
        }
    }

    fn distance(&mut self, timestamp: u64) -> u64 {
        // Walk of paper Algorithm 2: accumulate right-subtree sizes on every
        // left turn, then splay the last touched node to pay for the path.
        let mut cur = self.root;
        let mut last = NIL;
        let mut d: u64 = 0;
        while cur != NIL {
            last = cur;
            let node = &self.nodes[cur as usize];
            match timestamp.cmp(&node.ts) {
                std::cmp::Ordering::Greater => cur = node.right,
                std::cmp::Ordering::Less => {
                    d += 1 + self.size(node.right) as u64;
                    cur = node.left;
                }
                std::cmp::Ordering::Equal => {
                    d += self.size(node.right) as u64;
                    self.splay(cur);
                    return d;
                }
            }
        }
        if last != NIL {
            self.splay(last);
        }
        d
    }

    fn remove(&mut self, timestamp: u64) -> Option<u64> {
        let (found, last) = self.find(timestamp);
        if found == NIL {
            if last != NIL {
                self.splay(last);
            }
            return None;
        }
        self.splay(found);
        let (_, addr) = self.remove_root();
        Some(addr)
    }

    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        let (found, last) = self.find(timestamp);
        if found == NIL {
            if last != NIL {
                self.splay(last);
            }
            return None;
        }
        self.splay(found);
        let d = self.size(self.nodes[found as usize].right) as u64;
        let (_, addr) = self.remove_root();
        Some((d, addr))
    }

    fn oldest(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.nodes[cur as usize].left != NIL {
            cur = self.nodes[cur as usize].left;
        }
        let node = &self.nodes[cur as usize];
        Some((node.ts, node.addr))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>) {
        // Iterative in-order traversal; recursion depth on a splay tree can
        // reach O(n) in adversarial shapes.
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack non-empty");
            let node = &self.nodes[n as usize];
            out.push((node.ts, node.addr));
            cur = node.right;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{self, op_strategy};
    use proptest::prelude::*;

    #[test]
    fn smoke() {
        conformance::smoke(&mut SplayTree::new());
    }

    #[test]
    fn validates_after_mixed_workload() {
        let mut tree = SplayTree::new();
        for ts in 0..500u64 {
            tree.insert(ts, ts ^ 0xff);
            if ts % 3 == 0 && ts > 10 {
                tree.remove(ts - 7);
            }
            if ts % 97 == 0 {
                tree.validate();
            }
        }
        tree.validate();
    }

    #[test]
    fn figure1_distance_for_a_at_time_9() {
        // Paper Figure 1 / Table I: trace `d a c b c c g e f a`; at time 9
        // the tree holds {0:d, 1:a, 3:b, 5:c, 6:g, 7:e, 8:f} and the reuse
        // distance of the second `a` (previous access at ts 1) is 5.
        let mut tree = SplayTree::new();
        for (ts, addr) in [
            (0, b'd'),
            (1, b'a'),
            (3, b'b'),
            (5, b'c'),
            (6, b'g'),
            (7, b'e'),
            (8, b'f'),
        ] {
            tree.insert(ts, addr as u64);
        }
        assert_eq!(tree.distance(1), 5);

        // Processing the reference deletes ts 1 and re-inserts at ts 9,
        // yielding Figure 1(b)'s node set.
        assert_eq!(tree.remove(1), Some(b'a' as u64));
        tree.insert(9, b'a' as u64);
        tree.validate();
        let contents = tree.to_sorted_vec();
        assert_eq!(
            contents,
            vec![
                (0, b'd' as u64),
                (3, b'b' as u64),
                (5, b'c' as u64),
                (6, b'g' as u64),
                (7, b'e' as u64),
                (8, b'f' as u64),
                (9, b'a' as u64),
            ]
        );
    }

    #[test]
    fn splay_moves_accessed_node_to_root() {
        let mut tree = SplayTree::new();
        for ts in 0..64u64 {
            tree.insert(ts, ts);
        }
        tree.distance(13);
        assert_eq!(tree.nodes[tree.root as usize].ts, 13);
        tree.validate();
    }

    #[test]
    fn sequential_inserts_make_distance_zero_for_latest() {
        let mut tree = SplayTree::new();
        for ts in 0..1000u64 {
            tree.insert(ts, ts);
            assert_eq!(tree.distance(ts), 0);
        }
    }

    #[test]
    fn remove_missing_returns_none_and_keeps_state() {
        let mut tree = SplayTree::new();
        tree.insert(10, 1);
        tree.insert(20, 2);
        assert_eq!(tree.remove(15), None);
        assert_eq!(tree.len(), 2);
        tree.validate();
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut tree = SplayTree::new();
        for ts in 0..100u64 {
            tree.insert(ts, ts);
        }
        for ts in 0..50u64 {
            tree.remove(ts);
        }
        let arena = tree.nodes.len();
        for ts in 100..150u64 {
            tree.insert(ts, ts);
        }
        assert_eq!(tree.nodes.len(), arena, "freed slots must be reused");
        tree.validate();
    }

    proptest! {
        #[test]
        fn conforms_to_model(ops in proptest::collection::vec(op_strategy(), 0..300)) {
            let mut tree = SplayTree::new();
            conformance::run_ops(&mut tree, ops);
            tree.validate();
        }
    }
}

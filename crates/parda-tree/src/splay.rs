//! Size-augmented **top-down** splay tree — the structure used by the
//! reference PARDA implementation.
//!
//! Sugumar & Abraham observed that self-adjusting trees perform well for
//! stack-distance processing because trace locality maps directly onto tree
//! locality: recently referenced timestamps sit near the root. Every node
//! maintains the size of its subtree, so the rank query of paper Algorithm 2
//! (count of timestamps greater than `t`) is answered along a single root-to-
//! node path.
//!
//! This is Sleator's sized top-down splay (the exact variant the original
//! PARDA C code ships): the search descent itself performs the
//! restructuring, linking left/right subtrees onto two accumulator spines
//! and fixing their sizes in one pass — no parent pointers, no second
//! bottom-up walk. `distance_and_remove` is therefore a genuinely fused
//! operation: rank lookup and deletion share one descent.
//!
//! Nodes live in an index-based arena (`Vec<Node>` + free list): no
//! per-node allocation, 32-bit links halve pointer traffic, and `clear`
//! reuses the buffer across analysis phases.

use crate::{ReuseTree, NIL};

#[derive(Clone, Debug)]
struct Node {
    ts: u64,
    addr: u64,
    left: u32,
    right: u32,
    /// Number of nodes in the subtree rooted here (including this node).
    size: u32,
}

/// Self-adjusting binary search tree keyed by timestamp with subtree sizes.
///
/// # Examples
///
/// ```
/// use parda_tree::{ReuseTree, SplayTree};
///
/// let mut tree = SplayTree::new();
/// for (ts, addr) in [(0, 100), (1, 200), (2, 300)] {
///     tree.insert(ts, addr);
/// }
/// // Two elements were accessed after time 0:
/// assert_eq!(tree.distance(0), 2);
/// assert_eq!(tree.oldest(), Some((0, 100)));
/// ```
#[derive(Clone, Debug)]
pub struct SplayTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl Default for SplayTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SplayTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Create an empty tree with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    fn alloc(&mut self, ts: u64, addr: u64) -> u32 {
        let node = Node {
            ts,
            addr,
            left: NIL,
            right: NIL,
            size: 1,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Sized top-down splay of `ts` within the subtree rooted at `t`,
    /// returning the new subtree root (Sleator's `top-down-size-splay`).
    ///
    /// The descent hangs everything smaller than the search path onto the
    /// right spine of an accumulated *left* tree and everything larger onto
    /// the left spine of a *right* tree, counting linked nodes as it goes.
    /// Two short spine walks then repair the sizes, and the pivot — the node
    /// holding `ts`, or its in-order neighbour when `ts` is absent — becomes
    /// the root with correct sizes everywhere.
    fn splay_from(&mut self, mut t: u32, ts: u64) -> u32 {
        if t == NIL {
            return NIL;
        }
        // Tails (deepest linked node) and roots of the accumulated trees.
        let mut l = NIL;
        let mut r = NIL;
        let mut l_root = NIL;
        let mut r_root = NIL;
        let mut l_size: u32 = 0;
        let mut r_size: u32 = 0;
        loop {
            let t_ts = self.nodes[t as usize].ts;
            if ts < t_ts {
                let mut child = self.nodes[t as usize].left;
                if child == NIL {
                    break;
                }
                if ts < self.nodes[child as usize].ts {
                    // Zig-zig: rotate right at t before linking.
                    let inner = self.nodes[child as usize].right;
                    self.nodes[t as usize].left = inner;
                    self.nodes[child as usize].right = t;
                    let t_right = self.nodes[t as usize].right;
                    self.nodes[t as usize].size = 1 + self.size(inner) + self.size(t_right);
                    t = child;
                    child = self.nodes[t as usize].left;
                    if child == NIL {
                        break;
                    }
                }
                // Link right: t and its right subtree join the right tree.
                if r == NIL {
                    r_root = t;
                } else {
                    self.nodes[r as usize].left = t;
                }
                r = t;
                let t_right = self.nodes[t as usize].right;
                r_size += 1 + self.size(t_right);
                t = child;
            } else if ts > t_ts {
                let mut child = self.nodes[t as usize].right;
                if child == NIL {
                    break;
                }
                if ts > self.nodes[child as usize].ts {
                    // Zig-zig: rotate left at t before linking.
                    let inner = self.nodes[child as usize].left;
                    self.nodes[t as usize].right = inner;
                    self.nodes[child as usize].left = t;
                    let t_left = self.nodes[t as usize].left;
                    self.nodes[t as usize].size = 1 + self.size(t_left) + self.size(inner);
                    t = child;
                    child = self.nodes[t as usize].right;
                    if child == NIL {
                        break;
                    }
                }
                // Link left: t and its left subtree join the left tree.
                if l == NIL {
                    l_root = t;
                } else {
                    self.nodes[l as usize].right = t;
                }
                l = t;
                let t_left = self.nodes[t as usize].left;
                l_size += 1 + self.size(t_left);
                t = child;
            } else {
                break;
            }
        }
        // `t` is the pivot. Its remaining children complete the two trees.
        let t_left = self.nodes[t as usize].left;
        let t_right = self.nodes[t as usize].right;
        l_size += self.size(t_left);
        r_size += self.size(t_right);
        self.nodes[t as usize].size = 1 + l_size + r_size;
        // Truncate the spines so the fix-up walks terminate.
        if l != NIL {
            self.nodes[l as usize].right = NIL;
        }
        if r != NIL {
            self.nodes[r as usize].left = NIL;
        }
        // Repair sizes down the right spine of the left tree…
        let mut y = l_root;
        let mut remaining = l_size;
        while y != NIL {
            self.nodes[y as usize].size = remaining;
            let y_left = self.nodes[y as usize].left;
            remaining -= 1 + self.size(y_left);
            y = self.nodes[y as usize].right;
        }
        // …and the left spine of the right tree.
        let mut y = r_root;
        let mut remaining = r_size;
        while y != NIL {
            self.nodes[y as usize].size = remaining;
            let y_right = self.nodes[y as usize].right;
            remaining -= 1 + self.size(y_right);
            y = self.nodes[y as usize].left;
        }
        // Assemble: pivot's children are hung off the spine tails, the
        // accumulated trees become the pivot's children.
        if l != NIL {
            self.nodes[l as usize].right = t_left;
            self.nodes[t as usize].left = l_root;
        }
        if r != NIL {
            self.nodes[r as usize].left = t_right;
            self.nodes[t as usize].right = r_root;
        }
        t
    }

    /// Splay `ts` to the root of the whole tree.
    #[inline]
    fn splay(&mut self, ts: u64) {
        let root = self.root;
        self.root = self.splay_from(root, ts);
    }

    /// Remove the current root, joining its subtrees (splay-tree delete:
    /// splay the left subtree's maximum up, then adopt the right subtree).
    fn delete_root(&mut self) -> (u64, u64) {
        let old = self.root;
        debug_assert_ne!(old, NIL);
        let Node {
            ts,
            addr,
            left,
            right,
            ..
        } = self.nodes[old as usize];
        if left == NIL {
            self.root = right;
        } else {
            // `ts` exceeds every key in `left`, so this splays the maximum
            // of the left subtree to its root (right child becomes NIL).
            let join = self.splay_from(left, ts);
            debug_assert_eq!(self.nodes[join as usize].right, NIL);
            self.nodes[join as usize].right = right;
            let join_left = self.nodes[join as usize].left;
            self.nodes[join as usize].size = 1 + self.size(join_left) + self.size(right);
            self.root = join;
        }
        self.free.push(old);
        self.len -= 1;
        (ts, addr)
    }

    /// Build a perfectly balanced subtree over a sorted run, returning its
    /// root. Any BST shape answers rank queries identically — distances
    /// depend only on the key set — so the rebuild picks the shape that
    /// minimizes subsequent descent depth. Recursion depth is O(log n).
    fn build_balanced(&mut self, pairs: &[(u64, u64)]) -> u32 {
        if pairs.is_empty() {
            return NIL;
        }
        let mid = pairs.len() / 2;
        let idx = self.alloc(pairs[mid].0, pairs[mid].1);
        let left = self.build_balanced(&pairs[..mid]);
        let right = self.build_balanced(&pairs[mid + 1..]);
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.size = pairs.len() as u32;
        idx
    }

    /// Structural self-check for tests: BST order and size augmentation.
    #[doc(hidden)]
    pub fn validate(&self) {
        fn walk(tree: &SplayTree, n: u32, lo: Option<u64>, hi: Option<u64>) -> u32 {
            if n == NIL {
                return 0;
            }
            let node = &tree.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.ts > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.ts < hi, "BST order violated");
            }
            let ls = walk(tree, node.left, lo, Some(node.ts));
            let rs = walk(tree, node.right, Some(node.ts), hi);
            assert_eq!(node.size, 1 + ls + rs, "size augmentation stale");
            node.size
        }
        let total = walk(self, self.root, None, None);
        assert_eq!(total as usize, self.len, "len out of sync");
    }
}

impl ReuseTree for SplayTree {
    fn insert(&mut self, timestamp: u64, addr: u64) {
        if self.root == NIL {
            self.root = self.alloc(timestamp, addr);
            self.len = 1;
            return;
        }
        // Splay the insertion point to the root, then split around it.
        self.splay(timestamp);
        let t = self.root;
        let t_ts = self.nodes[t as usize].ts;
        if t_ts == timestamp {
            panic!("duplicate timestamp {timestamp} inserted into SplayTree");
        }
        let new = self.alloc(timestamp, addr);
        if timestamp < t_ts {
            let t_left = self.nodes[t as usize].left;
            self.nodes[new as usize].left = t_left;
            self.nodes[new as usize].right = t;
            self.nodes[t as usize].left = NIL;
            let t_right = self.nodes[t as usize].right;
            self.nodes[t as usize].size = 1 + self.size(t_right);
        } else {
            let t_right = self.nodes[t as usize].right;
            self.nodes[new as usize].right = t_right;
            self.nodes[new as usize].left = t;
            self.nodes[t as usize].right = NIL;
            let t_left = self.nodes[t as usize].left;
            self.nodes[t as usize].size = 1 + self.size(t_left);
        }
        self.len += 1;
        self.nodes[new as usize].size = self.len as u32;
        self.root = new;
    }

    fn distance(&mut self, timestamp: u64) -> u64 {
        // Paper Algorithm 2 on the splayed tree: after the descent the root
        // is `timestamp` or its in-order neighbour, so the rank is the right
        // subtree plus the root itself when the root is newer.
        if self.root == NIL {
            return 0;
        }
        self.splay(timestamp);
        let node = &self.nodes[self.root as usize];
        let (root_ts, right) = (node.ts, node.right);
        let mut d = self.size(right) as u64;
        if root_ts > timestamp {
            d += 1;
        }
        d
    }

    fn remove(&mut self, timestamp: u64) -> Option<u64> {
        if self.root == NIL {
            return None;
        }
        self.splay(timestamp);
        if self.nodes[self.root as usize].ts != timestamp {
            return None;
        }
        let (_, addr) = self.delete_root();
        Some(addr)
    }

    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        // Fused hot-path op: the single splay descent both answers the rank
        // query (size of the right subtree once the node is at the root) and
        // positions the node for deletion.
        if self.root == NIL {
            return None;
        }
        self.splay(timestamp);
        if self.nodes[self.root as usize].ts != timestamp {
            return None;
        }
        let right = self.nodes[self.root as usize].right;
        let d = self.size(right) as u64;
        let (_, addr) = self.delete_root();
        Some((d, addr))
    }

    fn oldest(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.nodes[cur as usize].left != NIL {
            cur = self.nodes[cur as usize].left;
        }
        let node = &self.nodes[cur as usize];
        Some((node.ts, node.addr))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    fn rebuild_from_sorted(&mut self, pairs: &[(u64, u64)]) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.reserve(pairs.len());
        self.root = self.build_balanced(pairs);
        self.len = pairs.len();
    }

    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>) {
        // Iterative in-order traversal; recursion depth on a splay tree can
        // reach O(n) in adversarial shapes.
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack non-empty");
            let node = &self.nodes[n as usize];
            out.push((node.ts, node.addr));
            cur = node.right;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{self, op_strategy};
    use proptest::prelude::*;

    #[test]
    fn smoke() {
        conformance::smoke(&mut SplayTree::new());
    }

    #[test]
    fn validates_after_mixed_workload() {
        let mut tree = SplayTree::new();
        for ts in 0..500u64 {
            tree.insert(ts, ts ^ 0xff);
            if ts % 3 == 0 && ts > 10 {
                tree.remove(ts - 7);
            }
            if ts % 97 == 0 {
                tree.validate();
            }
        }
        tree.validate();
    }

    #[test]
    fn figure1_distance_for_a_at_time_9() {
        // Paper Figure 1 / Table I: trace `d a c b c c g e f a`; at time 9
        // the tree holds {0:d, 1:a, 3:b, 5:c, 6:g, 7:e, 8:f} and the reuse
        // distance of the second `a` (previous access at ts 1) is 5.
        let mut tree = SplayTree::new();
        for (ts, addr) in [
            (0, b'd'),
            (1, b'a'),
            (3, b'b'),
            (5, b'c'),
            (6, b'g'),
            (7, b'e'),
            (8, b'f'),
        ] {
            tree.insert(ts, addr as u64);
        }
        assert_eq!(tree.distance(1), 5);

        // Processing the reference deletes ts 1 and re-inserts at ts 9,
        // yielding Figure 1(b)'s node set.
        assert_eq!(tree.remove(1), Some(b'a' as u64));
        tree.insert(9, b'a' as u64);
        tree.validate();
        let contents = tree.to_sorted_vec();
        assert_eq!(
            contents,
            vec![
                (0, b'd' as u64),
                (3, b'b' as u64),
                (5, b'c' as u64),
                (6, b'g' as u64),
                (7, b'e' as u64),
                (8, b'f' as u64),
                (9, b'a' as u64),
            ]
        );
    }

    #[test]
    fn splay_moves_accessed_node_to_root() {
        let mut tree = SplayTree::new();
        for ts in 0..64u64 {
            tree.insert(ts, ts);
        }
        tree.distance(13);
        assert_eq!(tree.nodes[tree.root as usize].ts, 13);
        tree.validate();
    }

    #[test]
    fn top_down_splay_of_absent_key_lands_on_neighbour() {
        let mut tree = SplayTree::new();
        for ts in (0..64u64).map(|t| t * 2) {
            tree.insert(ts, ts);
        }
        // Searching an absent key restructures toward its neighbourhood and
        // the rank query still counts strictly-greater keys.
        assert_eq!(tree.distance(13), 57);
        let root_ts = tree.nodes[tree.root as usize].ts;
        assert!(root_ts == 12 || root_ts == 14, "root ts {root_ts}");
        tree.validate();
    }

    #[test]
    fn fused_distance_and_remove_matches_two_step() {
        let mut fused = SplayTree::new();
        let mut twostep = SplayTree::new();
        for ts in 0..256u64 {
            fused.insert(ts, ts + 1000);
            twostep.insert(ts, ts + 1000);
        }
        for ts in (0..256u64).step_by(3) {
            let d = twostep.distance(ts);
            let addr = twostep.remove(ts);
            assert_eq!(fused.distance_and_remove(ts), addr.map(|a| (d, a)));
            fused.validate();
        }
        assert_eq!(fused.to_sorted_vec(), twostep.to_sorted_vec());
    }

    #[test]
    fn sequential_inserts_make_distance_zero_for_latest() {
        let mut tree = SplayTree::new();
        for ts in 0..1000u64 {
            tree.insert(ts, ts);
            assert_eq!(tree.distance(ts), 0);
        }
    }

    #[test]
    fn remove_missing_returns_none_and_keeps_state() {
        let mut tree = SplayTree::new();
        tree.insert(10, 1);
        tree.insert(20, 2);
        assert_eq!(tree.remove(15), None);
        assert_eq!(tree.len(), 2);
        tree.validate();
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut tree = SplayTree::new();
        for ts in 0..100u64 {
            tree.insert(ts, ts);
        }
        for ts in 0..50u64 {
            tree.remove(ts);
        }
        let arena = tree.nodes.len();
        for ts in 100..150u64 {
            tree.insert(ts, ts);
        }
        assert_eq!(tree.nodes.len(), arena, "freed slots must be reused");
        tree.validate();
    }

    #[test]
    fn batch_smoke() {
        conformance::batch_smoke(&mut SplayTree::new());
    }

    #[test]
    fn dense_batch_rebuilds_balanced() {
        let mut tree = SplayTree::new();
        // Left-spine adversarial shape: descending inserts.
        for ts in (0..4096u64).rev() {
            tree.insert(ts, ts);
        }
        let delete: Vec<u64> = (0..4096u64).step_by(2).collect();
        let mut out = Vec::new();
        tree.rank_delete_batch(&delete, &mut out);
        assert_eq!(tree.len(), 2048);
        tree.validate();
        fn depth(t: &SplayTree, n: u32) -> u32 {
            if n == NIL {
                return 0;
            }
            1 + depth(t, t.nodes[n as usize].left).max(depth(t, t.nodes[n as usize].right))
        }
        assert!(depth(&tree, tree.root) <= 12, "rebuild must be balanced");
    }

    proptest! {
        #[test]
        fn conforms_to_model(ops in proptest::collection::vec(op_strategy(), 0..300)) {
            let mut tree = SplayTree::new();
            conformance::run_ops(&mut tree, ops);
            tree.validate();
        }

        #[test]
        fn batch_conforms_to_model(
            live in proptest::collection::vec((0u64..256, 0u64..1_000_000), 0..200),
            mask in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            let mut tree = SplayTree::new();
            conformance::run_batch(&mut tree, live, mask);
            tree.validate();
        }
    }
}

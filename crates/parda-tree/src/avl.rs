//! Size-augmented AVL tree — Olken's original balanced-tree formulation of
//! the stack-distance structure (LBL-12370, 1981).
//!
//! Strictly height-balanced, so `distance`, `insert` and `remove` are
//! worst-case O(log M) (the splay tree only achieves this amortized).
//! Kept alongside [`crate::SplayTree`] both as an ablation point (paper
//! Section VII surveys AVL- vs splay-based analyzers) and as an
//! independently-implemented cross-check in the test suite.

use crate::{ReuseTree, NIL};

#[derive(Clone, Debug)]
struct Node {
    ts: u64,
    addr: u64,
    left: u32,
    right: u32,
    height: u8,
    size: u32,
}

/// Height-balanced binary search tree keyed by timestamp with subtree sizes.
///
/// # Examples
///
/// ```
/// use parda_tree::{AvlTree, ReuseTree};
///
/// let mut tree = AvlTree::new();
/// for ts in 0..10 {
///     tree.insert(ts, ts + 100);
/// }
/// assert_eq!(tree.distance(4), 5);
/// assert_eq!(tree.remove(4), Some(104));
/// assert_eq!(tree.distance(3), 5);
/// ```
#[derive(Clone, Debug)]
pub struct AvlTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

impl Default for AvlTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AvlTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Create an empty tree with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
        }
    }

    #[inline]
    fn height(&self, n: u32) -> u8 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].height
        }
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn update(&mut self, n: u32) {
        let (l, r) = {
            let node = &self.nodes[n as usize];
            (node.left, node.right)
        };
        let height = 1 + self.height(l).max(self.height(r));
        let size = 1 + self.size(l) + self.size(r);
        let node = &mut self.nodes[n as usize];
        node.height = height;
        node.size = size;
    }

    #[inline]
    fn balance_factor(&self, n: u32) -> i32 {
        let node = &self.nodes[n as usize];
        self.height(node.left) as i32 - self.height(node.right) as i32
    }

    fn rotate_right(&mut self, n: u32) -> u32 {
        let l = self.nodes[n as usize].left;
        let lr = self.nodes[l as usize].right;
        self.nodes[n as usize].left = lr;
        self.nodes[l as usize].right = n;
        self.update(n);
        self.update(l);
        l
    }

    fn rotate_left(&mut self, n: u32) -> u32 {
        let r = self.nodes[n as usize].right;
        let rl = self.nodes[r as usize].left;
        self.nodes[n as usize].right = rl;
        self.nodes[r as usize].left = n;
        self.update(n);
        self.update(r);
        r
    }

    /// Restore the AVL invariant at `n`, returning the new subtree root.
    fn rebalance(&mut self, n: u32) -> u32 {
        self.update(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes[n as usize].left) < 0 {
                let l = self.nodes[n as usize].left;
                self.nodes[n as usize].left = self.rotate_left(l);
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[n as usize].right) > 0 {
                let r = self.nodes[n as usize].right;
                self.nodes[n as usize].right = self.rotate_right(r);
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn alloc(&mut self, ts: u64, addr: u64) -> u32 {
        let node = Node {
            ts,
            addr,
            left: NIL,
            right: NIL,
            height: 1,
            size: 1,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn insert_at(&mut self, n: u32, ts: u64, addr: u64) -> u32 {
        if n == NIL {
            return self.alloc(ts, addr);
        }
        match ts.cmp(&self.nodes[n as usize].ts) {
            std::cmp::Ordering::Less => {
                let child = self.insert_at(self.nodes[n as usize].left, ts, addr);
                self.nodes[n as usize].left = child;
            }
            std::cmp::Ordering::Greater => {
                let child = self.insert_at(self.nodes[n as usize].right, ts, addr);
                self.nodes[n as usize].right = child;
            }
            std::cmp::Ordering::Equal => {
                panic!("duplicate timestamp {ts} inserted into AvlTree");
            }
        }
        self.rebalance(n)
    }

    /// Detach the minimum node of the subtree at `n`; returns
    /// `(new_subtree_root, detached_index)`.
    fn take_min(&mut self, n: u32) -> (u32, u32) {
        if self.nodes[n as usize].left == NIL {
            return (self.nodes[n as usize].right, n);
        }
        let (new_left, min) = self.take_min(self.nodes[n as usize].left);
        self.nodes[n as usize].left = new_left;
        (self.rebalance(n), min)
    }

    /// Remove `ts` from the subtree at `n` while accumulating its rank
    /// (count of strictly-greater keys, paper Algorithm 2) into `rank` along
    /// the same descent — the fused `distance_and_remove` body. `remove`
    /// passes a scratch accumulator and discards it.
    fn remove_rank_at(
        &mut self,
        n: u32,
        ts: u64,
        rank: &mut u64,
        removed: &mut Option<u64>,
    ) -> u32 {
        if n == NIL {
            return NIL;
        }
        match ts.cmp(&self.nodes[n as usize].ts) {
            std::cmp::Ordering::Less => {
                let right = self.nodes[n as usize].right;
                *rank += 1 + self.size(right) as u64;
                let child = self.remove_rank_at(self.nodes[n as usize].left, ts, rank, removed);
                self.nodes[n as usize].left = child;
            }
            std::cmp::Ordering::Greater => {
                let child = self.remove_rank_at(self.nodes[n as usize].right, ts, rank, removed);
                self.nodes[n as usize].right = child;
            }
            std::cmp::Ordering::Equal => {
                let right = self.nodes[n as usize].right;
                *rank += self.size(right) as u64;
                *removed = Some(self.nodes[n as usize].addr);
                let (left, right) = {
                    let node = &self.nodes[n as usize];
                    (node.left, node.right)
                };
                self.free.push(n);
                if left == NIL {
                    return right;
                }
                if right == NIL {
                    return left;
                }
                // Replace with the in-order successor.
                let (new_right, successor) = self.take_min(right);
                self.nodes[successor as usize].left = left;
                self.nodes[successor as usize].right = new_right;
                return self.rebalance(successor);
            }
        }
        self.rebalance(n)
    }

    /// Build a perfectly balanced subtree over a sorted run, returning its
    /// root and height. Mid-split yields sibling sizes differing by at most
    /// one, so sibling heights differ by at most one — the AVL invariant
    /// holds by construction. Recursion depth is O(log n).
    fn build_balanced(&mut self, pairs: &[(u64, u64)]) -> (u32, u8) {
        if pairs.is_empty() {
            return (NIL, 0);
        }
        let mid = pairs.len() / 2;
        let idx = self.alloc(pairs[mid].0, pairs[mid].1);
        let (left, lh) = self.build_balanced(&pairs[..mid]);
        let (right, rh) = self.build_balanced(&pairs[mid + 1..]);
        let height = 1 + lh.max(rh);
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.height = height;
        node.size = pairs.len() as u32;
        (idx, height)
    }

    /// Structural self-check for tests: BST order, sizes, heights, balance.
    #[doc(hidden)]
    pub fn validate(&self) {
        fn walk(tree: &AvlTree, n: u32, lo: Option<u64>, hi: Option<u64>) -> (u32, u8) {
            if n == NIL {
                return (0, 0);
            }
            let node = &tree.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.ts > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.ts < hi, "BST order violated");
            }
            let (ls, lh) = walk(tree, node.left, lo, Some(node.ts));
            let (rs, rh) = walk(tree, node.right, Some(node.ts), hi);
            assert_eq!(node.size, 1 + ls + rs, "size augmentation stale");
            assert_eq!(node.height, 1 + lh.max(rh), "height stale");
            assert!(
                (lh as i32 - rh as i32).abs() <= 1,
                "AVL balance violated at ts {}",
                node.ts
            );
            (node.size, node.height)
        }
        walk(self, self.root, None, None);
    }
}

impl ReuseTree for AvlTree {
    fn insert(&mut self, timestamp: u64, addr: u64) {
        self.root = self.insert_at(self.root, timestamp, addr);
    }

    fn distance(&mut self, timestamp: u64) -> u64 {
        // Paper Algorithm 2: every left turn contributes the right subtree
        // plus the node itself.
        let mut cur = self.root;
        let mut d: u64 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            match timestamp.cmp(&node.ts) {
                std::cmp::Ordering::Greater => cur = node.right,
                std::cmp::Ordering::Less => {
                    d += 1 + self.size(node.right) as u64;
                    cur = node.left;
                }
                std::cmp::Ordering::Equal => {
                    return d + self.size(node.right) as u64;
                }
            }
        }
        d
    }

    fn remove(&mut self, timestamp: u64) -> Option<u64> {
        let mut removed = None;
        let mut rank = 0;
        self.root = self.remove_rank_at(self.root, timestamp, &mut rank, &mut removed);
        removed
    }

    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        // Fused: the rank accumulates along the removal descent itself, so
        // the hot path pays one root-to-node walk instead of two.
        let mut removed = None;
        let mut rank = 0;
        self.root = self.remove_rank_at(self.root, timestamp, &mut rank, &mut removed);
        removed.map(|addr| (rank, addr))
    }

    fn oldest(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.nodes[cur as usize].left != NIL {
            cur = self.nodes[cur as usize].left;
        }
        let node = &self.nodes[cur as usize];
        Some((node.ts, node.addr))
    }

    fn len(&self) -> usize {
        self.size(self.root) as usize
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }

    fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>) {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack non-empty");
            let node = &self.nodes[n as usize];
            out.push((node.ts, node.addr));
            cur = node.right;
        }
    }

    fn rebuild_from_sorted(&mut self, pairs: &[(u64, u64)]) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.reserve(pairs.len());
        let (root, _) = self.build_balanced(pairs);
        self.root = root;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{self, op_strategy};
    use proptest::prelude::*;

    #[test]
    fn smoke() {
        conformance::smoke(&mut AvlTree::new());
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let mut tree = AvlTree::new();
        for ts in 0..4096u64 {
            tree.insert(ts, ts);
        }
        // A perfectly balanced tree of 4096 nodes has height 13; AVL
        // guarantees ≤ 1.44 log2(n) ≈ 17.
        assert!(
            tree.height(tree.root) <= 17,
            "height {}",
            tree.height(tree.root)
        );
        tree.validate();
    }

    #[test]
    fn validates_under_interleaved_deletes() {
        let mut tree = AvlTree::new();
        for ts in 0..2000u64 {
            tree.insert(ts, ts * 2);
            if ts % 2 == 1 {
                assert_eq!(tree.remove(ts / 2), Some(ts / 2 * 2));
            }
        }
        tree.validate();
        assert_eq!(tree.len(), 1000);
    }

    #[test]
    fn distance_counts_strictly_greater() {
        let mut tree = AvlTree::new();
        for ts in [10u64, 20, 30, 40, 50] {
            tree.insert(ts, ts);
        }
        assert_eq!(tree.distance(30), 2);
        assert_eq!(tree.distance(25), 3, "absent key counts all greater keys");
        assert_eq!(tree.distance(50), 0);
        assert_eq!(tree.distance(5), 5);
        assert_eq!(tree.distance(55), 0);
    }

    #[test]
    fn remove_interior_node_with_two_children() {
        let mut tree = AvlTree::new();
        for ts in [50u64, 30, 70, 20, 40, 60, 80] {
            tree.insert(ts, ts + 1);
        }
        assert_eq!(tree.remove(50), Some(51));
        tree.validate();
        assert_eq!(
            tree.to_sorted_vec()
                .iter()
                .map(|&(t, _)| t)
                .collect::<Vec<_>>(),
            vec![20, 30, 40, 60, 70, 80]
        );
    }

    #[test]
    fn batch_smoke() {
        conformance::batch_smoke(&mut AvlTree::new());
    }

    proptest! {
        #[test]
        fn conforms_to_model(ops in proptest::collection::vec(op_strategy(), 0..300)) {
            let mut tree = AvlTree::new();
            conformance::run_ops(&mut tree, ops);
            tree.validate();
        }

        #[test]
        fn batch_conforms_to_model(
            live in proptest::collection::vec((0u64..256, 0u64..1_000_000), 0..200),
            mask in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            let mut tree = AvlTree::new();
            conformance::run_batch(&mut tree, live, mask);
            tree.validate();
        }
    }
}

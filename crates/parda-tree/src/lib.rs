//! Ordered search structures for reuse-distance analysis.
//!
//! The tree-based sequential algorithm (paper Section III-B, Olken 1981)
//! keeps one node per *currently live* data element, keyed by the timestamp
//! of its most recent access, with subtree sizes maintained at every node.
//! The reuse distance of a reference whose previous access happened at time
//! `t` is then the number of nodes with timestamp `> t` — an order-statistics
//! rank query (paper Algorithm 2).
//!
//! This crate provides the abstract interface ([`ReuseTree`]) plus four
//! interchangeable implementations:
//!
//! * [`SplayTree`] — the structure used by the original PARDA C code
//!   (following Sugumar & Abraham's observation that splay trees have
//!   excellent locality for stack-distance workloads);
//! * [`AvlTree`] — Olken's original balanced-tree formulation;
//! * [`Treap`] — a randomized alternative with priorities derived
//!   deterministically from the key hash;
//! * [`NaiveStack`] — the O(M)-per-access move-to-front list of the naïve
//!   algorithm (paper Section III-A), kept as the correctness baseline.
//!
//! All tree nodes store `(timestamp, addr)`; the address payload is needed by
//! the bounded algorithm's LRU eviction (paper Algorithm 7, `find_oldest`)
//! and by the multi-phase state reduction (Algorithm 6).

pub mod avl;
pub mod fenwick;
pub mod naive;
pub mod splay;
pub mod treap;
pub mod vector;

pub use avl::AvlTree;
pub use fenwick::Fenwick;
pub use naive::NaiveStack;
pub use splay::SplayTree;
pub use treap::Treap;
pub use vector::VectorTree;

/// Sentinel index for "no node" in the arena-based trees.
pub(crate) const NIL: u32 = u32::MAX;

/// The ordered-set interface required by the reuse-distance engines.
///
/// Keys are access timestamps (strictly increasing during forward analysis;
/// arbitrary during the multi-phase merge). Each key carries the address
/// that was accessed at that time.
pub trait ReuseTree {
    /// Insert a `(timestamp, addr)` pair. Timestamps must be unique;
    /// inserting a duplicate timestamp is a logic error and may panic.
    fn insert(&mut self, timestamp: u64, addr: u64);

    /// Number of live nodes with timestamp strictly greater than `timestamp`
    /// (paper Algorithm 2). The queried timestamp itself does not count.
    ///
    /// Takes `&mut self` because self-adjusting implementations (splay)
    /// restructure on access.
    fn distance(&mut self, timestamp: u64) -> u64;

    /// Remove the node with exactly `timestamp`, returning its address.
    fn remove(&mut self, timestamp: u64) -> Option<u64>;

    /// Fused hot-path operation: `distance(timestamp)` followed by
    /// `remove(timestamp)`. Returns `(distance, addr)`.
    ///
    /// This is what Algorithm 1's body performs per hit; implementations can
    /// do it in a single descent.
    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        let d = self.distance(timestamp);
        self.remove(timestamp).map(|addr| (d, addr))
    }

    /// The node with the smallest timestamp, as `(timestamp, addr)` — the
    /// LRU victim for bounded analysis (`find_oldest` in Algorithm 7).
    fn oldest(&self) -> Option<(u64, u64)>;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// `true` if the structure holds no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every node, retaining allocations.
    fn clear(&mut self);

    /// Pre-allocate room for at least `additional` further nodes. Purely an
    /// allocation hint (the engine passes its chunk length so arenas are
    /// sized once instead of reallocating mid-chunk); default is a no-op.
    fn reserve(&mut self, _additional: usize) {}

    /// Append all `(timestamp, addr)` pairs in increasing timestamp order.
    /// Used by the multi-phase reduction, which ships per-rank tree state.
    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>);

    /// Bulk rank+delete sweep — the batched cascade's tree half.
    ///
    /// `sorted_ts` holds strictly increasing timestamps, every one of which
    /// must be live in the tree (a missing timestamp is a logic error and
    /// panics). For each `sorted_ts[j]`, pushes onto `out` the number of
    /// live nodes with timestamp strictly greater than `sorted_ts[j]` **as
    /// measured against the tree state at entry** (the *initial rank*), then
    /// removes all `sorted_ts` nodes. Exactly equivalent to — and the
    /// default is literally — a loop of [`Self::distance_and_remove`] in
    /// ascending timestamp order: removing a smaller timestamp never changes
    /// a strictly-greater count, so each fused result *is* the initial rank.
    ///
    /// Implementations switch to an O(live + k) path when `k` is a large
    /// fraction of the tree: one in-order walk pairs each deleted node with
    /// its rank (`live − 1 − position`), survivors are kept in order, and
    /// the tree is rebuilt via [`Self::rebuild_from_sorted`]. Ranks depend
    /// only on the key *set*, never on tree shape, so rebuilds are
    /// observationally transparent.
    fn rank_delete_batch(&mut self, sorted_ts: &[u64], out: &mut Vec<u64>) {
        let k = sorted_ts.len();
        if k == 0 {
            return;
        }
        // Sparse sweep: fused per-key descents, ascending.
        if k * 8 < self.len() {
            for &ts in sorted_ts {
                let (d, _) = self
                    .distance_and_remove(ts)
                    .expect("rank_delete_batch: timestamp not live in tree");
                out.push(d);
            }
            return;
        }
        // Dense sweep: one in-order pass plus a rebuild of the survivors.
        let live = self.len() as u64;
        let mut pairs = Vec::with_capacity(self.len());
        self.collect_in_order(&mut pairs);
        let mut cursor = 0usize;
        let mut survivors = Vec::with_capacity(self.len() - k);
        for (i, &(ts, addr)) in pairs.iter().enumerate() {
            if cursor < k && sorted_ts[cursor] == ts {
                // `live − 1 − i` nodes sit strictly after position i.
                out.push(live - 1 - i as u64);
                cursor += 1;
            } else {
                survivors.push((ts, addr));
            }
        }
        assert_eq!(
            cursor, k,
            "rank_delete_batch: timestamp not live in tree (matched {cursor} of {k})"
        );
        self.rebuild_from_sorted(&survivors);
    }

    /// Replace the tree's contents with `pairs` (strictly increasing
    /// timestamps). Implementations rebuild in O(n) from the sorted run;
    /// the default clears and re-inserts.
    fn rebuild_from_sorted(&mut self, pairs: &[(u64, u64)]) {
        self.clear();
        self.reserve(pairs.len());
        for &(ts, addr) in pairs {
            self.insert(ts, addr);
        }
    }

    /// Convenience wrapper around [`Self::collect_in_order`].
    fn to_sorted_vec(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::with_capacity(self.len());
        self.collect_in_order(&mut v);
        v
    }
}

/// Which tree implementation a generic engine should use. Handy for CLI
/// flags and the structure-ablation benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// Self-adjusting splay tree (paper default).
    Splay,
    /// Height-balanced AVL tree (Olken 1981).
    Avl,
    /// Randomized treap with hash-derived priorities.
    Treap,
    /// Fenwick-backed time vector (Bennett & Kruskal 1975).
    Vector,
}

impl Default for TreeKind {
    /// The paper's default structure: the splay tree.
    fn default() -> Self {
        TreeKind::Splay
    }
}

impl TreeKind {
    /// All supported kinds, for sweeps.
    pub const ALL: [TreeKind; 4] = [
        TreeKind::Splay,
        TreeKind::Avl,
        TreeKind::Treap,
        TreeKind::Vector,
    ];

    /// Stable lowercase name (CLI/reporting).
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Splay => "splay",
            TreeKind::Avl => "avl",
            TreeKind::Treap => "treap",
            TreeKind::Vector => "vector",
        }
    }
}

impl std::str::FromStr for TreeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "splay" => Ok(TreeKind::Splay),
            "avl" => Ok(TreeKind::Avl),
            "treap" => Ok(TreeKind::Treap),
            "vector" => Ok(TreeKind::Vector),
            other => Err(format!(
                "unknown tree kind `{other}` (expected splay|avl|treap|vector)"
            )),
        }
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared black-box conformance suite run against every [`ReuseTree`].

    use super::ReuseTree;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Reference model: a sorted map from timestamp to address.
    #[derive(Default)]
    pub struct Model {
        map: BTreeMap<u64, u64>,
    }

    impl Model {
        pub fn insert(&mut self, ts: u64, addr: u64) {
            assert!(self.map.insert(ts, addr).is_none(), "duplicate ts {ts}");
        }

        pub fn distance(&self, ts: u64) -> u64 {
            self.map.range(ts + 1..).count() as u64
        }

        pub fn remove(&mut self, ts: u64) -> Option<u64> {
            self.map.remove(&ts)
        }

        pub fn oldest(&self) -> Option<(u64, u64)> {
            self.map.iter().next().map(|(&k, &v)| (k, v))
        }

        pub fn len(&self) -> usize {
            self.map.len()
        }

        pub fn sorted(&self) -> Vec<(u64, u64)> {
            self.map.iter().map(|(&k, &v)| (k, v)).collect()
        }
    }

    /// One random operation against both model and implementation.
    #[derive(Clone, Debug)]
    pub enum Op {
        Insert(u64, u64),
        Distance(u64),
        Remove(u64),
        DistanceAndRemove(u64),
        Oldest,
    }

    pub fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..128, any::<u64>()).prop_map(|(ts, a)| Op::Insert(ts, a)),
            (0u64..128).prop_map(Op::Distance),
            (0u64..128).prop_map(Op::Remove),
            (0u64..128).prop_map(Op::DistanceAndRemove),
            Just(Op::Oldest),
        ]
    }

    /// Drive an arbitrary op sequence, asserting agreement with the model.
    pub fn run_ops<T: ReuseTree>(tree: &mut T, ops: Vec<Op>) {
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Insert(ts, addr) => {
                    if model.map.contains_key(&ts) {
                        continue; // duplicate timestamps are excluded by contract
                    }
                    model.insert(ts, addr);
                    tree.insert(ts, addr);
                }
                Op::Distance(ts) => {
                    assert_eq!(tree.distance(ts), model.distance(ts), "distance({ts})");
                }
                Op::Remove(ts) => {
                    assert_eq!(tree.remove(ts), model.remove(ts), "remove({ts})");
                }
                Op::DistanceAndRemove(ts) => {
                    let expect = model.remove(ts).map(|addr| (model.distance(ts), addr));
                    assert_eq!(
                        tree.distance_and_remove(ts),
                        expect,
                        "distance_and_remove({ts})"
                    );
                }
                Op::Oldest => {
                    assert_eq!(tree.oldest(), model.oldest(), "oldest");
                }
            }
            assert_eq!(tree.len(), model.len(), "len after op");
            assert_eq!(tree.to_sorted_vec(), model.sorted(), "in-order contents");
        }
    }

    /// Drive `rank_delete_batch` + `rebuild_from_sorted` against the model:
    /// insert `live` pairs, batch-delete the masked subset of timestamps
    /// (in ascending order, as the engine guarantees), and check the
    /// reported ranks are the *pre-batch* strictly-greater counts, the
    /// survivors are exact, and the structure still answers queries after
    /// a possible rebuild.
    pub fn run_batch<T: ReuseTree>(tree: &mut T, live: Vec<(u64, u64)>, mask: Vec<bool>) {
        let mut model = Model::default();
        for &(ts, addr) in &live {
            if model.map.contains_key(&ts) {
                continue;
            }
            model.insert(ts, addr);
            tree.insert(ts, addr);
        }
        let keys: Vec<u64> = model.map.keys().copied().collect();
        let sorted_ts: Vec<u64> = keys
            .iter()
            .zip(mask.iter().cycle())
            .filter(|&(_, &m)| m)
            .map(|(&ts, _)| ts)
            .collect();
        let expected: Vec<u64> = sorted_ts.iter().map(|&ts| model.distance(ts)).collect();
        let mut out = Vec::new();
        tree.rank_delete_batch(&sorted_ts, &mut out);
        assert_eq!(out, expected, "batch ranks must be pre-batch ranks");
        for &ts in &sorted_ts {
            model.remove(ts);
        }
        assert_eq!(tree.len(), model.len(), "len after batch");
        assert_eq!(
            tree.to_sorted_vec(),
            model.sorted(),
            "survivors after batch"
        );

        // The structure must remain fully functional after any rebuild.
        let next_ts = keys.last().map_or(0, |&t| t + 1);
        model.insert(next_ts, 4242);
        tree.insert(next_ts, 4242);
        for &ts in keys.iter().take(8) {
            assert_eq!(
                tree.distance(ts),
                model.distance(ts),
                "distance({ts}) after batch"
            );
        }
        assert_eq!(tree.oldest(), model.oldest(), "oldest after batch");
        assert_eq!(tree.to_sorted_vec(), model.sorted(), "contents after batch");
    }

    /// Deterministic batch smoke: exercises the sparse (fused-descent) path,
    /// the dense (merge + rebuild) path, and the empty batch.
    pub fn batch_smoke<T: ReuseTree>(tree: &mut T) {
        for ts in 0..200u64 {
            tree.insert(ts, ts * 3);
        }
        // Empty batch is a no-op.
        let mut out = Vec::new();
        tree.rank_delete_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(tree.len(), 200);

        // Sparse path: 3 * 8 < 200.
        tree.rank_delete_batch(&[10, 100, 199], &mut out);
        assert_eq!(out, vec![189, 99, 0]);
        assert_eq!(tree.len(), 197);

        // Dense path: delete every other survivor (98 * 8 >= 197).
        let remaining: Vec<u64> = tree.to_sorted_vec().iter().map(|&(ts, _)| ts).collect();
        let half: Vec<u64> = remaining.iter().copied().step_by(2).collect();
        let mut model = Model::default();
        for &ts in &remaining {
            model.insert(ts, ts * 3);
        }
        let expected: Vec<u64> = half.iter().map(|&ts| model.distance(ts)).collect();
        out.clear();
        tree.rank_delete_batch(&half, &mut out);
        assert_eq!(out, expected);
        for &ts in &half {
            model.remove(ts);
        }
        assert_eq!(tree.to_sorted_vec(), model.sorted());

        // Still usable: insert past the end and query.
        tree.insert(500, 5000);
        assert_eq!(tree.distance(500), 0);
        assert_eq!(tree.oldest(), model.oldest());
    }

    /// Deterministic smoke sequence exercising all operations.
    pub fn smoke<T: ReuseTree>(tree: &mut T) {
        assert!(tree.is_empty());
        assert_eq!(tree.oldest(), None);
        assert_eq!(tree.remove(3), None);
        assert_eq!(tree.distance(0), 0);

        for ts in 0..100u64 {
            tree.insert(ts, ts * 10);
        }
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.distance(49), 50);
        assert_eq!(tree.distance(0), 99);
        assert_eq!(tree.distance(99), 0);
        assert_eq!(tree.oldest(), Some((0, 0)));

        assert_eq!(tree.remove(0), Some(0));
        assert_eq!(tree.oldest(), Some((1, 10)));
        assert_eq!(tree.distance_and_remove(50), Some((49, 500)));
        assert_eq!(tree.distance(49), 49);
        assert_eq!(tree.len(), 98);

        // Re-insert in the middle (multi-phase merge does this).
        tree.insert(50, 777);
        assert_eq!(tree.distance(49), 50);
        assert_eq!(tree.remove(50), Some(777));

        tree.clear();
        assert!(tree.is_empty());
        tree.insert(5, 55);
        assert_eq!(tree.to_sorted_vec(), vec![(5, 55)]);
    }
}

//! Fenwick-backed time vector — the Bennett & Kruskal (1975) lineage.
//!
//! The oldest fast stack-distance structure is not a search tree at all: a
//! vector indexed by access time, holding a 1 for each *live* element
//! (most recent access) and 0 elsewhere, with an m-ary partial-sum tree on
//! top. The reuse distance of a reference whose previous access was at time
//! `t` is the suffix count of 1s after `t`. A Fenwick tree is the modern
//! realization of the partial-sum tree: O(log n) update and suffix sum.
//!
//! The time axis grows with N, not M, so the structure compacts: when the
//! slot array fills, dead slots are squeezed out in O(live) and the Fenwick
//! tree is rebuilt — amortized O(1) per access.
//!
//! This is the fourth [`ReuseTree`] implementation, used in the D1
//! structure ablation. Timestamps arriving in increasing order (the
//! analyzer's normal operation) append in O(log n); out-of-order inserts
//! (only the multi-phase merge path could do this, and it happens to insert
//! in order too) fall back to an O(n) splice, documented below.

use crate::{Fenwick, ReuseTree};

const EMPTY_ADDR: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct Slot {
    ts: u64,
    addr: u64,
}

/// Bennett–Kruskal style time-vector structure with Fenwick partial sums.
///
/// # Examples
///
/// ```
/// use parda_tree::{ReuseTree, VectorTree};
///
/// let mut v = VectorTree::new();
/// for ts in 0..10 {
///     v.insert(ts, ts + 100);
/// }
/// assert_eq!(v.distance(4), 5);
/// assert_eq!(v.remove(4), Some(104));
/// assert_eq!(v.oldest(), Some((0, 100)));
/// ```
#[derive(Clone, Debug)]
pub struct VectorTree {
    /// Slots ordered by timestamp; dead slots keep their ts (for binary
    /// search) but have `addr == EMPTY_ADDR` and a zero Fenwick count.
    slots: Vec<Slot>,
    fenwick: Fenwick,
    /// Number of initialized slots (`slots[..used]`).
    used: usize,
    live: usize,
}

impl Default for VectorTree {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorTree {
    const INITIAL_SLOTS: usize = 64;

    /// Create an empty structure.
    pub fn new() -> Self {
        Self::with_capacity(Self::INITIAL_SLOTS)
    }

    /// Create an empty structure with room for `capacity` live elements.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(Self::INITIAL_SLOTS);
        Self {
            slots: Vec::with_capacity(cap),
            fenwick: Fenwick::new(cap),
            used: 0,
            live: 0,
        }
    }

    /// Binary search for the first slot with `slot.ts >= ts`.
    fn lower_bound(&self, ts: u64) -> usize {
        self.slots[..self.used].partition_point(|s| s.ts < ts)
    }

    /// Slot index holding exactly `ts`, if live.
    fn find(&self, ts: u64) -> Option<usize> {
        let idx = self.lower_bound(ts);
        let slot = self.slots[..self.used].get(idx)?;
        (slot.ts == ts && slot.addr != EMPTY_ADDR).then_some(idx)
    }

    /// Squeeze out dead slots and rebuild the Fenwick tree, growing the
    /// slot capacity if more than half the slots are live.
    fn compact(&mut self) {
        let new_cap = if self.live * 2 > self.slots.capacity() {
            self.slots.capacity() * 2
        } else {
            self.slots.capacity()
        };
        self.slots.retain(|s| s.addr != EMPTY_ADDR);
        debug_assert_eq!(self.slots.len(), self.live);
        self.slots.reserve(new_cap.saturating_sub(self.slots.len()));
        self.used = self.slots.len();
        self.fenwick = Fenwick::new(self.slots.capacity());
        for i in 0..self.used {
            self.fenwick.add(i, 1);
        }
    }

    /// Structural self-check for tests: ts order, fenwick/live agreement.
    #[doc(hidden)]
    pub fn validate(&self) {
        assert!(self.slots[..self.used]
            .windows(2)
            .all(|w| w[0].ts < w[1].ts));
        let live = self.slots[..self.used]
            .iter()
            .filter(|s| s.addr != EMPTY_ADDR)
            .count();
        assert_eq!(live, self.live);
        assert_eq!(self.fenwick.total(), self.live as u64);
        for (i, slot) in self.slots[..self.used].iter().enumerate() {
            let expect = u64::from(slot.addr != EMPTY_ADDR);
            assert_eq!(
                self.fenwick.prefix_sum(i + 1) - self.fenwick.prefix_sum(i),
                expect,
                "fenwick bit mismatch at slot {i}"
            );
        }
    }
}

impl ReuseTree for VectorTree {
    fn insert(&mut self, timestamp: u64, addr: u64) {
        debug_assert_ne!(addr, EMPTY_ADDR, "sentinel address is reserved");
        // Fast path: strictly larger than everything seen — append.
        if self.used == 0 || self.slots[self.used - 1].ts < timestamp {
            if self.used == self.slots.capacity() || self.used == self.fenwick.len() {
                self.compact();
            }
            self.slots.push(Slot {
                ts: timestamp,
                addr,
            });
            self.fenwick.add(self.used, 1);
            self.used += 1;
            self.live += 1;
            return;
        }
        // Slow path: splice into position and rebuild (O(n); only
        // out-of-order merges take this).
        let idx = self.lower_bound(timestamp);
        assert!(
            self.slots[idx].ts != timestamp || self.slots[idx].addr == EMPTY_ADDR,
            "duplicate timestamp {timestamp} inserted into VectorTree"
        );
        if self.slots[idx].ts == timestamp {
            // Reviving a dead slot in place.
            self.slots[idx].addr = addr;
            self.fenwick.add(idx, 1);
            self.live += 1;
            return;
        }
        self.slots.insert(
            idx,
            Slot {
                ts: timestamp,
                addr,
            },
        );
        self.used += 1;
        self.live += 1;
        self.fenwick = Fenwick::new(self.slots.capacity().max(self.used));
        for (i, slot) in self.slots[..self.used].iter().enumerate() {
            if slot.addr != EMPTY_ADDR {
                self.fenwick.add(i, 1);
            }
        }
    }

    fn distance(&mut self, timestamp: u64) -> u64 {
        // Count of live slots strictly after `timestamp`.
        let idx = self.lower_bound(timestamp + 1);
        self.fenwick.suffix_sum(idx)
    }

    fn remove(&mut self, timestamp: u64) -> Option<u64> {
        let idx = self.find(timestamp)?;
        let addr = self.slots[idx].addr;
        self.slots[idx].addr = EMPTY_ADDR;
        self.fenwick.sub(idx, 1);
        self.live -= 1;
        Some(addr)
    }

    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        // Fused: `timestamp` is live at `idx`, so the strictly-greater count
        // is the suffix just past it — one binary search serves both halves.
        let idx = self.find(timestamp)?;
        let d = self.fenwick.suffix_sum(idx + 1);
        let addr = self.slots[idx].addr;
        self.slots[idx].addr = EMPTY_ADDR;
        self.fenwick.sub(idx, 1);
        self.live -= 1;
        Some((d, addr))
    }

    fn oldest(&self) -> Option<(u64, u64)> {
        let idx = self.fenwick.select(1)?;
        let slot = &self.slots[idx];
        debug_assert_ne!(slot.addr, EMPTY_ADDR);
        Some((slot.ts, slot.addr))
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.fenwick = Fenwick::new(self.slots.capacity().max(Self::INITIAL_SLOTS));
        self.used = 0;
        self.live = 0;
    }

    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>) {
        out.extend(
            self.slots[..self.used]
                .iter()
                .filter(|s| s.addr != EMPTY_ADDR)
                .map(|s| (s.ts, s.addr)),
        );
    }

    /// Fenwick fast path: one galloping scan over the slot array. The batch
    /// arrives in ascending timestamp order, so each lookup restarts its
    /// binary search from the previous hit (`partition_point` over the
    /// remaining suffix), and each rank is a single `suffix_sum`. Earlier
    /// deletions in the batch sit at strictly smaller slot indices, so they
    /// never perturb a later suffix count — every reported rank is the
    /// pre-batch rank, as the contract requires.
    fn rank_delete_batch(&mut self, sorted_ts: &[u64], out: &mut Vec<u64>) {
        out.reserve(sorted_ts.len());
        let mut idx = 0usize;
        for &ts in sorted_ts {
            idx += self.slots[idx..self.used].partition_point(|s| s.ts < ts);
            let live = self.slots[..self.used]
                .get(idx)
                .is_some_and(|s| s.ts == ts && s.addr != EMPTY_ADDR);
            assert!(
                live,
                "rank_delete_batch: timestamp {ts} not live in VectorTree"
            );
            out.push(self.fenwick.suffix_sum(idx + 1));
            self.slots[idx].addr = EMPTY_ADDR;
            self.fenwick.sub(idx, 1);
            self.live -= 1;
        }
    }

    fn rebuild_from_sorted(&mut self, pairs: &[(u64, u64)]) {
        self.slots.clear();
        self.slots
            .extend(pairs.iter().map(|&(ts, addr)| Slot { ts, addr }));
        self.used = pairs.len();
        self.live = pairs.len();
        self.fenwick = Fenwick::new(self.slots.capacity().max(Self::INITIAL_SLOTS));
        for i in 0..self.used {
            self.fenwick.add(i, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{self, op_strategy};
    use proptest::prelude::*;

    #[test]
    fn smoke() {
        conformance::smoke(&mut VectorTree::new());
    }

    #[test]
    fn append_heavy_workload_compacts() {
        let mut v = VectorTree::new();
        // Insert/remove cycles force many compactions of the time axis.
        for round in 0..50u64 {
            for i in 0..100u64 {
                v.insert(round * 200 + i, i);
            }
            for i in 0..100u64 {
                assert_eq!(v.remove(round * 200 + i), Some(i));
            }
        }
        assert_eq!(v.len(), 0);
        v.validate();
    }

    #[test]
    fn distance_counts_strictly_greater() {
        let mut v = VectorTree::new();
        for ts in [10u64, 20, 30, 40, 50] {
            v.insert(ts, ts);
        }
        assert_eq!(v.distance(30), 2);
        assert_eq!(v.distance(25), 3);
        assert_eq!(v.distance(50), 0);
        assert_eq!(v.distance(5), 5);
        v.validate();
    }

    #[test]
    fn out_of_order_insert_slow_path() {
        let mut v = VectorTree::new();
        v.insert(10, 1);
        v.insert(30, 3);
        v.insert(20, 2); // splice
        assert_eq!(v.to_sorted_vec(), vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(v.distance(10), 2);
        v.validate();
    }

    #[test]
    fn dead_slot_revival() {
        let mut v = VectorTree::new();
        v.insert(5, 50);
        v.insert(9, 90);
        assert_eq!(v.remove(5), Some(50));
        v.insert(5, 55); // same timestamp, revived in place
        assert_eq!(v.to_sorted_vec(), vec![(5, 55), (9, 90)]);
        v.validate();
    }

    #[test]
    fn oldest_skips_dead_slots() {
        let mut v = VectorTree::new();
        for ts in 0..10u64 {
            v.insert(ts, ts * 2);
        }
        for ts in 0..5u64 {
            v.remove(ts);
        }
        assert_eq!(v.oldest(), Some((5, 10)));
        v.validate();
    }

    #[test]
    fn batch_smoke() {
        conformance::batch_smoke(&mut VectorTree::new());
    }

    proptest! {
        #[test]
        fn conforms_to_model(ops in proptest::collection::vec(op_strategy(), 0..300)) {
            let mut tree = VectorTree::new();
            conformance::run_ops(&mut tree, ops);
            tree.validate();
        }

        #[test]
        fn batch_conforms_to_model(
            live in proptest::collection::vec((0u64..256, 0u64..1_000_000), 0..200),
            mask in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            let mut tree = VectorTree::new();
            conformance::run_batch(&mut tree, live, mask);
            tree.validate();
        }
    }
}

//! Size-augmented treap with hash-derived priorities.
//!
//! A third, independently implemented order-statistics structure for the
//! D1 structure ablation. Priorities come from hashing the key
//! ([`parda_hash::fx_hash_u64`]), which makes the shape a deterministic
//! function of the key set — no RNG state to thread around, and identical
//! behaviour across runs and threads.

use crate::{ReuseTree, NIL};
use parda_hash::fx_hash_u64;

#[derive(Clone, Debug)]
struct Node {
    ts: u64,
    addr: u64,
    priority: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// Randomized balanced search tree keyed by timestamp with subtree sizes.
///
/// # Examples
///
/// ```
/// use parda_tree::{ReuseTree, Treap};
///
/// let mut tree = Treap::new();
/// tree.insert(3, 30);
/// tree.insert(1, 10);
/// tree.insert(2, 20);
/// assert_eq!(tree.distance(1), 2);
/// assert_eq!(tree.to_sorted_vec(), vec![(1, 10), (2, 20), (3, 30)]);
/// ```
#[derive(Clone, Debug)]
pub struct Treap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
}

impl Default for Treap {
    fn default() -> Self {
        Self::new()
    }
}

impl Treap {
    /// Create an empty treap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Create an empty treap with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            root: NIL,
        }
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn update(&mut self, n: u32) {
        let (l, r) = {
            let node = &self.nodes[n as usize];
            (node.left, node.right)
        };
        self.nodes[n as usize].size = 1 + self.size(l) + self.size(r);
    }

    fn alloc(&mut self, ts: u64, addr: u64) -> u32 {
        let node = Node {
            ts,
            addr,
            priority: fx_hash_u64(ts),
            left: NIL,
            right: NIL,
            size: 1,
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Split subtree `n` into (< ts, ≥ ts).
    fn split(&mut self, n: u32, ts: u64) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.nodes[n as usize].ts < ts {
            let right = self.nodes[n as usize].right;
            let (mid, hi) = self.split(right, ts);
            self.nodes[n as usize].right = mid;
            self.update(n);
            (n, hi)
        } else {
            let left = self.nodes[n as usize].left;
            let (lo, mid) = self.split(left, ts);
            self.nodes[n as usize].left = mid;
            self.update(n);
            (lo, n)
        }
    }

    /// Merge subtrees `a` (all keys smaller) and `b` (all keys larger).
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let right = self.nodes[a as usize].right;
            let merged = self.merge(right, b);
            self.nodes[a as usize].right = merged;
            self.update(a);
            a
        } else {
            let left = self.nodes[b as usize].left;
            let merged = self.merge(a, left);
            self.nodes[b as usize].left = merged;
            self.update(b);
            b
        }
    }

    /// Remove `ts` from the subtree at `n` while accumulating its rank
    /// (count of strictly-greater keys) into `rank` along the same descent.
    /// At the found node the two children are merged in place — one descent
    /// plus one merge, instead of the find + split + split + merge dance.
    fn remove_rank_at(
        &mut self,
        n: u32,
        ts: u64,
        rank: &mut u64,
        removed: &mut Option<u64>,
    ) -> u32 {
        if n == NIL {
            return NIL;
        }
        match ts.cmp(&self.nodes[n as usize].ts) {
            std::cmp::Ordering::Less => {
                let right = self.nodes[n as usize].right;
                *rank += 1 + self.size(right) as u64;
                let child = self.remove_rank_at(self.nodes[n as usize].left, ts, rank, removed);
                self.nodes[n as usize].left = child;
                self.update(n);
                n
            }
            std::cmp::Ordering::Greater => {
                let child = self.remove_rank_at(self.nodes[n as usize].right, ts, rank, removed);
                self.nodes[n as usize].right = child;
                self.update(n);
                n
            }
            std::cmp::Ordering::Equal => {
                let (left, right) = {
                    let node = &self.nodes[n as usize];
                    (node.left, node.right)
                };
                *rank += self.size(right) as u64;
                *removed = Some(self.nodes[n as usize].addr);
                self.free.push(n);
                self.merge(left, right)
            }
        }
    }

    fn find(&self, ts: u64) -> u32 {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            cur = match ts.cmp(&node.ts) {
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
                std::cmp::Ordering::Equal => return cur,
            };
        }
        NIL
    }

    /// Recompute subtree sizes below `root` in one iterative post-order
    /// walk (treap depth is only *expected* logarithmic, so no recursion).
    fn fixup_sizes(&mut self, root: u32) {
        let mut stack = vec![(root, false)];
        while let Some((n, visited)) = stack.pop() {
            if n == NIL {
                continue;
            }
            if visited {
                let (l, r) = {
                    let node = &self.nodes[n as usize];
                    (node.left, node.right)
                };
                self.nodes[n as usize].size = 1 + self.size(l) + self.size(r);
            } else {
                stack.push((n, true));
                let node = &self.nodes[n as usize];
                stack.push((node.left, false));
                stack.push((node.right, false));
            }
        }
    }

    /// Structural self-check for tests: BST order, heap order, sizes.
    #[doc(hidden)]
    pub fn validate(&self) {
        fn walk(tree: &Treap, n: u32, lo: Option<u64>, hi: Option<u64>) -> u32 {
            if n == NIL {
                return 0;
            }
            let node = &tree.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.ts > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.ts < hi, "BST order violated");
            }
            for child in [node.left, node.right] {
                if child != NIL {
                    assert!(
                        tree.nodes[child as usize].priority <= node.priority,
                        "heap order violated"
                    );
                }
            }
            let ls = walk(tree, node.left, lo, Some(node.ts));
            let rs = walk(tree, node.right, Some(node.ts), hi);
            assert_eq!(node.size, 1 + ls + rs, "size augmentation stale");
            node.size
        }
        walk(self, self.root, None, None);
    }
}

impl ReuseTree for Treap {
    fn insert(&mut self, timestamp: u64, addr: u64) {
        debug_assert_eq!(
            self.find(timestamp),
            NIL,
            "duplicate timestamp {timestamp} inserted into Treap"
        );
        let new = self.alloc(timestamp, addr);
        let (lo, hi) = self.split(self.root, timestamp);
        let left = self.merge(lo, new);
        self.root = self.merge(left, hi);
    }

    fn distance(&mut self, timestamp: u64) -> u64 {
        let mut cur = self.root;
        let mut d: u64 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            match timestamp.cmp(&node.ts) {
                std::cmp::Ordering::Greater => cur = node.right,
                std::cmp::Ordering::Less => {
                    d += 1 + self.size(node.right) as u64;
                    cur = node.left;
                }
                std::cmp::Ordering::Equal => {
                    return d + self.size(node.right) as u64;
                }
            }
        }
        d
    }

    fn remove(&mut self, timestamp: u64) -> Option<u64> {
        let mut removed = None;
        let mut rank = 0;
        self.root = self.remove_rank_at(self.root, timestamp, &mut rank, &mut removed);
        removed
    }

    fn distance_and_remove(&mut self, timestamp: u64) -> Option<(u64, u64)> {
        // Fused: rank accumulates along the removal descent, one walk total.
        let mut removed = None;
        let mut rank = 0;
        self.root = self.remove_rank_at(self.root, timestamp, &mut rank, &mut removed);
        removed.map(|addr| (rank, addr))
    }

    fn oldest(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.nodes[cur as usize].left != NIL {
            cur = self.nodes[cur as usize].left;
        }
        let node = &self.nodes[cur as usize];
        Some((node.ts, node.addr))
    }

    fn len(&self) -> usize {
        self.size(self.root) as usize
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }

    fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    fn collect_in_order(&self, out: &mut Vec<(u64, u64)>) {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack non-empty");
            let node = &self.nodes[n as usize];
            out.push((node.ts, node.addr));
            cur = node.right;
        }
    }

    /// O(n) cartesian build over the right spine. Keys arrive in increasing
    /// order, so each new node can only displace a suffix of the spine: pop
    /// while the spine top's priority is *strictly* smaller (on a tie the
    /// earlier — smaller-key — node stays above, matching `merge`'s `>=`
    /// preference for the left operand), hang the popped chain as the new
    /// node's left child, and attach. Priorities are a pure function of the
    /// key, so the rebuilt shape is identical to incremental insertion.
    fn rebuild_from_sorted(&mut self, pairs: &[(u64, u64)]) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.reserve(pairs.len());
        self.root = NIL;
        let mut spine: Vec<u32> = Vec::new();
        for &(ts, addr) in pairs {
            let new = self.alloc(ts, addr);
            let p = self.nodes[new as usize].priority;
            let mut popped = NIL;
            while let Some(&top) = spine.last() {
                if self.nodes[top as usize].priority < p {
                    popped = top;
                    spine.pop();
                } else {
                    break;
                }
            }
            self.nodes[new as usize].left = popped;
            match spine.last() {
                Some(&top) => self.nodes[top as usize].right = new,
                None => self.root = new,
            }
            spine.push(new);
        }
        let root = self.root;
        self.fixup_sizes(root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{self, op_strategy};
    use proptest::prelude::*;

    #[test]
    fn smoke() {
        conformance::smoke(&mut Treap::new());
    }

    #[test]
    fn shape_is_deterministic_in_key_set() {
        let mut a = Treap::new();
        let mut b = Treap::new();
        for ts in 0..100u64 {
            a.insert(ts, ts);
        }
        for ts in (0..100u64).rev() {
            b.insert(ts, ts);
        }
        // Same key set via different insertion orders ⇒ same treap shape,
        // hence identical root.
        assert_eq!(a.nodes[a.root as usize].ts, b.nodes[b.root as usize].ts);
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
        a.validate();
        b.validate();
    }

    #[test]
    fn depth_is_logarithmic_in_expectation() {
        let mut tree = Treap::new();
        for ts in 0..8192u64 {
            tree.insert(ts, ts);
        }
        fn depth(t: &Treap, n: u32) -> u32 {
            if n == NIL {
                return 0;
            }
            1 + depth(t, t.nodes[n as usize].left).max(depth(t, t.nodes[n as usize].right))
        }
        let d = depth(&tree, tree.root);
        // E[depth] ≈ 3 ln n ≈ 27 for n = 8192; 64 is a generous ceiling that
        // still rules out degenerate (linear) shapes.
        assert!(d < 64, "treap depth {d} looks degenerate");
        tree.validate();
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut tree = Treap::new();
        for ts in 0..50u64 {
            tree.insert(ts, ts + 500);
        }
        for ts in 10..20u64 {
            assert_eq!(tree.remove(ts), Some(ts + 500));
        }
        for ts in 10..20u64 {
            tree.insert(ts, ts + 900);
        }
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.distance(9), 40);
        tree.validate();
    }

    #[test]
    fn batch_smoke() {
        conformance::batch_smoke(&mut Treap::new());
    }

    #[test]
    fn dense_batch_rebuild_matches_incremental_shape() {
        let mut tree = Treap::new();
        for ts in 0..512u64 {
            tree.insert(ts, ts);
        }
        // Keep every third key: dense path (341 * 8 ≥ 512) → cartesian
        // rebuild, whose shape must equal incremental insertion of the
        // survivors (priorities are a pure function of the key).
        let delete: Vec<u64> = (0..512u64).filter(|t| t % 3 != 0).collect();
        let mut out = Vec::new();
        tree.rank_delete_batch(&delete, &mut out);
        tree.validate();

        let mut fresh = Treap::new();
        for ts in (0..512u64).filter(|t| t % 3 == 0) {
            fresh.insert(ts, ts);
        }
        assert_eq!(
            tree.nodes[tree.root as usize].ts,
            fresh.nodes[fresh.root as usize].ts
        );
        assert_eq!(tree.to_sorted_vec(), fresh.to_sorted_vec());
    }

    proptest! {
        #[test]
        fn conforms_to_model(ops in proptest::collection::vec(op_strategy(), 0..300)) {
            let mut tree = Treap::new();
            conformance::run_ops(&mut tree, ops);
            tree.validate();
        }

        #[test]
        fn batch_conforms_to_model(
            live in proptest::collection::vec((0u64..256, 0u64..1_000_000), 0..200),
            mask in proptest::collection::vec(any::<bool>(), 1..64),
        ) {
            let mut tree = Treap::new();
            conformance::run_batch(&mut tree, live, mask);
            tree.validate();
        }
    }
}

//! Message-passing substrate: the stand-in for MPI.
//!
//! The original PARDA runs as MPI processes on a cluster; its communication
//! needs are modest — point-to-point sends of local-infinity lists between
//! neighbouring ranks, state shipping for the multi-phase reduction, and a
//! final histogram reduction. This crate reproduces that programming model
//! on OS threads:
//!
//! * [`World::run`] launches `np` ranks, each receiving a [`RankCtx`] with
//!   MPI-flavoured operations: [`RankCtx::send`], [`RankCtx::recv_from`],
//!   [`RankCtx::barrier`];
//! * [`pipe()`] provides the bounded producer/consumer channel standing in for
//!   the Linux pipe between the Pin tracer and rank 0 (paper Figure 3).
//!
//! Message delivery between a pair of ranks is FIFO; `recv_from` buffers
//! out-of-order arrivals from other sources, exactly matching MPI's
//! per-(source, dest) ordering guarantee.

pub mod collectives;
pub mod pipe;

pub use pipe::{pipe, PipeReader, PipeWriter};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Per-rank communication context handed to the closure run by
/// [`World::run`].
pub struct RankCtx<M> {
    rank: usize,
    np: usize,
    senders: Vec<Sender<(usize, M)>>,
    receiver: Receiver<(usize, M)>,
    /// Messages that arrived while waiting for a specific source.
    stash: Vec<VecDeque<M>>,
    barrier: Arc<Barrier>,
    /// Set when any rank panics, so peers blocked in `recv` fail fast
    /// instead of deadlocking (every rank holds senders to every other, so
    /// channels never disconnect on their own).
    failed: Arc<AtomicBool>,
}

impl<M: Send> RankCtx<M> {
    /// This rank's id in `0..np`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn np(&self) -> usize {
        self.np
    }

    /// Send `msg` to rank `dest` (non-blocking; channels are unbounded).
    ///
    /// Panics if `dest` is out of range. Sending to self is allowed and the
    /// message is received like any other.
    pub fn send(&self, dest: usize, msg: M) {
        assert!(dest < self.np, "dest {dest} out of range (np {})", self.np);
        // The receiver can only have hung up if its rank panicked; propagate.
        self.senders[dest]
            .send((self.rank, msg))
            .expect("destination rank terminated");
    }

    /// Blocking receive with fail-fast on peer panic.
    fn recv_raw(&self) -> (usize, M) {
        loop {
            match self.receiver.recv_timeout(Duration::from_millis(20)) {
                Ok(pair) => return pair,
                Err(RecvTimeoutError::Timeout) => {
                    if self.failed.load(Ordering::Relaxed) {
                        panic!("a peer rank panicked while rank {} was waiting", self.rank);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("all senders dropped while waiting for message");
                }
            }
        }
    }

    /// Receive the next message sent by rank `src`, blocking until one
    /// arrives. Messages from other sources received meanwhile are stashed
    /// and returned by their own `recv_from`/`recv_any` calls later.
    pub fn recv_from(&mut self, src: usize) -> M {
        assert!(src < self.np, "src {src} out of range (np {})", self.np);
        if let Some(msg) = self.stash[src].pop_front() {
            return msg;
        }
        loop {
            let (from, msg) = self.recv_raw();
            if from == src {
                return msg;
            }
            self.stash[from].push_back(msg);
        }
    }

    /// Receive the next message from any source, returning `(src, msg)`.
    pub fn recv_any(&mut self) -> (usize, M) {
        for (src, queue) in self.stash.iter_mut().enumerate() {
            if let Some(msg) = queue.pop_front() {
                return (src, msg);
            }
        }
        self.recv_raw()
    }

    /// `true` if a message from `src` is already available (non-blocking).
    pub fn poll_from(&mut self, src: usize) -> bool {
        if !self.stash[src].is_empty() {
            return true;
        }
        while let Ok((from, msg)) = self.receiver.try_recv() {
            self.stash[from].push_back(msg);
        }
        !self.stash[src].is_empty()
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// A set of ranks executing the same function on separate threads — the
/// moral equivalent of `MPI_COMM_WORLD`.
pub struct World;

impl World {
    /// Run `np` ranks of `f` to completion, returning their results ordered
    /// by rank. `M` is the message type exchanged via [`RankCtx`].
    ///
    /// Panics in any rank propagate after all ranks have been joined.
    pub fn run<M, R, F>(np: usize, f: F) -> Vec<R>
    where
        M: Send,
        R: Send,
        F: Fn(RankCtx<M>) -> R + Sync,
    {
        assert!(np > 0, "world needs at least one rank");
        let mut senders = Vec::with_capacity(np);
        let mut receivers = Vec::with_capacity(np);
        for _ in 0..np {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(np));
        let failed = Arc::new(AtomicBool::new(false));

        let mut contexts: Vec<RankCtx<M>> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| RankCtx {
                rank,
                np,
                senders: senders.clone(),
                receiver,
                stash: (0..np).map(|_| VecDeque::new()).collect(),
                barrier: barrier.clone(),
                failed: failed.clone(),
            })
            .collect();
        // Drop the original senders so channels close when ranks finish.
        drop(senders);

        // Run each rank under catch_unwind so a panic flips the shared flag
        // (waking peers blocked in recv) before propagating at join time.
        let guarded = |ctx: RankCtx<M>, failed: &AtomicBool| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(ctx)));
            if result.is_err() {
                failed.store(true, Ordering::Relaxed);
            }
            result
        };

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(np);
            // Give rank 0 the current thread; spawn the rest.
            let ctx0 = contexts.remove(0);
            let guarded = &guarded;
            for ctx in contexts {
                let failed = failed.clone();
                handles.push(scope.spawn(move || guarded(ctx, &failed)));
            }
            let r0 = guarded(ctx0, &failed);
            let mut results = Vec::with_capacity(np);
            let mut first_panic = None;
            for result in std::iter::once(r0).chain(handles.into_iter().map(|h| {
                h.join().unwrap_or_else(|p| {
                    failed.store(true, Ordering::Relaxed);
                    Err(p)
                })
            })) {
                match result {
                    Ok(r) => results.push(r),
                    Err(panic) => {
                        first_panic.get_or_insert(panic);
                    }
                }
            }
            if let Some(panic) = first_panic {
                std::panic::resume_unwind(panic);
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let results = World::run::<(), _, _>(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.np(), 1);
            ctx.barrier();
            42
        });
        assert_eq!(results, vec![42]);
    }

    #[test]
    fn results_are_ordered_by_rank() {
        let results = World::run::<(), _, _>(8, |ctx| ctx.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ring_pass_accumulates() {
        // Each rank adds its id and forwards around a ring; matches MPI's
        // canonical ring example.
        let results = World::run::<u64, _, _>(4, |mut ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0);
                ctx.recv_from(3)
            } else {
                let v = ctx.recv_from(ctx.rank() - 1);
                let next = (ctx.rank() + 1) % ctx.np();
                ctx.send(next, v + ctx.rank() as u64);
                0
            }
        });
        assert_eq!(results[0], 1 + 2 + 3);
    }

    #[test]
    fn recv_from_filters_by_source() {
        // Rank 2 sends first, but rank 0 asks for rank 1's message first:
        // the stash must hold rank 2's message for the later recv.
        let results = World::run::<u64, _, _>(3, |mut ctx| match ctx.rank() {
            0 => {
                let a = ctx.recv_from(1);
                let b = ctx.recv_from(2);
                a * 100 + b
            }
            1 => {
                // The token from rank 2 guarantees rank 2's message to rank 0
                // was enqueued first, so rank 0 must stash it while waiting
                // for ours.
                let token = ctx.recv_from(2);
                assert_eq!(token, 1);
                ctx.send(0, 7);
                0
            }
            2 => {
                ctx.send(0, 9);
                ctx.send(1, 1);
                0
            }
            _ => unreachable!(),
        });
        assert_eq!(results[0], 709);
    }

    #[test]
    fn messages_between_pair_are_fifo() {
        let results = World::run::<u64, _, _>(2, |mut ctx| {
            if ctx.rank() == 0 {
                for i in 0..100 {
                    ctx.send(1, i);
                }
                0
            } else {
                let mut last = None;
                for _ in 0..100 {
                    let v = ctx.recv_from(0);
                    if let Some(prev) = last {
                        assert!(v > prev, "FIFO violated: {v} after {prev}");
                    }
                    last = Some(v);
                }
                last.unwrap()
            }
        });
        assert_eq!(results[1], 99);
    }

    #[test]
    fn send_to_self_is_received() {
        let results = World::run::<u64, _, _>(1, |mut ctx| {
            ctx.send(0, 5);
            ctx.recv_from(0)
        });
        assert_eq!(results, vec![5]);
    }

    #[test]
    fn recv_any_returns_source() {
        let results = World::run::<u64, _, _>(2, |mut ctx| {
            if ctx.rank() == 0 {
                let (src, v) = ctx.recv_any();
                assert_eq!(src, 1);
                v
            } else {
                ctx.send(0, 11);
                0
            }
        });
        assert_eq!(results[0], 11);
    }

    #[test]
    fn rank_panic_propagates_instead_of_deadlocking() {
        // Regression test: rank 1 panics while rank 0 blocks in recv_from.
        // Without the shared failure flag this deadlocked forever (every
        // rank holds senders to every other, so channels never disconnect).
        let result = std::panic::catch_unwind(|| {
            World::run::<u64, _, _>(3, |mut ctx| {
                match ctx.rank() {
                    0 => ctx.recv_from(1), // never satisfied
                    1 => panic!("injected rank failure"),
                    _ => 0,
                }
            })
        });
        let panic = result.expect_err("the injected panic must propagate");
        let message = panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("injected rank failure") || message.contains("peer rank panicked"),
            "expected the injected panic (or the fail-fast peer panic), got: {message}"
        );
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run::<(), _, _>(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}

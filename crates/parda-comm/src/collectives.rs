//! Collective operations over a rank world.
//!
//! The paper's algorithms use three collectives: scatter (rank 0
//! distributing chunks, Figure 3), gather-to-one (Algorithm 6's state
//! reduction), and `reduce_sum` over histograms (Algorithm 3's finale).
//! These helpers implement them over the point-to-point layer with the
//! usual root-centric semantics; each is a drop-in for its MPI namesake at
//! the small scales Parda needs (the histogram reduction is a single
//! message per rank — tree-structured reductions would only matter at
//! thousands of ranks).

use crate::RankCtx;

impl<M: Send> RankCtx<M> {
    /// Broadcast from `root`: the root's `value` is delivered to every
    /// rank (including the root, which gets its own value back).
    ///
    /// `value` is only read on the root; other ranks may pass any
    /// placeholder (it is returned unchanged on the root).
    pub fn broadcast(&mut self, root: usize, value: M) -> M
    where
        M: Clone,
    {
        assert!(root < self.np(), "root {root} out of range");
        if self.rank() == root {
            for dest in 0..self.np() {
                if dest != root {
                    self.send(dest, value.clone());
                }
            }
            value
        } else {
            self.recv_from(root)
        }
    }

    /// Gather to `root`: returns `Some(values)` ordered by rank on the
    /// root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, value: M) -> Option<Vec<M>> {
        assert!(root < self.np(), "root {root} out of range");
        if self.rank() == root {
            let mut out: Vec<Option<M>> = (0..self.np()).map(|_| None).collect();
            out[root] = Some(value);
            for src in (0..self.np()).filter(|&s| s != root) {
                let received = self.recv_from(src);
                out[src] = Some(received);
            }
            Some(out.into_iter().map(|v| v.expect("all gathered")).collect())
        } else {
            self.send(root, value);
            None
        }
    }

    /// Reduce to `root` with a binary fold (applied in rank order, starting
    /// from rank 0's value): returns `Some(folded)` on the root, `None`
    /// elsewhere. This is the paper's `reduce_sum` when `fold` merges
    /// histograms.
    pub fn reduce<F>(&mut self, root: usize, value: M, mut fold: F) -> Option<M>
    where
        F: FnMut(M, M) -> M,
    {
        let gathered = self.gather(root, value)?;
        let mut iter = gathered.into_iter();
        let first = iter.next().expect("np >= 1");
        Some(iter.fold(first, &mut fold))
    }

    /// Scatter from `root`: rank `i` receives `values[i]`. `values` is only
    /// read on the root (pass an empty Vec elsewhere). Panics on the root
    /// if `values.len() != np`.
    pub fn scatter(&mut self, root: usize, values: Vec<M>) -> M {
        assert!(root < self.np(), "root {root} out of range");
        if self.rank() == root {
            assert_eq!(values.len(), self.np(), "scatter needs one value per rank");
            let mut mine = None;
            for (dest, value) in values.into_iter().enumerate() {
                if dest == root {
                    mine = Some(value);
                } else {
                    self.send(dest, value);
                }
            }
            mine.expect("root's own slice present")
        } else {
            self.recv_from(root)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::World;

    #[test]
    fn broadcast_delivers_to_all() {
        let results = World::run::<u64, _, _>(5, |mut ctx| {
            let value = if ctx.rank() == 2 { 99 } else { 0 };
            ctx.broadcast(2, value)
        });
        assert_eq!(results, vec![99; 5]);
    }

    #[test]
    fn gather_orders_by_rank() {
        let results = World::run::<u64, _, _>(4, |mut ctx| ctx.gather(0, ctx.rank() as u64 * 10));
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn gather_to_nonzero_root() {
        let results = World::run::<u64, _, _>(3, |mut ctx| ctx.gather(2, ctx.rank() as u64));
        assert_eq!(results[2], Some(vec![0, 1, 2]));
        assert_eq!(results[0], None);
    }

    #[test]
    fn reduce_folds_in_rank_order() {
        // Use a non-commutative fold to pin the order: string concat via
        // digit packing.
        let results = World::run::<u64, _, _>(4, |mut ctx| {
            ctx.reduce(0, ctx.rank() as u64 + 1, |a, b| a * 10 + b)
        });
        assert_eq!(results[0], Some(1234));
    }

    #[test]
    fn scatter_distributes_slices() {
        let results = World::run::<Vec<u64>, _, _>(3, |mut ctx| {
            let values = if ctx.rank() == 0 {
                vec![vec![0, 0], vec![1], vec![2, 2, 2]]
            } else {
                Vec::new()
            };
            ctx.scatter(0, values).len()
        });
        assert_eq!(results, vec![2, 1, 3]);
    }

    #[test]
    fn collectives_compose() {
        // scatter → local work → reduce: a miniature Parda phase.
        let results = World::run::<u64, _, _>(4, |mut ctx| {
            let chunks = if ctx.rank() == 0 {
                vec![1u64, 2, 3, 4]
            } else {
                Vec::new()
            };
            // Scatter wants Vec<M> with M=u64 here.
            let mine = ctx.scatter(0, chunks);
            let local = mine * mine;
            ctx.reduce(0, local, |a, b| a + b).unwrap_or(0)
        });
        assert_eq!(results[0], 1 + 4 + 9 + 16);
    }
}

//! The bounded pipe between trace producer and analyzer.
//!
//! In the paper's framework (Figure 3), a Pin-instrumented benchmark writes
//! the address trace into a Linux pipe of fixed size (64 Mw in the
//! evaluation) read by MPI rank 0. The two essential behaviours are
//! back-pressure (the producer blocks when the analyzer falls behind) and
//! batching (addresses move in blocks, not one syscall each). This module
//! reproduces both with a bounded channel of address batches.

use crossbeam_channel::{bounded, Receiver, Sender};
use parda_trace::{Addr, AddressStream};

/// Default batch size in addresses (words).
pub const DEFAULT_BATCH: usize = 4096;

/// Writing half of a [`pipe`]. Dropping it closes the pipe; the reader then
/// drains remaining batches and reports end-of-stream.
pub struct PipeWriter {
    tx: Sender<Vec<Addr>>,
    buf: Vec<Addr>,
    batch: usize,
    closed: bool,
}

impl PipeWriter {
    /// Append one address, flushing a full batch (blocking if the pipe is
    /// at capacity — this is the producer back-pressure).
    pub fn write(&mut self, addr: Addr) {
        self.buf.push(addr);
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }

    /// Append a slice of addresses.
    pub fn write_all(&mut self, addrs: &[Addr]) {
        for &a in addrs {
            self.write(a);
        }
    }

    /// Push any buffered addresses into the pipe.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch));
        // A closed receiver means the analyzer is gone; drop the data like a
        // real pipe would raise EPIPE, and latch `is_closed` so the producer
        // can stop early instead of encoding batches nobody will read.
        if self.tx.send(batch).is_err() {
            self.closed = true;
        }
    }

    /// `true` once a flush has found the reader gone. Data flushed after
    /// (or by the flush) that observed the closed pipe is *lost*, exactly
    /// like writes after `EPIPE`; producers should check this between
    /// batches and stop.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Reading half of a [`pipe`]; an [`AddressStream`] over the incoming
/// batches.
pub struct PipeReader {
    rx: Receiver<Vec<Addr>>,
    current: Vec<Addr>,
    pos: usize,
}

impl AddressStream for PipeReader {
    fn next_addr(&mut self) -> Option<Addr> {
        loop {
            if self.pos < self.current.len() {
                let a = self.current[self.pos];
                self.pos += 1;
                return Some(a);
            }
            match self.rx.recv() {
                Ok(batch) => {
                    self.current = batch;
                    self.pos = 0;
                }
                Err(_) => return None, // writer dropped: end of stream
            }
        }
    }

    fn fill(&mut self, buf: &mut Vec<Addr>, n: usize) -> usize {
        let mut produced = 0;
        while produced < n {
            if self.pos < self.current.len() {
                let take = (n - produced).min(self.current.len() - self.pos);
                buf.extend_from_slice(&self.current[self.pos..self.pos + take]);
                self.pos += take;
                produced += take;
            } else {
                match self.rx.recv() {
                    Ok(batch) => {
                        self.current = batch;
                        self.pos = 0;
                    }
                    Err(_) => break,
                }
            }
        }
        produced
    }
}

/// Create a bounded pipe holding at most `capacity_words` addresses
/// (rounded up to whole batches of `batch` addresses).
///
/// # Examples
///
/// ```
/// use parda_comm::pipe;
/// use parda_trace::AddressStream;
///
/// let (mut writer, mut reader) = pipe(1024, 16);
/// std::thread::spawn(move || {
///     for a in 0..100u64 {
///         writer.write(a);
///     }
/// });
/// let trace = reader.take_trace(1_000);
/// assert_eq!(trace.len(), 100);
/// ```
pub fn pipe(capacity_words: usize, batch: usize) -> (PipeWriter, PipeReader) {
    assert!(batch > 0, "batch size must be positive");
    let slots = capacity_words.div_ceil(batch).max(1);
    let (tx, rx) = bounded(slots);
    (
        PipeWriter {
            tx,
            buf: Vec::with_capacity(batch),
            batch,
            closed: false,
        },
        PipeReader {
            rx,
            current: Vec::new(),
            pos: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_written_addresses_arrive_in_order() {
        let (mut w, mut r) = pipe(1 << 16, 64);
        let producer = std::thread::spawn(move || {
            for a in 0..10_000u64 {
                w.write(a);
            }
        });
        let trace = r.take_trace(20_000);
        producer.join().unwrap();
        assert_eq!(trace.len(), 10_000);
        assert!(trace
            .as_slice()
            .iter()
            .enumerate()
            .all(|(i, &a)| a == i as u64));
    }

    #[test]
    fn partial_batch_flushes_on_drop() {
        let (mut w, mut r) = pipe(1024, 4096);
        w.write_all(&[1, 2, 3]);
        drop(w);
        assert_eq!(r.next_addr(), Some(1));
        assert_eq!(r.next_addr(), Some(2));
        assert_eq!(r.next_addr(), Some(3));
        assert_eq!(r.next_addr(), None);
    }

    #[test]
    fn writer_detects_closed_reader_and_loss_is_explicit() {
        let (mut w, r) = pipe(1024, 4);
        w.write_all(&[1, 2, 3, 4]); // full batch: flushed while reader alive
        assert!(!w.is_closed());
        drop(r);
        // The next flush hits the closed pipe: the data is dropped (EPIPE
        // semantics) but the loss is observable, not silent.
        w.write_all(&[5, 6, 7, 8]);
        assert!(w.is_closed(), "flush into a dropped reader must latch");
        w.write(9);
        w.flush();
        assert!(w.is_closed());
    }

    #[test]
    fn drop_with_partial_batch_and_dead_reader_does_not_panic() {
        let (mut w, r) = pipe(1024, 4096);
        w.write_all(&[1, 2]);
        drop(r);
        drop(w); // Drop flushes into the closed pipe; must be a clean no-op.
    }

    #[test]
    fn bounded_pipe_applies_backpressure() {
        // A tiny pipe (2 batches of 2 words) must block the producer until
        // the consumer drains — verify the producer has NOT finished early.
        let (mut w, mut r) = pipe(4, 2);
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = done.clone();
        let producer = std::thread::spawn(move || {
            for a in 0..1000u64 {
                w.write(a);
            }
            done2.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !done.load(std::sync::atomic::Ordering::SeqCst),
            "producer should be blocked by the full pipe"
        );
        let trace = r.take_trace(2000);
        producer.join().unwrap();
        assert_eq!(trace.len(), 1000);
    }

    #[test]
    fn fill_spans_batches() {
        let (mut w, mut r) = pipe(1 << 12, 8);
        std::thread::spawn(move || {
            for a in 0..100u64 {
                w.write(a);
            }
        });
        let mut buf = Vec::new();
        assert_eq!(r.fill(&mut buf, 30), 30);
        assert_eq!(buf.len(), 30);
        assert_eq!(r.fill(&mut buf, 1000), 70);
        assert_eq!(buf, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn reader_survives_writer_dropping_midstream() {
        let (mut w, mut r) = pipe(64, 4);
        w.write_all(&[9, 8, 7, 6, 5]);
        drop(w);
        let t = r.take_trace(100);
        assert_eq!(t.as_slice(), &[9, 8, 7, 6, 5]);
    }
}

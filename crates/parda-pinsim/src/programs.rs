//! The synthetic kernel zoo.
//!
//! Each program models the data-access pattern of a well-known kernel at
//! word granularity (8-byte elements), laid out in disjoint address
//! regions. They are not numerically executed — only the address stream
//! matters for reuse-distance analysis — but the loop structures are the
//! real ones, so the locality signatures (tiling plateaus, streaming
//! sweeps, pointer-chase tails) are authentic.

use crate::TraceSink;
use parda_trace::Addr;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Word size in bytes for generated addresses.
const WORD: Addr = 8;

/// Disjoint base addresses for the data regions of each program.
const REGION_A: Addr = 0x1000_0000;
const REGION_B: Addr = 0x2000_0000;
const REGION_C: Addr = 0x3000_0000;

/// A program whose memory references can be replayed into a [`TraceSink`].
pub trait SyntheticProgram {
    /// Human-readable kernel name.
    fn name(&self) -> &'static str;

    /// Exact number of references `run` will emit.
    fn reference_count(&self) -> u64;

    /// Execute the kernel, emitting every data reference in program order.
    fn run(&mut self, sink: &mut dyn TraceSink);
}

/// Dense matrix multiply `C = A·B` over `n × n` matrices, optionally tiled.
///
/// The naïve i-j-k loop streams `B` column-wise (distance ≈ n²); tiling by
/// `block` keeps the working set at ~3·block² — the textbook locality
/// transformation, and a good smoke test for whether an analyzer's MRC
/// reflects tiling.
#[derive(Clone, Debug)]
pub struct MatMul {
    n: usize,
    block: Option<usize>,
}

impl MatMul {
    /// Naïve triple loop.
    pub fn naive(n: usize) -> Self {
        assert!(n > 0);
        Self { n, block: None }
    }

    /// Tiled with `block × block` tiles (`block` must divide `n`).
    pub fn blocked(n: usize, block: usize) -> Self {
        assert!(
            n > 0 && block > 0 && n.is_multiple_of(block),
            "block must divide n"
        );
        Self {
            n,
            block: Some(block),
        }
    }

    fn a(&self, i: usize, k: usize) -> Addr {
        REGION_A + ((i * self.n + k) as Addr) * WORD
    }

    fn b(&self, k: usize, j: usize) -> Addr {
        REGION_B + ((k * self.n + j) as Addr) * WORD
    }

    fn c(&self, i: usize, j: usize) -> Addr {
        REGION_C + ((i * self.n + j) as Addr) * WORD
    }
}

impl SyntheticProgram for MatMul {
    fn name(&self) -> &'static str {
        if self.block.is_some() {
            "matmul-blocked"
        } else {
            "matmul"
        }
    }

    fn reference_count(&self) -> u64 {
        // 3 references (A, B, C) per innermost iteration.
        3 * (self.n as u64).pow(3)
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let n = self.n;
        match self.block {
            None => {
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            sink.emit(self.a(i, k));
                            sink.emit(self.b(k, j));
                            sink.emit(self.c(i, j));
                        }
                    }
                }
            }
            Some(bs) => {
                for ii in (0..n).step_by(bs) {
                    for jj in (0..n).step_by(bs) {
                        for kk in (0..n).step_by(bs) {
                            for i in ii..ii + bs {
                                for j in jj..jj + bs {
                                    for k in kk..kk + bs {
                                        sink.emit(self.a(i, k));
                                        sink.emit(self.b(k, j));
                                        sink.emit(self.c(i, j));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// 5-point Jacobi stencil over an `n × n` grid for `iters` sweeps,
/// ping-ponging between two buffers — the classic HPC streaming-with-reuse
/// pattern (each row is reused across three consecutive row sweeps).
#[derive(Clone, Debug)]
pub struct Stencil2D {
    n: usize,
    iters: usize,
}

impl Stencil2D {
    /// `n × n` grid, `iters` sweeps.
    pub fn new(n: usize, iters: usize) -> Self {
        assert!(n >= 3 && iters > 0);
        Self { n, iters }
    }
}

impl SyntheticProgram for Stencil2D {
    fn name(&self) -> &'static str {
        "stencil2d"
    }

    fn reference_count(&self) -> u64 {
        // 5 loads + 1 store per interior point per sweep.
        6 * ((self.n - 2) as u64).pow(2) * self.iters as u64
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let n = self.n;
        for sweep in 0..self.iters {
            let (src, dst) = if sweep % 2 == 0 {
                (REGION_A, REGION_B)
            } else {
                (REGION_B, REGION_A)
            };
            let at = |base: Addr, i: usize, j: usize| base + ((i * n + j) as Addr) * WORD;
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    sink.emit(at(src, i, j));
                    sink.emit(at(src, i - 1, j));
                    sink.emit(at(src, i + 1, j));
                    sink.emit(at(src, i, j - 1));
                    sink.emit(at(src, i, j + 1));
                    sink.emit(at(dst, i, j));
                }
            }
        }
    }
}

/// Pointer chasing over a random cyclic permutation of `nodes` cells — the
/// mcf-style pattern: every access is a cache miss for any cache smaller
/// than the footprint, and reuse distances sit at exactly `nodes − 1` once
/// the cycle repeats.
#[derive(Clone, Debug)]
pub struct PointerChase {
    nodes: usize,
    steps: u64,
    seed: u64,
}

impl PointerChase {
    /// Chase `steps` pointers over a shuffled cycle of `nodes` cells.
    pub fn new(nodes: usize, steps: u64, seed: u64) -> Self {
        assert!(nodes > 0);
        Self { nodes, steps, seed }
    }
}

impl SyntheticProgram for PointerChase {
    fn name(&self) -> &'static str {
        "pointer-chase"
    }

    fn reference_count(&self) -> u64 {
        self.steps
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        // Build a single-cycle permutation (Sattolo's algorithm).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut next: Vec<usize> = (0..self.nodes).collect();
        for i in (1..self.nodes).rev() {
            let j = rng.gen_range(0..i);
            next.swap(i, j);
        }
        let mut cur = 0usize;
        for _ in 0..self.steps {
            sink.emit(REGION_A + (cur as Addr) * WORD);
            cur = next[cur];
        }
    }
}

/// Hash join: build a hash table over `build_rows`, then probe it with
/// `probe_rows` — sequential scan of the probe side against random hits in
/// the build side (the soplex/database-style mixed pattern).
#[derive(Clone, Debug)]
pub struct HashJoin {
    build_rows: usize,
    probe_rows: usize,
    seed: u64,
}

impl HashJoin {
    /// Join with the given table sizes.
    pub fn new(build_rows: usize, probe_rows: usize, seed: u64) -> Self {
        assert!(build_rows > 0);
        Self {
            build_rows,
            probe_rows,
            seed,
        }
    }
}

impl SyntheticProgram for HashJoin {
    fn name(&self) -> &'static str {
        "hash-join"
    }

    fn reference_count(&self) -> u64 {
        // Build: 1 read + 1 table write per row. Probe: 1 read + 1 lookup.
        2 * (self.build_rows as u64) + 2 * (self.probe_rows as u64)
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Build phase: stream the build relation, scatter into the table.
        for row in 0..self.build_rows {
            sink.emit(REGION_A + (row as Addr) * WORD);
            let slot = rng.gen_range(0..self.build_rows);
            sink.emit(REGION_B + (slot as Addr) * WORD);
        }
        // Probe phase: stream the probe relation, hit random table slots.
        for row in 0..self.probe_rows {
            sink.emit(REGION_C + (row as Addr) * WORD);
            let slot = rng.gen_range(0..self.build_rows);
            sink.emit(REGION_B + (slot as Addr) * WORD);
        }
    }
}

/// STREAM-triad-style kernel: `a[i] = b[i] + s·c[i]` over `n` elements for
/// `iters` passes — the lbm/milc class: pure streaming, reuse only across
/// whole passes.
#[derive(Clone, Debug)]
pub struct StreamTriad {
    n: usize,
    iters: usize,
}

impl StreamTriad {
    /// Vectors of `n` words, `iters` passes.
    pub fn new(n: usize, iters: usize) -> Self {
        assert!(n > 0 && iters > 0);
        Self { n, iters }
    }
}

impl SyntheticProgram for StreamTriad {
    fn name(&self) -> &'static str {
        "stream-triad"
    }

    fn reference_count(&self) -> u64 {
        3 * self.n as u64 * self.iters as u64
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        for _ in 0..self.iters {
            for i in 0..self.n {
                sink.emit(REGION_B + (i as Addr) * WORD);
                sink.emit(REGION_C + (i as Addr) * WORD);
                sink.emit(REGION_A + (i as Addr) * WORD);
            }
        }
    }
}

/// Bottom-up merge sort over `n` keys: log₂ n passes, each streaming the
/// full array between two buffers with doubling run lengths — medium
/// distances that double per pass.
#[derive(Clone, Debug)]
pub struct MergeSortScan {
    n: usize,
    seed: u64,
}

impl MergeSortScan {
    /// Sort `n` random keys.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 1);
        Self { n, seed }
    }
}

impl SyntheticProgram for MergeSortScan {
    fn name(&self) -> &'static str {
        "mergesort"
    }

    fn reference_count(&self) -> u64 {
        // Each pass reads n and writes n.
        let passes = (self.n as u64).next_power_of_two().trailing_zeros() as u64;
        2 * self.n as u64 * passes
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let n = self.n;
        let mut keys: Vec<u32> = (0..n as u32).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(self.seed));
        let mut src: Vec<u32> = keys;
        let mut dst: Vec<u32> = vec![0; n];
        let mut src_base = REGION_A;
        let mut dst_base = REGION_B;
        let mut width = 1usize;
        while width < n {
            let mut lo = 0usize;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let (mut i, mut j, mut out) = (lo, mid, lo);
                while i < mid || j < hi {
                    let take_left = j >= hi || (i < mid && src[i] <= src[j]);
                    let idx = if take_left { &mut i } else { &mut j };
                    sink.emit(src_base + (*idx as Addr) * WORD);
                    dst[out] = src[*idx];
                    sink.emit(dst_base + (out as Addr) * WORD);
                    *idx += 1;
                    out += 1;
                }
                lo = hi;
            }
            std::mem::swap(&mut src, &mut dst);
            std::mem::swap(&mut src_base, &mut dst_base);
            width *= 2;
        }
    }
}

/// Iterative radix-2 FFT access pattern over `n` complex points
/// (`n` a power of two): a bit-reversal permutation pass followed by
/// log₂ n butterfly stages whose stride doubles each stage — reuse
/// distances that sweep the whole scale from 1 to n.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
}

impl Fft {
    /// FFT over `n` points (power of two, ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "FFT size must be a power of two"
        );
        Self { n }
    }
}

impl SyntheticProgram for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn reference_count(&self) -> u64 {
        let n = self.n as u64;
        // Bit-reversal: 2 refs per swapped pair (n/2 pairs upper bound is
        // exact only for full swaps; we emit 2 refs per i < j pair).
        let swaps: u64 = (0..self.n)
            .filter(|&i| {
                let j = (i as u64).reverse_bits() >> (64 - self.n.trailing_zeros());
                (j as usize) > i
            })
            .count() as u64;
        // Butterflies: log2(n) stages × n/2 butterflies × 4 refs.
        2 * swaps + n.trailing_zeros() as u64 * (n / 2) * 4
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let n = self.n;
        let bits = n.trailing_zeros();
        let at = |i: usize| REGION_A + (i as Addr) * 2 * WORD; // complex = 2 words
                                                               // Bit-reversal permutation.
        for i in 0..n {
            let j = ((i as u64).reverse_bits() >> (64 - bits)) as usize;
            if j > i {
                sink.emit(at(i));
                sink.emit(at(j));
            }
        }
        // Butterfly stages.
        let mut half = 1usize;
        while half < n {
            let step = half * 2;
            for base in (0..n).step_by(step) {
                for k in 0..half {
                    let even = base + k;
                    let odd = base + k + half;
                    sink.emit(at(odd)); // load twiddled operand
                    sink.emit(at(even)); // load
                    sink.emit(at(even)); // store
                    sink.emit(at(odd)); // store
                }
            }
            half = step;
        }
    }
}

/// Breadth-first search over a random graph in CSR form: sequential sweeps
/// of the row-pointer array, data-dependent gathers into the adjacency and
/// visited arrays — the astar/gobmk-style irregular pattern.
#[derive(Clone, Debug)]
pub struct BfsTraversal {
    nodes: usize,
    avg_degree: usize,
    seed: u64,
}

impl BfsTraversal {
    /// Graph with `nodes` vertices and ~`avg_degree` edges per vertex.
    pub fn new(nodes: usize, avg_degree: usize, seed: u64) -> Self {
        assert!(nodes > 0 && avg_degree > 0);
        Self {
            nodes,
            avg_degree,
            seed,
        }
    }

    fn build(&self) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut row_ptr = Vec::with_capacity(self.nodes + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for v in 0..self.nodes {
            let degree = rng.gen_range(1..=self.avg_degree * 2);
            for _ in 0..degree {
                col_idx.push(rng.gen_range(0..self.nodes));
            }
            // Chain v → v+1 so the BFS reaches every vertex.
            col_idx.push((v + 1) % self.nodes);
            row_ptr.push(col_idx.len());
        }
        (row_ptr, col_idx)
    }
}

impl SyntheticProgram for BfsTraversal {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn reference_count(&self) -> u64 {
        // Per visited vertex: row_ptr load + per-edge (col_idx load +
        // visited-check load); plus a visited store per vertex.
        let (row_ptr, col_idx) = self.build();
        let _ = row_ptr;
        (self.nodes + col_idx.len() * 2 + self.nodes) as u64
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let (row_ptr, col_idx) = self.build();
        let row_addr = |v: usize| REGION_A + (v as Addr) * WORD;
        let col_addr = |e: usize| REGION_B + (e as Addr) * WORD;
        let visited_addr = |v: usize| REGION_C + (v as Addr) * WORD;

        let mut visited = vec![false; self.nodes];
        let mut queue = std::collections::VecDeque::new();
        visited[0] = true;
        queue.push_back(0usize);
        sink.emit(visited_addr(0)); // mark the root
        while let Some(v) = queue.pop_front() {
            sink.emit(row_addr(v));
            #[allow(clippy::needless_range_loop)]
            for e in row_ptr[v]..row_ptr[v + 1] {
                sink.emit(col_addr(e));
                let w = col_idx[e];
                sink.emit(visited_addr(w));
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
        // Account remaining refs so the count stays exact even if the graph
        // were disconnected (it is not, thanks to the chain edges): the
        // visited store for each non-root vertex.
        for v in 1..self.nodes {
            sink.emit(visited_addr(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_trace;
    use parda_core::seq::analyze_sequential;
    use parda_tree::SplayTree;

    #[test]
    fn reference_counts_are_exact() {
        fn check<P: SyntheticProgram + Clone>(p: P) {
            let expect = p.reference_count();
            let trace = collect_trace(p.clone());
            assert_eq!(trace.len() as u64, expect, "{}", p.name());
        }
        check(MatMul::naive(8));
        check(MatMul::blocked(8, 4));
        check(Stencil2D::new(10, 3));
        check(PointerChase::new(64, 1_000, 1));
        check(HashJoin::new(100, 300, 2));
        check(StreamTriad::new(128, 4));
        check(MergeSortScan::new(100, 3));
    }

    #[test]
    fn blocked_matmul_has_better_locality_than_naive() {
        let naive = collect_trace(MatMul::naive(16));
        let blocked = collect_trace(MatMul::blocked(16, 4));
        assert_eq!(naive.len(), blocked.len(), "same work");
        assert_eq!(naive.distinct(), blocked.distinct(), "same footprint");
        let hn = analyze_sequential::<SplayTree>(naive.as_slice(), None);
        let hb = analyze_sequential::<SplayTree>(blocked.as_slice(), None);
        // A cache holding ~3 tiles: the tiled version must hit far more.
        let cache = 3 * 4 * 4;
        assert!(
            hb.hit_count(cache) > hn.hit_count(cache),
            "blocked {} vs naive {} hits at {cache} lines",
            hb.hit_count(cache),
            hn.hit_count(cache)
        );
    }

    #[test]
    fn pointer_chase_is_cache_adversarial() {
        let trace = collect_trace(PointerChase::new(100, 1_000, 7));
        assert_eq!(trace.distinct(), 100, "single cycle touches every node");
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        // After the first lap every access has distance exactly nodes-1.
        assert_eq!(hist.count(99), 900);
        assert_eq!(hist.infinite(), 100);
        // Any cache smaller than the footprint never hits.
        assert_eq!(hist.hit_count(99), 0);
    }

    #[test]
    fn stream_triad_reuses_only_across_passes() {
        let trace = collect_trace(StreamTriad::new(100, 3));
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        assert_eq!(hist.infinite(), 300, "3 vectors × 100 words");
        // Reuse happens exactly one full pass later: distance 299.
        assert_eq!(hist.count(299), 600);
    }

    #[test]
    fn stencil_rows_are_reused_within_a_sweep() {
        let trace = collect_trace(Stencil2D::new(16, 1));
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        // Grid row reuse gives strong short-distance mass: the same source
        // cell is read by up to 5 neighbouring stencil applications.
        let short_hits = hist.hit_count(64);
        assert!(
            short_hits as f64 / hist.total() as f64 > 0.4,
            "stencil should reuse rows: {} of {}",
            short_hits,
            hist.total()
        );
    }

    #[test]
    fn mergesort_distances_double_per_pass() {
        let trace = collect_trace(MergeSortScan::new(256, 5));
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        // Reuse of the ping-pong buffers happens at ~2n distances; just
        // check the analyzer sees substantial mass beyond one array length.
        assert!(hist.total() > 0);
        let far = hist.miss_count(256) - hist.infinite();
        assert!(far > 0, "expected reuse beyond one buffer length");
    }

    #[test]
    fn fft_and_bfs_reference_counts_are_exact() {
        for n in [8usize, 64, 256] {
            let p = Fft::new(n);
            let expect = p.reference_count();
            assert_eq!(collect_trace(p).len() as u64, expect, "fft n={n}");
        }
        for (nodes, deg) in [(50usize, 2usize), (200, 4)] {
            let p = BfsTraversal::new(nodes, deg, 7);
            let expect = p.reference_count();
            assert_eq!(
                collect_trace(p).len() as u64,
                expect,
                "bfs nodes={nodes} deg={deg}"
            );
        }
    }

    #[test]
    fn fft_touches_every_point_and_spans_distances() {
        let trace = collect_trace(Fft::new(256));
        assert_eq!(trace.distinct(), 256);
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        // Butterfly strides double per stage: both short and ~n-scale
        // distances must be present.
        assert!(
            hist.count(0) > 0 || hist.count(1) > 0,
            "short reuse missing"
        );
        assert!(
            (128..=512).any(|d| hist.count(d) > 0),
            "long-stride reuse missing"
        );
    }

    #[test]
    fn bfs_visits_every_vertex() {
        let trace = collect_trace(BfsTraversal::new(300, 3, 1));
        let hist = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        // Footprint = row_ptr entries touched + distinct edges + visited
        // array: at least one address per vertex in each of the three
        // regions' roles.
        assert!(trace.distinct() >= 600, "distinct {}", trace.distinct());
        assert!(hist.total() == trace.len() as u64);
    }

    #[test]
    fn programs_are_deterministic() {
        let a = collect_trace(HashJoin::new(50, 100, 9));
        let b = collect_trace(HashJoin::new(50, 100, 9));
        assert_eq!(a, b);
        let c = collect_trace(HashJoin::new(50, 100, 10));
        assert_ne!(a, c, "different seed, different scatter");
    }
}

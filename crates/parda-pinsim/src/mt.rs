//! Multi-threaded synthetic kernels.
//!
//! The single-threaded zoo in [`crate::programs`] models one instrumented
//! process; these kernels model a *parallel* program hammering a shared
//! cache: every reference is emitted with the thread that issued it, in the
//! exact global interleaving the (deterministic, lockstep) execution
//! produces. Threads share one address space — the same address showing up
//! under two thread IDs is true sharing, exactly what the concurrent
//! analysis in `parda_core::concurrent` needs to see.
//!
//! Two kernels, each with a sharing knob:
//!
//! * [`MtStencil2D`] — row-banded 5-point Jacobi. Band-boundary halo rows
//!   are read by both neighbouring threads (true sharing).
//! * [`MtMatMul`] — `C = A·B` with the rows of `C` banded across threads;
//!   every thread streams the whole of `B` (true sharing).
//!
//! Both kernels also bump a per-thread progress counter. With
//! `false_sharing = true` the counters are *adjacent words*, so a
//! line-granular analysis (e.g. `parda-trace`'s cache-line transform) sees
//! the classic false-sharing pattern of independent data on one line; with
//! `false_sharing = false` they are padded a line apart.

use crate::programs::SyntheticProgram;
use crate::TraceSink;
use parda_trace::{Addr, ThreadedTrace, Tid, Trace};

/// Word size in bytes for generated addresses.
const WORD: Addr = 8;

/// Regions match the single-threaded zoo's layout; the counters get their
/// own region so they never alias kernel data.
const REGION_A: Addr = 0x1000_0000;
const REGION_B: Addr = 0x2000_0000;
const REGION_C: Addr = 0x3000_0000;
const REGION_COUNTERS: Addr = 0x4000_0000;

/// Padding between per-thread counters when `false_sharing` is off: one
/// 64-byte cache line of words.
const COUNTER_PAD_WORDS: Addr = 8;

/// Receiver of a multi-threaded program's memory references: one call per
/// reference, in global interleaved order, tagged with the issuing thread.
pub trait MtSink {
    /// Called once per data memory reference, in interleaved order.
    fn emit(&mut self, tid: Tid, addr: Addr);
}

/// Collects tagged references into a [`ThreadedTrace`].
#[derive(Default)]
pub struct MtVecSink {
    trace: ThreadedTrace,
}

impl MtVecSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume into the collected [`ThreadedTrace`].
    pub fn into_trace(self) -> ThreadedTrace {
        self.trace
    }
}

impl MtSink for MtVecSink {
    fn emit(&mut self, tid: Tid, addr: Addr) {
        self.trace.push(tid, addr);
    }
}

/// A deterministic multi-threaded program: emits every thread's references
/// in a fixed lockstep interleaving.
pub trait MtProgram {
    /// Human-readable kernel name.
    fn name(&self) -> &'static str;

    /// Number of threads the kernel runs.
    fn threads(&self) -> usize;

    /// Exact number of references `run` will emit, all threads combined.
    fn reference_count(&self) -> u64;

    /// Execute the kernel, emitting every reference in interleaved order.
    fn run(&mut self, sink: &mut dyn MtSink);
}

/// Everything a multi-threaded kernel run produces: the exact global
/// interleaving plus each thread's private stream (derived from it, so the
/// two views are consistent by construction).
pub struct MtTrace {
    /// The shared-cache reference stream, thread-tagged.
    pub interleaved: ThreadedTrace,
    /// Per-thread program-order streams, sorted by thread ID.
    pub per_thread: Vec<(Tid, Trace)>,
}

/// Run a multi-threaded program to completion, collecting both views.
pub fn collect_mt_trace<P: MtProgram>(mut program: P) -> MtTrace {
    let mut sink = MtVecSink::new();
    program.run(&mut sink);
    let interleaved = sink.into_trace();
    let per_thread = interleaved.per_thread();
    MtTrace {
        interleaved,
        per_thread,
    }
}

/// Per-thread progress counter address: adjacent words under
/// `false_sharing`, a cache line apart otherwise.
fn counter_addr(tid: usize, false_sharing: bool) -> Addr {
    let stride = if false_sharing { 1 } else { COUNTER_PAD_WORDS };
    REGION_COUNTERS + (tid as Addr) * stride * WORD
}

/// Contiguous band `[start, start+len)` for worker `t` of `threads` over
/// `total` items (first `total % threads` bands get one extra).
fn band(total: usize, threads: usize, t: usize) -> (usize, usize) {
    let base = total / threads;
    let extra = total % threads;
    let len = base + usize::from(t < extra);
    let start = t * base + t.min(extra);
    (start, len)
}

/// Row-banded parallel 5-point Jacobi stencil (see [`crate::Stencil2D`]
/// for the sequential pattern). Interior rows are split into contiguous
/// bands, one per thread; threads proceed point-by-point in lockstep, and
/// the reads of rows `i±1` at band boundaries touch the neighbouring
/// thread's rows — inherent true sharing.
#[derive(Clone, Debug)]
pub struct MtStencil2D {
    n: usize,
    iters: usize,
    threads: usize,
    false_sharing: bool,
}

impl MtStencil2D {
    /// `n × n` grid, `iters` sweeps, `threads` row bands.
    pub fn new(n: usize, iters: usize, threads: usize, false_sharing: bool) -> Self {
        assert!(n >= 3 && iters > 0, "grid must have interior points");
        assert!(
            threads >= 1 && threads <= n - 2,
            "need at least one interior row per thread"
        );
        Self {
            n,
            iters,
            threads,
            false_sharing,
        }
    }
}

impl MtProgram for MtStencil2D {
    fn name(&self) -> &'static str {
        "mt-stencil2d"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn reference_count(&self) -> u64 {
        // 5 loads + 1 store + 1 counter bump per interior point per sweep.
        7 * ((self.n - 2) as u64).pow(2) * self.iters as u64
    }

    fn run(&mut self, sink: &mut dyn MtSink) {
        let n = self.n;
        let interior = n - 2;
        let bands: Vec<(usize, usize)> = (0..self.threads)
            .map(|t| band(interior, self.threads, t))
            .collect();
        let max_points = bands.iter().map(|&(_, len)| len * interior).max().unwrap();
        for sweep in 0..self.iters {
            let (src, dst) = if sweep % 2 == 0 {
                (REGION_A, REGION_B)
            } else {
                (REGION_B, REGION_A)
            };
            let at = |base: Addr, i: usize, j: usize| base + ((i * n + j) as Addr) * WORD;
            // Lockstep: at each step every still-active thread applies the
            // stencil to its next point, so the interleaving is exactly
            // round-robin at point granularity.
            for p in 0..max_points {
                for (t, &(start, len)) in bands.iter().enumerate() {
                    if p >= len * interior {
                        continue;
                    }
                    let i = 1 + start + p / interior;
                    let j = 1 + p % interior;
                    let tid = t as Tid;
                    sink.emit(tid, at(src, i, j));
                    sink.emit(tid, at(src, i - 1, j));
                    sink.emit(tid, at(src, i + 1, j));
                    sink.emit(tid, at(src, i, j - 1));
                    sink.emit(tid, at(src, i, j + 1));
                    sink.emit(tid, at(dst, i, j));
                    sink.emit(tid, counter_addr(t, self.false_sharing));
                }
            }
        }
    }
}

/// Parallel dense matrix multiply `C = A·B` with the rows of `C` banded
/// across threads. Every thread streams all of `B` (true sharing of the
/// full `n²` operand); `A` rows and `C` rows are thread-private.
#[derive(Clone, Debug)]
pub struct MtMatMul {
    n: usize,
    threads: usize,
    false_sharing: bool,
}

impl MtMatMul {
    /// `n × n` matrices over `threads` row bands.
    pub fn new(n: usize, threads: usize, false_sharing: bool) -> Self {
        assert!(n > 0, "empty matrix");
        assert!(
            threads >= 1 && threads <= n,
            "need at least one row per thread"
        );
        Self {
            n,
            threads,
            false_sharing,
        }
    }

    fn a(&self, i: usize, k: usize) -> Addr {
        REGION_A + ((i * self.n + k) as Addr) * WORD
    }

    fn b(&self, k: usize, j: usize) -> Addr {
        REGION_B + ((k * self.n + j) as Addr) * WORD
    }

    fn c(&self, i: usize, j: usize) -> Addr {
        REGION_C + ((i * self.n + j) as Addr) * WORD
    }
}

impl MtProgram for MtMatMul {
    fn name(&self) -> &'static str {
        "mt-matmul"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn reference_count(&self) -> u64 {
        // 3 refs per inner iteration plus one counter bump per (i, j).
        let n = self.n as u64;
        3 * n.pow(3) + n.pow(2)
    }

    fn run(&mut self, sink: &mut dyn MtSink) {
        let n = self.n;
        let bands: Vec<(usize, usize)> = (0..self.threads)
            .map(|t| band(n, self.threads, t))
            .collect();
        let max_steps = bands.iter().map(|&(_, len)| len * n * n).max().unwrap();
        // Lockstep at inner-iteration granularity: step s of thread t is
        // its (i, j, k) = (s / n², (s / n) % n, s % n) iteration.
        for s in 0..max_steps {
            for (t, &(start, len)) in bands.iter().enumerate() {
                if s >= len * n * n {
                    continue;
                }
                let i = start + s / (n * n);
                let j = (s / n) % n;
                let k = s % n;
                let tid = t as Tid;
                sink.emit(tid, self.a(i, k));
                sink.emit(tid, self.b(k, j));
                sink.emit(tid, self.c(i, j));
                if k == n - 1 {
                    sink.emit(tid, counter_addr(t, self.false_sharing));
                }
            }
        }
    }
}

/// Adapter running a single-threaded [`SyntheticProgram`] as thread `tid`
/// of a multi-threaded sink — used to compose co-running solo kernels into
/// a tagged trace.
pub struct TaggedSink<'a> {
    tid: Tid,
    inner: &'a mut dyn MtSink,
}

impl<'a> TaggedSink<'a> {
    /// Tag every reference of the wrapped sink with `tid`.
    pub fn new(tid: Tid, inner: &'a mut dyn MtSink) -> Self {
        Self { tid, inner }
    }
}

impl TraceSink for TaggedSink<'_> {
    fn emit(&mut self, addr: Addr) {
        self.inner.emit(self.tid, addr);
    }
}

/// Run a single-threaded program, collecting its references as thread
/// `tid` into a fresh [`ThreadedTrace`].
pub fn collect_tagged<P: SyntheticProgram>(mut program: P, tid: Tid) -> ThreadedTrace {
    let mut sink = MtVecSink::new();
    {
        let mut tagged = TaggedSink::new(tid, &mut sink);
        program.run(&mut tagged);
    }
    sink.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn shared_addrs(t: &ThreadedTrace) -> usize {
        let mut owners: HashMap<Addr, (Tid, bool)> = HashMap::new();
        for (&tid, &addr) in t.tids().iter().zip(t.addrs()) {
            owners
                .entry(addr)
                .and_modify(|(first, shared)| *shared |= *first != tid)
                .or_insert((tid, false));
        }
        owners.values().filter(|(_, shared)| *shared).count()
    }

    #[test]
    fn reference_counts_are_exact() {
        for threads in [1usize, 2, 3] {
            let p = MtStencil2D::new(12, 2, threads, false);
            let expect = p.reference_count();
            let got = collect_mt_trace(p);
            assert_eq!(got.interleaved.len() as u64, expect, "stencil t={threads}");
            let per_thread_total: usize = got.per_thread.iter().map(|(_, t)| t.len()).sum();
            assert_eq!(per_thread_total as u64, expect);

            let p = MtMatMul::new(8, threads, false);
            let expect = p.reference_count();
            let got = collect_mt_trace(p);
            assert_eq!(got.interleaved.len() as u64, expect, "matmul t={threads}");
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = collect_mt_trace(MtStencil2D::new(10, 2, 3, true));
        let b = collect_mt_trace(MtStencil2D::new(10, 2, 3, true));
        assert_eq!(a.interleaved, b.interleaved);
    }

    #[test]
    fn stencil_halo_rows_are_truly_shared() {
        // Multi-band stencil: boundary rows read by both neighbours.
        let mt = collect_mt_trace(MtStencil2D::new(12, 1, 3, false));
        assert!(shared_addrs(&mt.interleaved) > 0, "halo sharing missing");
        // One band: no neighbour, no sharing.
        let solo = collect_mt_trace(MtStencil2D::new(12, 1, 1, false));
        assert_eq!(shared_addrs(&solo.interleaved), 0);
    }

    #[test]
    fn matmul_shares_the_b_operand() {
        let n = 8;
        let mt = collect_mt_trace(MtMatMul::new(n, 2, false));
        // Every word of B is read by both threads.
        assert!(shared_addrs(&mt.interleaved) >= n * n);
    }

    #[test]
    fn false_sharing_knob_packs_counters_adjacent() {
        let packed = collect_mt_trace(MtStencil2D::new(10, 1, 2, true));
        let padded = collect_mt_trace(MtStencil2D::new(10, 1, 2, false));
        let counters = |t: &ThreadedTrace| -> Vec<Addr> {
            let mut c: Vec<Addr> = t
                .addrs()
                .iter()
                .copied()
                .filter(|&a| a >= REGION_COUNTERS)
                .collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        let packed = counters(&packed.interleaved);
        let padded = counters(&padded.interleaved);
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[1] - packed[0], WORD, "adjacent words");
        assert_eq!(
            padded[1] - padded[0],
            COUNTER_PAD_WORDS * WORD,
            "a line apart"
        );
    }

    #[test]
    fn per_thread_split_preserves_program_order() {
        let mt = collect_mt_trace(MtMatMul::new(6, 3, false));
        assert_eq!(mt.per_thread.len(), 3);
        // Thread 0's solo stream must equal a 1-thread run over its band:
        // rows 0..2 of a 6×6 matmul.
        let (tid, solo) = &mt.per_thread[0];
        assert_eq!(*tid, 0);
        let reference = collect_mt_trace(MtMatMul::new(6, 1, false));
        let expect: Vec<Addr> = reference.interleaved.addrs()[..solo.len()].to_vec();
        assert_eq!(solo.as_slice(), expect.as_slice());
    }

    #[test]
    fn tagged_sink_wraps_single_threaded_programs() {
        let t = collect_tagged(crate::StreamTriad::new(50, 1), 4);
        assert_eq!(t.len(), 150);
        assert!(t.tids().iter().all(|&tid| tid == 4));
    }
}

//! The tracing front-end: a stand-in for Pin.
//!
//! The paper's framework (Figure 3) runs each SPEC benchmark under Pin,
//! which emits every memory reference into a Linux pipe feeding the
//! analyzer. Pin and the SPEC binaries are unavailable here, so this crate
//! provides *synthetic instrumented programs*: small kernels with
//! well-understood memory behaviour whose data accesses are emitted through
//! the same [`TraceSink`] interface an instrumentation tool would use.
//!
//! * [`programs`] — the kernel zoo: dense matrix multiply (naïve and
//!   blocked), a 2-D stencil, pointer chasing over a shuffled cycle, a hash
//!   join, a streaming triad, and a merge-sort access pattern.
//! * [`Instrumented`] — wraps a sink and counts references, standing in for
//!   the instrumentation layer itself.
//! * [`run_through_pipe`] — executes a program on a producer thread writing
//!   into a bounded [`parda_comm::pipe()`], returning the reader end exactly
//!   like the paper's pipe between Pin and MPI rank 0.

pub mod mt;
pub mod programs;

pub use mt::{
    collect_mt_trace, collect_tagged, MtMatMul, MtProgram, MtSink, MtStencil2D, MtTrace, MtVecSink,
    TaggedSink,
};
pub use programs::{
    BfsTraversal, Fft, HashJoin, MatMul, MergeSortScan, PointerChase, Stencil2D, StreamTriad,
    SyntheticProgram,
};

use parda_comm::{pipe, PipeReader};
use parda_trace::{Addr, Trace};

/// Receiver of an instrumented program's memory references.
pub trait TraceSink {
    /// Called once per data memory reference, in program order.
    fn emit(&mut self, addr: Addr);
}

/// Collects references into an in-memory [`Trace`].
#[derive(Default)]
pub struct VecSink {
    addrs: Vec<Addr>,
}

impl VecSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume into a [`Trace`].
    pub fn into_trace(self) -> Trace {
        Trace::from_vec(self.addrs)
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, addr: Addr) {
        self.addrs.push(addr);
    }
}

impl TraceSink for parda_comm::PipeWriter {
    fn emit(&mut self, addr: Addr) {
        self.write(addr);
    }
}

/// The instrumentation layer: forwards references to an inner sink while
/// counting them (Pin's dynamic reference counter).
pub struct Instrumented<S: TraceSink> {
    inner: S,
    count: u64,
}

impl<S: TraceSink> Instrumented<S> {
    /// Wrap a sink.
    pub fn new(inner: S) -> Self {
        Self { inner, count: 0 }
    }

    /// References seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Unwrap, returning `(inner_sink, reference_count)`.
    pub fn into_inner(self) -> (S, u64) {
        (self.inner, self.count)
    }
}

impl<S: TraceSink> TraceSink for Instrumented<S> {
    fn emit(&mut self, addr: Addr) {
        self.count += 1;
        self.inner.emit(addr);
    }
}

/// Run a program to completion, collecting its full trace in memory.
pub fn collect_trace<P: SyntheticProgram>(mut program: P) -> Trace {
    let mut sink = VecSink::new();
    program.run(&mut sink);
    sink.into_trace()
}

/// Execute `program` on a freshly spawned producer thread, streaming its
/// references through a bounded pipe of `pipe_words` addresses — the
/// paper's Pin → pipe → analyzer topology. The returned reader is an
/// [`parda_trace::AddressStream`] suitable for the multi-phase analyzer.
pub fn run_through_pipe<P>(program: P, pipe_words: usize) -> PipeReader
where
    P: SyntheticProgram + Send + 'static,
{
    let (mut writer, reader) = pipe(pipe_words, parda_comm::pipe::DEFAULT_BATCH);
    std::thread::spawn(move || {
        let mut program = program;
        let mut instrumented = Instrumented::new(&mut writer as &mut dyn TraceSink);
        program.run(&mut instrumented);
    });
    reader
}

impl TraceSink for &mut dyn TraceSink {
    fn emit(&mut self, addr: Addr) {
        (**self).emit(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_trace::AddressStream;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        for a in [3u64, 1, 2] {
            sink.emit(a);
        }
        assert_eq!(sink.into_trace().as_slice(), &[3, 1, 2]);
    }

    #[test]
    fn instrumented_counts_references() {
        let mut inst = Instrumented::new(VecSink::new());
        for a in 0..100u64 {
            inst.emit(a);
        }
        assert_eq!(inst.count(), 100);
        let (sink, n) = inst.into_inner();
        assert_eq!(n, 100);
        assert_eq!(sink.into_trace().len(), 100);
    }

    #[test]
    fn pipe_topology_delivers_whole_trace() {
        let program = StreamTriad::new(1_000, 2);
        let direct = collect_trace(program.clone());
        let mut reader = run_through_pipe(program, 1 << 12);
        let piped = reader.take_trace(direct.len() + 1);
        assert_eq!(piped, direct, "pipe must not reorder or drop references");
    }
}

//! The address → last-access-timestamp table (`H` in the paper's
//! Algorithms 1, 3, 4 and 7).

use crate::map::RobinHoodMap;

/// The hash table `H` of the PARDA algorithms: maps a data address to the
/// timestamp of its most recent access.
///
/// A thin domain wrapper over [`RobinHoodMap`] so the analysis engines in
/// `parda-core` read like the paper's pseudocode (`H(z)`, `H(z) ← t`,
/// `H(z) ← ∅`).
///
/// # Examples
///
/// ```
/// use parda_hash::LastAccessTable;
///
/// let mut table = LastAccessTable::new();
/// assert_eq!(table.last_access(0x40), None);       // H(z) = ∅
/// table.record(0x40, 9);                           // H(z) ← 9
/// assert_eq!(table.last_access(0x40), Some(9));
/// assert_eq!(table.forget(0x40), Some(9));         // H(z) ← ∅
/// ```
#[derive(Clone, Debug, Default)]
pub struct LastAccessTable {
    map: RobinHoodMap<u64, u64>,
}

impl LastAccessTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self {
            map: RobinHoodMap::new(),
        }
    }

    /// Create an empty table sized for `capacity` distinct addresses.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: RobinHoodMap::with_capacity(capacity),
        }
    }

    /// `H(z)`: timestamp of the most recent access to `addr`, if any.
    #[inline]
    pub fn last_access(&self, addr: u64) -> Option<u64> {
        self.map.get(addr).copied()
    }

    /// Hint the cache that `addr`'s probe slots are about to be touched
    /// (see [`RobinHoodMap::prefetch`]). The batched engine calls this for a
    /// whole batch of upcoming addresses before probing any of them.
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        self.map.prefetch(addr);
    }

    /// `H(z) ← t`: record that `addr` was accessed at time `timestamp`.
    /// Returns the previous timestamp if the address was known.
    #[inline]
    pub fn record(&mut self, addr: u64, timestamp: u64) -> Option<u64> {
        self.map.insert(addr, timestamp)
    }

    /// `H(z) ← ∅`: remove `addr` from the table (bounded-analysis eviction
    /// and the space-optimized infinity processing both need this).
    #[inline]
    pub fn forget(&mut self, addr: u64) -> Option<u64> {
        self.map.remove(addr)
    }

    /// Number of distinct addresses currently tracked (`|H|` in Algorithm 7).
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no address is tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Remove every entry, keeping allocations for reuse across phases.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate over `(addr, timestamp)` pairs in unspecified order — used by
    /// the multi-phase reduction (paper Algorithm 6), which ships the whole
    /// table to the merging rank.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(k, v)| (k, *v))
    }

    /// Drain all `(addr, timestamp)` pairs.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.drain()
    }
}

impl FromIterator<(u64, u64)> for LastAccessTable {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut table = Self::new();
        for (addr, ts) in iter {
            table.record(addr, ts);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut t = LastAccessTable::new();
        assert!(t.is_empty());
        assert_eq!(t.record(10, 0), None);
        assert_eq!(t.record(10, 5), Some(0));
        assert_eq!(t.last_access(10), Some(5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn forget_removes() {
        let mut t = LastAccessTable::new();
        t.record(1, 1);
        t.record(2, 2);
        assert_eq!(t.forget(1), Some(1));
        assert_eq!(t.forget(1), None);
        assert_eq!(t.last_access(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_iter_takes_last_write() {
        let t: LastAccessTable = vec![(1u64, 1u64), (2, 2), (1, 9)].into_iter().collect();
        assert_eq!(t.last_access(1), Some(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drain_empties_table() {
        let mut t = LastAccessTable::new();
        for i in 0..10u64 {
            t.record(i, i + 100);
        }
        let mut pairs: Vec<_> = t.drain().collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (0, 100));
        assert!(t.is_empty());
    }
}

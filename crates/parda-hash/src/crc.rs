//! CRC32C (Castagnoli) — the checksum guarding trace-file frames.
//!
//! Format v2.1 stamps every frame payload (and the footer index) with a
//! CRC32C so a flipped bit or a truncated write is detected before the
//! decoder ever trusts the bytes. The Castagnoli polynomial is chosen over
//! CRC32 (IEEE) for its better error-detection properties on short bursts;
//! it is the same checksum used by iSCSI, ext4 and Snappy framing.
//!
//! The implementation is pure software slice-by-8: eight 256-entry tables
//! built at compile time, processing eight input bytes per iteration. That
//! keeps the workspace free of target-feature detection while still running
//! at a few GB/s — far faster than the decode work it protects.

/// Reversed Castagnoli polynomial (0x1EDC6F41 bit-reflected).
const POLY: u32 = 0x82F6_3B78;

const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC32C of `data` (initial value all-ones, final inversion — the standard
/// Castagnoli convention, matching `crc32c(3)` and hardware `crc32` output).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32c;

    /// Bitwise reference implementation, for cross-checking the tables.
    fn crc32c_bitwise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ super::POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn slice_by_8_matches_bitwise_on_all_lengths() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let clean = crc32c(&data);
        let mut flipped = data.clone();
        flipped[1234] ^= 0x10;
        assert_ne!(crc32c(&flipped), clean);
    }
}

//! A fast, non-cryptographic hasher in the style of rustc's `FxHasher`.
//!
//! Reuse-distance analysis performs one hash-table lookup and one update per
//! trace reference, so hashing sits squarely on the hot path. SipHash (the
//! `std` default) costs several times more than a multiply for 8-byte keys;
//! the Fx construction (xor + rotate + multiply with a golden-ratio-derived
//! odd constant) is the standard answer when HashDoS resistance is not a
//! concern — which it is not for offline trace analysis.

use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / phi, forced odd. The classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const ROTATE: u32 = 26;

/// Hash a single `u64` with one round of the Fx mix.
///
/// This is the function used by [`crate::RobinHoodMap`] on its fixed-width
/// keys; it is exposed so other crates can hash addresses consistently.
#[inline]
pub fn fx_hash_u64(value: u64) -> u64 {
    (value.rotate_left(ROTATE) ^ value).wrapping_mul(SEED)
}

/// A streaming [`Hasher`] applying the Fx mix per word.
///
/// Equivalent in spirit to `rustc_hash::FxHasher`; implemented here because
/// the workspace builds all substrates from scratch.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche round: the plain Fx state leaves low bits weak,
        // which hurts power-of-two-sized open tables.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^= h >> 29;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable with `std` collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&"parda"), hash_of(&"parda"));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let hashes: HashSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn fx_hash_u64_spreads_low_bits() {
        // Addresses are typically 8-byte aligned; the low 3 bits of the input
        // are constant. The output's low bits must still vary.
        // 1000 keys into 2^16 buckets: an ideal hash keeps ~992 distinct
        // (birthday bound), so 950 leaves slack without accepting clustering.
        let low_bits: HashSet<u64> = (0u64..1_000)
            .map(|i| fx_hash_u64(i << 3) & 0xffff)
            .collect();
        assert!(
            low_bits.len() > 950,
            "low 16 output bits too clustered: {} distinct",
            low_bits.len()
        );
    }

    #[test]
    fn streaming_matches_padding_rules() {
        // 7-byte input hashes as one zero-padded word; different from the
        // 8-byte input that has an explicit non-zero final byte.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_std_hashmap_hasher() {
        let mut map: crate::FxHashMap<u64, u64> = crate::FxHashMap::default();
        for i in 0..1_000u64 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get(&500), Some(&1000));
    }
}

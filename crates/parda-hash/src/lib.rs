//! Hashing substrate for PARDA.
//!
//! The reference PARDA implementation uses the GLib hash table to map each
//! data address to the timestamp of its most recent access. This crate is the
//! self-contained Rust equivalent:
//!
//! * [`FxHasher`] — a fast multiply-based hasher in the style of the hasher
//!   used by rustc, well suited to small integer keys such as word-granular
//!   memory addresses.
//! * [`RobinHoodMap`] — an open-addressing hash map with Robin Hood probing
//!   and backward-shift deletion, the workhorse table used on the analysis
//!   hot path.
//! * [`LastAccessTable`] — the address → last-access-timestamp table used by
//!   every reuse-distance engine in `parda-core`.
//! * [`crc32c`] — the Castagnoli checksum stamped on trace-file frames by
//!   `parda-trace` format v2.1 to detect corruption before decode.
//!
//! The map is deliberately specialised: keys must implement [`FixedKey`]
//! (a cheap, infallible 64-bit projection used for hashing), which lets the
//! table store hashes implicitly and keep probe loops branch-light.

pub mod crc;
pub mod fx;
pub mod map;
pub mod table;

pub use crc::crc32c;
pub use fx::{fx_hash_u64, FxBuildHasher, FxHasher};
pub use map::{FixedKey, RobinHoodMap};
pub use table::LastAccessTable;

/// Convenience alias: a `std` HashMap using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Convenience alias: a `std` HashSet using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

//! Robin Hood open-addressing hash map with backward-shift deletion.
//!
//! This is the stand-in for the GLib hash table used by the original PARDA C
//! code. The design choices follow the access pattern of reuse-distance
//! analysis:
//!
//! * every trace reference performs `get` + (`insert` or overwrite), so probe
//!   sequences must be short and cache-friendly — Robin Hood probing bounds
//!   the variance of probe lengths;
//! * the bounded algorithm (paper Algorithm 7) deletes evicted victims, so
//!   deletion must not poison the table — backward-shift deletion leaves no
//!   tombstones and keeps probe distances tight;
//! * keys are word-granular addresses, hashed with one multiply via
//!   [`crate::fx_hash_u64`].

use crate::fx::fx_hash_u64;

/// Keys storable in a [`RobinHoodMap`]: cheaply projectable to 64 bits.
///
/// The projection must be injective over the keys actually inserted (it is
/// the identity for the integer types below), because the map compares keys
/// with `Eq` after hashing the projection.
pub trait FixedKey: Copy + Eq {
    /// Project the key to the 64-bit value that is hashed.
    fn as_u64(self) -> u64;
}

impl FixedKey for u64 {
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
}

impl FixedKey for u32 {
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl FixedKey for usize {
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
}

#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Probe distance from the home bucket, plus one. Zero marks an empty
    /// slot, which lets `Option`-free occupancy checks stay in one word.
    dib: u32,
}

/// Open-addressing hash map with Robin Hood probing.
///
/// Capacity is always a power of two; the table resizes at 87.5% load.
///
/// # Examples
///
/// ```
/// use parda_hash::RobinHoodMap;
///
/// let mut map: RobinHoodMap<u64, u64> = RobinHoodMap::new();
/// map.insert(0x1000, 7);
/// assert_eq!(map.get(0x1000), Some(&7));
/// assert_eq!(map.remove(0x1000), Some(7));
/// assert!(map.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct RobinHoodMap<K, V> {
    slots: Vec<Option<Slot<K, V>>>,
    mask: usize,
    len: usize,
}

impl<K: FixedKey, V> Default for RobinHoodMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FixedKey, V> RobinHoodMap<K, V> {
    const MIN_CAPACITY: usize = 8;

    /// Create an empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::MIN_CAPACITY)
    }

    /// Create an empty map able to hold at least `capacity` entries without
    /// resizing.
    pub fn with_capacity(capacity: usize) -> Self {
        // Head-room for the 7/8 load factor, then round up to a power of two.
        let wanted = capacity.max(Self::MIN_CAPACITY) * 8 / 7 + 1;
        let cap = wanted.next_power_of_two();
        let mut slots = Vec::new();
        slots.resize_with(cap, || None);
        Self {
            slots,
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of entries in the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (diagnostic; not the number of entries).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Remove all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    #[inline]
    fn home(&self, key: K) -> usize {
        (fx_hash_u64(key.as_u64()) as usize) & self.mask
    }

    /// Issue a software prefetch for `key`'s home slot (and the line after
    /// it, covering the short Robin Hood probe tail). Purely a latency hint:
    /// the batched engine hot path calls this for a whole batch of keys
    /// before probing, turning a chain of dependent cache misses into
    /// overlapped ones. No-op on architectures without a prefetch intrinsic.
    #[inline]
    pub fn prefetch(&self, key: K) {
        let idx = self.home(key);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `idx <= mask` keeps the base pointer in-bounds; the line
        // after it may be one-past-the-end (wrapping_add, never
        // dereferenced) — prefetch has no architectural effect beyond the
        // cache even for unmapped addresses.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let base = self.slots.as_ptr().add(idx) as *const i8;
            _mm_prefetch(base, _MM_HINT_T0);
            _mm_prefetch(base.wrapping_add(64), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Look up `key`, returning a reference to its value.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        let mut idx = self.home(key);
        let mut dib: u32 = 1;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some(slot) => {
                    if slot.key == key {
                        return Some(&slot.value);
                    }
                    // Robin Hood invariant: if this resident is closer to its
                    // home than we are to ours, the key cannot be further on.
                    if slot.dib < dib {
                        return None;
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            dib += 1;
        }
    }

    /// Look up `key`, returning a mutable reference to its value.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let mut idx = self.home(key);
        let mut dib: u32 = 1;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some(slot) => {
                    if slot.key == key {
                        // Re-borrow mutably; the borrow checker cannot see
                        // through the loop otherwise.
                        return self.slots[idx].as_mut().map(|s| &mut s.value);
                    }
                    if slot.dib < dib {
                        return None;
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            dib += 1;
        }
    }

    /// `true` if `key` is present.
    #[inline]
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key → value`; returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut idx = self.home(key);
        let mut incoming = Slot { key, value, dib: 1 };
        loop {
            match &mut self.slots[idx] {
                empty @ None => {
                    *empty = Some(incoming);
                    self.len += 1;
                    return None;
                }
                Some(resident) => {
                    if resident.key == incoming.key {
                        return Some(std::mem::replace(&mut resident.value, incoming.value));
                    }
                    if resident.dib < incoming.dib {
                        // Rob from the rich: displace the resident that is
                        // closer to home and keep probing with it.
                        std::mem::swap(resident, &mut incoming);
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            incoming.dib += 1;
        }
    }

    /// Remove `key`, returning its value if present. Uses backward-shift
    /// deletion: subsequent displaced entries slide one slot back toward
    /// their home buckets, so no tombstones are needed.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let mut idx = self.home(key);
        let mut dib: u32 = 1;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some(slot) => {
                    if slot.key == key {
                        break;
                    }
                    if slot.dib < dib {
                        return None;
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            dib += 1;
        }
        let removed = self.slots[idx].take().expect("found slot is occupied");
        self.len -= 1;
        // Backward shift: pull each follower with dib > 1 one slot closer.
        let mut hole = idx;
        loop {
            let next = (hole + 1) & self.mask;
            match &self.slots[next] {
                Some(slot) if slot.dib > 1 => {
                    let mut moved = self.slots[next].take().expect("checked occupied");
                    moved.dib -= 1;
                    self.slots[hole] = Some(moved);
                    hole = next;
                }
                _ => break,
            }
        }
        Some(removed.value)
    }

    /// Iterate over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(|s| (s.key, &s.value)))
    }

    /// Drain all entries, leaving the map empty but allocated.
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> + '_ {
        self.len = 0;
        self.slots
            .iter_mut()
            .filter_map(|slot| slot.take().map(|s| (s.key, s.value)))
    }

    /// Longest probe distance currently present (diagnostic for tests and
    /// benchmarks; 0 for an empty map).
    pub fn max_probe_distance(&self) -> u32 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.dib)
            .max()
            .unwrap_or(0)
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut old = Vec::new();
        old.resize_with(new_cap, || None);
        std::mem::swap(&mut self.slots, &mut old);
        self.mask = new_cap - 1;
        self.len = 0;
        for slot in old.into_iter().flatten() {
            self.insert(slot.key, slot.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut map = RobinHoodMap::new();
        for i in 0u64..1_000 {
            assert_eq!(map.insert(i, i * 3), None);
        }
        for i in 0u64..1_000 {
            assert_eq!(map.get(i), Some(&(i * 3)));
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get(1_000), None);
    }

    #[test]
    fn insert_overwrites_and_returns_old() {
        let mut map = RobinHoodMap::new();
        assert_eq!(map.insert(42u64, 1), None);
        assert_eq!(map.insert(42u64, 2), Some(1));
        assert_eq!(map.get(42), Some(&2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn remove_returns_value_and_shrinks_len() {
        let mut map = RobinHoodMap::new();
        for i in 0u64..100 {
            map.insert(i, i);
        }
        for i in (0u64..100).step_by(2) {
            assert_eq!(map.remove(i), Some(i));
        }
        assert_eq!(map.len(), 50);
        for i in 0u64..100 {
            let expect = (i % 2 == 1).then_some(i);
            assert_eq!(map.get(i).copied(), expect, "key {i}");
        }
        assert_eq!(map.remove(0), None, "double remove yields None");
    }

    #[test]
    fn backward_shift_preserves_chains() {
        // Force long chains by inserting many keys, then delete from the
        // middle of chains and verify every survivor is still reachable.
        let mut map = RobinHoodMap::with_capacity(8);
        let keys: Vec<u64> = (0..500).map(|i| i * 0x10).collect();
        for &k in &keys {
            map.insert(k, k + 1);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(map.remove(k), Some(k + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(map.get(k), None);
            } else {
                assert_eq!(map.get(k), Some(&(k + 1)));
            }
        }
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut map = RobinHoodMap::new();
        map.insert(7u64, 10u64);
        *map.get_mut(7).unwrap() += 5;
        assert_eq!(map.get(7), Some(&15));
        assert_eq!(map.get_mut(8), None);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut map = RobinHoodMap::new();
        for i in 0u64..1_000 {
            map.insert(i, i);
        }
        let cap = map.capacity();
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), cap);
        map.insert(3u64, 4);
        assert_eq!(map.get(3), Some(&4));
    }

    #[test]
    fn iter_and_drain_visit_everything() {
        let mut map = RobinHoodMap::new();
        for i in 0u64..64 {
            map.insert(i, i * 2);
        }
        let mut seen: Vec<u64> = map.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());

        let drained: HashMap<u64, u64> = map.drain().collect();
        assert_eq!(drained.len(), 64);
        assert!(map.is_empty());
        assert_eq!(map.get(1), None);
    }

    #[test]
    fn probe_distances_stay_bounded_at_load() {
        let mut map = RobinHoodMap::with_capacity(16);
        for i in 0u64..100_000 {
            map.insert(i.wrapping_mul(0x9e3779b97f4a7c15), i);
        }
        // Robin Hood at 7/8 load keeps worst-case probes small in practice.
        assert!(
            map.max_probe_distance() < 64,
            "max probe distance {} is pathological",
            map.max_probe_distance()
        );
    }

    proptest! {
        /// The map must behave exactly like std::HashMap under an arbitrary
        /// interleaving of inserts and removes over a small key universe
        /// (small so that collisions between operations are common).
        #[test]
        fn behaves_like_std_hashmap(ops in proptest::collection::vec((any::<bool>(), 0u64..64, any::<u32>()), 0..400)) {
            let mut ours: RobinHoodMap<u64, u32> = RobinHoodMap::new();
            let mut reference: HashMap<u64, u32> = HashMap::new();
            for (is_insert, key, value) in ops {
                if is_insert {
                    prop_assert_eq!(ours.insert(key, value), reference.insert(key, value));
                } else {
                    prop_assert_eq!(ours.remove(key), reference.remove(&key));
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
            for (key, value) in &reference {
                prop_assert_eq!(ours.get(*key), Some(value));
            }
        }
    }
}

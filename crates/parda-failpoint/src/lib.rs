//! Deterministic fault injection for the PARDA pipeline.
//!
//! Production code marks *named sites* with the [`failpoint!`] macro:
//!
//! ```ignore
//! failpoint!("engine::process_chunk");                  // can panic or sleep
//! failpoint!("trace::decode_frame", return Err(inval)); // can also early-return
//! ```
//!
//! With the `failpoints` feature disabled (the default) the macro expands to
//! nothing at all — zero instructions, zero branches on the hot path. With the
//! feature enabled, each site consults a process-global registry that tests
//! program with action *specs*:
//!
//! | spec          | effect at the site                                  |
//! |---------------|-----------------------------------------------------|
//! | `"panic"`     | `panic!` with a recognisable message                |
//! | `"error"`     | take the `return` arm of the two-argument form      |
//! | `"sleep(ms)"` | block the calling thread for `ms` milliseconds      |
//! | `"N*spec"`    | apply `spec` for the first `N` hits, then disarm    |
//!
//! Configuration is intentionally tiny: `configure`, `remove`, `clear`
//! (present only when the `failpoints` feature is on).
//! Tests that configure failpoints must serialise themselves (the registry is
//! process-global); the suites in this repository share a `Mutex` for that.

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when hit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FailKind {
        /// Panic with `"failpoint <name> panic"`.
        Panic,
        /// Signal the site's error arm (two-argument macro form).
        Error,
        /// Sleep for the given duration, then continue normally.
        Sleep(u64),
    }

    #[derive(Clone, Copy, Debug)]
    struct FailAction {
        kind: FailKind,
        /// `None` = fire on every hit; `Some(n)` = fire `n` more times.
        remaining: Option<u64>,
    }

    fn registry() -> &'static Mutex<HashMap<String, FailAction>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn parse_spec(spec: &str) -> Result<FailAction, String> {
        let spec = spec.trim();
        let (remaining, body) = match spec.split_once('*') {
            Some((n, rest)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad failpoint count in {spec:?}"))?;
                (Some(n), rest.trim())
            }
            None => (None, spec),
        };
        let kind = if body == "panic" {
            FailKind::Panic
        } else if body == "error" {
            FailKind::Error
        } else if let Some(ms) = body
            .strip_prefix("sleep(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| format!("bad sleep duration in {spec:?}"))?;
            FailKind::Sleep(ms)
        } else {
            return Err(format!("unknown failpoint action {body:?}"));
        };
        Ok(FailAction { kind, remaining })
    }

    /// Arm the failpoint `name` with an action `spec` (see module docs).
    pub fn configure(name: &str, spec: &str) -> Result<(), String> {
        let action = parse_spec(spec)?;
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), action);
        Ok(())
    }

    /// Disarm the failpoint `name` (no-op if it was not armed).
    pub fn remove(name: &str) {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }

    /// Disarm every failpoint.
    pub fn clear() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Called by the `failpoint!` macro at each hit. Returns `true` when the
    /// site should take its error arm. Panics / sleeps are performed here.
    pub fn fire(name: &str) -> bool {
        let kind = {
            let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
            let Some(action) = map.get_mut(name) else {
                return false;
            };
            match &mut action.remaining {
                Some(0) => {
                    map.remove(name);
                    return false;
                }
                Some(n) => {
                    *n -= 1;
                    let kind = action.kind;
                    if action.remaining == Some(0) {
                        map.remove(name);
                    }
                    kind
                }
                None => action.kind,
            }
        };
        match kind {
            FailKind::Panic => panic!("failpoint {name} panic"),
            FailKind::Error => true,
            FailKind::Sleep(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, fire, remove, FailKind};

/// Mark a fault-injection site.
///
/// `failpoint!("name")` supports `panic` and `sleep` actions;
/// `failpoint!("name", expr)` additionally evaluates `expr` (typically a
/// `return ...`) when the site is armed with the `error` action. Expands to
/// nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        let _ = $crate::fire($name);
    };
    ($name:expr, $on_error:expr) => {
        if $crate::fire($name) {
            $on_error;
        }
    };
}

/// Mark a fault-injection site (disabled build: expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {};
    ($name:expr, $on_error:expr) => {};
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::sync::Mutex;

    /// The registry is process-global; serialise the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_site_is_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        assert!(!super::fire("nope"));
    }

    #[test]
    fn error_action_fires_until_removed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("site", "error").unwrap();
        assert!(super::fire("site"));
        assert!(super::fire("site"));
        super::remove("site");
        assert!(!super::fire("site"));
    }

    #[test]
    fn counted_action_disarms_after_n_hits() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("site", "2*error").unwrap();
        assert!(super::fire("site"));
        assert!(super::fire("site"));
        assert!(!super::fire("site"));
        assert!(!super::fire("site"));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("boom", "1*panic").unwrap();
        let err = std::panic::catch_unwind(|| super::fire("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failpoint boom panic"), "got {msg:?}");
        assert!(!super::fire("boom"), "counted panic should disarm");
        super::clear();
    }

    #[test]
    fn sleep_action_delays_then_continues() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("slow", "1*sleep(10)").unwrap();
        let start = std::time::Instant::now();
        assert!(!super::fire("slow"));
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
        super::clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(super::configure("x", "explode").is_err());
        assert!(super::configure("x", "q*panic").is_err());
        assert!(super::configure("x", "sleep(abc)").is_err());
    }
}

//! Deterministic fault injection for the PARDA pipeline.
//!
//! Production code marks *named sites* with the [`failpoint!`] macro:
//!
//! ```ignore
//! failpoint!("engine::process_chunk");                  // can panic or sleep
//! failpoint!("trace::decode_frame", return Err(inval)); // can also early-return
//! ```
//!
//! With the `failpoints` feature disabled (the default) the macro expands to
//! nothing at all — zero instructions, zero branches on the hot path. With the
//! feature enabled, each site consults a process-global registry that tests
//! program with action *specs*:
//!
//! | spec             | effect at the site                                  |
//! |------------------|-----------------------------------------------------|
//! | `"panic"`        | `panic!` with a recognisable message                |
//! | `"error"`        | take the `return` arm of the two-argument form      |
//! | `"sleep(ms)"`    | block the calling thread for `ms` milliseconds      |
//! | `"N*spec"`       | apply `spec` for the first `N` firings, then disarm |
//! | `"every(M)*spec"`| apply `spec` only on every `M`-th hit               |
//!
//! The prefixes compose: `"3*every(20)*error"` fires on hits 20, 40 and 60,
//! then disarms — the shape used by the network chaos harness to spread
//! injected disconnects across a stream while guaranteeing forward progress
//! between them.
//!
//! Configuration is intentionally tiny: `configure`, `remove`, `clear`
//! (present only when the `failpoints` feature is on).
//! Tests that configure failpoints must serialise themselves (the registry is
//! process-global); the suites in this repository share a `Mutex` for that.

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when hit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FailKind {
        /// Panic with `"failpoint <name> panic"`.
        Panic,
        /// Signal the site's error arm (two-argument macro form).
        Error,
        /// Sleep for the given duration, then continue normally.
        Sleep(u64),
    }

    #[derive(Clone, Copy, Debug)]
    struct FailAction {
        kind: FailKind,
        /// `None` = fire on every qualifying hit; `Some(n)` = fire `n` more
        /// times (counts *firings*, not hits — a periodic action with a
        /// count disarms after its n-th actual firing).
        remaining: Option<u64>,
        /// Fire only on every `period`-th hit (1 = every hit).
        period: u64,
        /// Hits observed so far (fired or not).
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, FailAction>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn parse_spec(spec: &str) -> Result<FailAction, String> {
        let spec = spec.trim();
        let mut remaining: Option<u64> = None;
        let mut period: u64 = 1;
        let mut body = spec;
        // Strip `N*` and `every(M)*` prefixes, in either order.
        while let Some((head, rest)) = body.split_once('*') {
            let head = head.trim();
            if let Some(m) = head
                .strip_prefix("every(")
                .and_then(|s| s.strip_suffix(')'))
            {
                period = m
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad failpoint period in {spec:?}"))?;
                if period == 0 {
                    return Err(format!("failpoint period must be >= 1 in {spec:?}"));
                }
            } else {
                remaining = Some(
                    head.parse()
                        .map_err(|_| format!("bad failpoint count in {spec:?}"))?,
                );
            }
            body = rest.trim();
        }
        let kind = if body == "panic" {
            FailKind::Panic
        } else if body == "error" {
            FailKind::Error
        } else if let Some(ms) = body
            .strip_prefix("sleep(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| format!("bad sleep duration in {spec:?}"))?;
            FailKind::Sleep(ms)
        } else {
            return Err(format!("unknown failpoint action {body:?}"));
        };
        Ok(FailAction {
            kind,
            remaining,
            period,
            hits: 0,
        })
    }

    /// Arm the failpoint `name` with an action `spec` (see module docs).
    pub fn configure(name: &str, spec: &str) -> Result<(), String> {
        let action = parse_spec(spec)?;
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), action);
        Ok(())
    }

    /// Arm multiple failpoints from a `name=spec;name=spec` list — the
    /// shape carried by the `PARDA_FAILPOINTS` environment variable that
    /// the chaos smoke in ci.sh uses to arm a freshly-exec'd daemon.
    pub fn configure_list(list: &str) -> Result<(), String> {
        for entry in list.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, spec) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint entry {entry:?} is not name=spec"))?;
            configure(name.trim(), spec)?;
        }
        Ok(())
    }

    /// Disarm the failpoint `name` (no-op if it was not armed).
    pub fn remove(name: &str) {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }

    /// Disarm every failpoint.
    pub fn clear() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Called by the `failpoint!` macro at each hit. Returns `true` when the
    /// site should take its error arm. Panics / sleeps are performed here.
    pub fn fire(name: &str) -> bool {
        let kind = {
            let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
            let Some(action) = map.get_mut(name) else {
                return false;
            };
            action.hits += 1;
            if action.hits % action.period != 0 {
                return false;
            }
            match &mut action.remaining {
                Some(0) => {
                    map.remove(name);
                    return false;
                }
                Some(n) => {
                    *n -= 1;
                    let kind = action.kind;
                    if action.remaining == Some(0) {
                        map.remove(name);
                    }
                    kind
                }
                None => action.kind,
            }
        };
        match kind {
            FailKind::Panic => panic!("failpoint {name} panic"),
            FailKind::Error => true,
            FailKind::Sleep(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, configure_list, fire, remove, FailKind};

/// Mark a fault-injection site.
///
/// `failpoint!("name")` supports `panic` and `sleep` actions;
/// `failpoint!("name", expr)` additionally evaluates `expr` (typically a
/// `return ...`) when the site is armed with the `error` action. Expands to
/// nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        let _ = $crate::fire($name);
    };
    ($name:expr, $on_error:expr) => {
        if $crate::fire($name) {
            $on_error;
        }
    };
}

/// Mark a fault-injection site (disabled build: expands to nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {};
    ($name:expr, $on_error:expr) => {};
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::sync::Mutex;

    /// The registry is process-global; serialise the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_site_is_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        assert!(!super::fire("nope"));
    }

    #[test]
    fn error_action_fires_until_removed() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("site", "error").unwrap();
        assert!(super::fire("site"));
        assert!(super::fire("site"));
        super::remove("site");
        assert!(!super::fire("site"));
    }

    #[test]
    fn counted_action_disarms_after_n_hits() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("site", "2*error").unwrap();
        assert!(super::fire("site"));
        assert!(super::fire("site"));
        assert!(!super::fire("site"));
        assert!(!super::fire("site"));
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("boom", "1*panic").unwrap();
        let err = std::panic::catch_unwind(|| super::fire("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failpoint boom panic"), "got {msg:?}");
        assert!(!super::fire("boom"), "counted panic should disarm");
        super::clear();
    }

    #[test]
    fn sleep_action_delays_then_continues() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("slow", "1*sleep(10)").unwrap();
        let start = std::time::Instant::now();
        assert!(!super::fire("slow"));
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
        super::clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(super::configure("x", "explode").is_err());
        assert!(super::configure("x", "q*panic").is_err());
        assert!(super::configure("x", "sleep(abc)").is_err());
        assert!(super::configure("x", "every(0)*error").is_err());
        assert!(super::configure("x", "every(two)*error").is_err());
    }

    #[test]
    fn periodic_action_fires_on_every_mth_hit() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure("tick", "every(3)*error").unwrap();
        let fired: Vec<bool> = (0..9).map(|_| super::fire("tick")).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        super::clear();
    }

    #[test]
    fn counted_periodic_action_counts_firings_not_hits() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        // Fires on hits 2 and 4, then disarms: later hits are inert.
        super::configure("site", "2*every(2)*error").unwrap();
        let fired: Vec<bool> = (0..8).map(|_| super::fire("site")).collect();
        assert_eq!(
            fired,
            [false, true, false, true, false, false, false, false]
        );
        super::clear();
    }

    #[test]
    fn configure_list_arms_multiple_sites() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::clear();
        super::configure_list(" a = error ; b = 1*error ;").unwrap();
        assert!(super::fire("a"));
        assert!(super::fire("b"));
        assert!(!super::fire("b"));
        assert!(super::configure_list("broken").is_err());
        super::clear();
    }
}

//! End-to-end checks for `--approx`: the CLI must route every spec through
//! the sketch subsystem, agree bit-for-bit with the library, attach the
//! approx metrics to `--stats=json`, and reject bad grammar with a usage
//! error that spells the grammar out.

use parda_cli::run;
use parda_core::approx::analyze_approx;
use parda_core::ApproxMode;
use parda_trace::io::load_trace;

fn run_to_string(argv: &[&str]) -> (i32, String) {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&argv, &mut buf);
    (code, String::from_utf8(buf).unwrap())
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("parda-cli-approx-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn gen_zipf(path: &str) {
    let (code, out) = run_to_string(&[
        "gen",
        "--pattern",
        "zipf",
        "--footprint",
        "8192",
        "--refs",
        "120000",
        "--seed",
        "7",
        "--out",
        path,
    ]);
    assert_eq!(code, 0, "gen failed: {out}");
}

#[test]
fn approx_analyze_matches_the_library_for_every_mode() {
    let path = tmp("zipf.v2.trc");
    gen_zipf(&path);
    let trace = load_trace(&path).unwrap();

    for spec in ["shards:0.05", "shards-smax:512", "aet:0.05"] {
        let mode = ApproxMode::parse(spec).unwrap();
        let (expect, _) = analyze_approx(trace.as_slice(), mode);
        let expect_json = serde_json::to_string(&expect).unwrap();

        // v2 file: the approx path streams frames, still bit-identical.
        let (code, out) = run_to_string(&["analyze", &path, &format!("--approx={spec}"), "--json"]);
        assert_eq!(code, 0, "--approx={spec} failed: {out}");
        assert_eq!(out.trim_end(), expect_json, "--approx={spec} histogram");

        // mrc accepts the same grammar and produces the sketch's curve.
        let (code, out) = run_to_string(&["mrc", &path, &format!("--approx={spec}")]);
        assert_eq!(code, 0, "mrc --approx={spec} failed: {out}");
        assert!(out.contains("capacity"), "mrc table missing: {out}");
    }
}

#[test]
fn bare_approx_defaults_to_one_percent_shards() {
    let path = tmp("bare.v2.trc");
    gen_zipf(&path);
    let trace = load_trace(&path).unwrap();
    let (expect, _) = analyze_approx(trace.as_slice(), ApproxMode::ShardsFixedRate { rate: 0.01 });
    let (code, out) = run_to_string(&["analyze", &path, "--approx", "--json"]);
    assert_eq!(code, 0, "bare --approx failed: {out}");
    assert_eq!(out.trim_end(), serde_json::to_string(&expect).unwrap());
}

#[test]
fn stats_json_carries_the_approx_block() {
    let path = tmp("stats.v2.trc");
    gen_zipf(&path);
    let (code, out) = run_to_string(&["analyze", &path, "--approx=shards:0.05", "--stats=json"]);
    assert_eq!(code, 0, "stats run failed: {out}");
    let doc: serde::Value = serde_json::from_str(out.trim_end()).unwrap();
    let approx = doc.field("stats").unwrap().field("approx").unwrap();
    let mode = <String as serde::Deserialize>::from_value(approx.field("mode").unwrap()).unwrap();
    assert_eq!(mode, "shards");
    let bytes =
        <u64 as serde::Deserialize>::from_value(approx.field("sketch_bytes").unwrap()).unwrap();
    assert!(bytes > 0, "sketch memory must be reported");
}

#[test]
fn bad_specs_are_usage_errors_quoting_the_grammar() {
    let path = tmp("bad.v2.trc");
    gen_zipf(&path);
    for bad in [
        "--approx=warp",
        "--approx=shards:0",
        "--approx=shards-smax:0",
    ] {
        let (code, out) = run_to_string(&["analyze", &path, bad]);
        assert_eq!(code, 1, "{bad} must be a usage error: {out}");
        assert!(
            out.contains("grammar"),
            "{bad}: error must cite the grammar: {out}"
        );
    }
    // --approx supersedes the engine choice; asking for both is ambiguous.
    let (code, out) = run_to_string(&["analyze", &path, "--approx=shards:0.05", "--engine", "seq"]);
    assert_eq!(code, 1, "conflicting engine must be rejected: {out}");
    assert!(
        out.contains("--engine"),
        "error must name the conflict: {out}"
    );
}

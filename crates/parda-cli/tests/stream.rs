//! End-to-end checks for the v2 streaming analyze pipeline: the streamed
//! histogram must be bit-identical to the in-memory engines', and v1 files
//! must keep working through the legacy path.

use parda_cli::run;
use parda_core::parallel::parda_threads;
use parda_core::PardaConfig;
use parda_trace::io::load_trace;
use parda_tree::SplayTree;

fn run_to_string(argv: &[&str]) -> (i32, String) {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&argv, &mut buf);
    (code, String::from_utf8(buf).unwrap())
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("parda-cli-stream-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn streamed_analyze_is_bit_identical_to_in_memory() {
    let path = tmp("zipf.v2.trc");
    let (code, out) = run_to_string(&[
        "gen",
        "--pattern",
        "zipf",
        "--footprint",
        "4096",
        "--refs",
        "150000",
        "--seed",
        "11",
        "--out",
        &path,
    ]);
    assert_eq!(code, 0, "gen failed: {out}");
    assert!(out.contains("(v2)"), "gen must default to v2: {out}");

    // Streamed (explicit --stream) vs the in-memory parallel engine.
    let (code, streamed) = run_to_string(&["analyze", &path, "--stream", "--json"]);
    assert_eq!(code, 0, "streamed analyze failed: {streamed}");
    let (code, in_memory) = run_to_string(&["analyze", &path, "--engine", "parda", "--json"]);
    assert_eq!(code, 0, "in-memory analyze failed: {in_memory}");
    assert_eq!(
        streamed, in_memory,
        "streamed histogram must be bit-identical"
    );

    // Auto-streaming (default engine on a v2 file) gives the same bytes.
    let (code, auto) = run_to_string(&["analyze", &path, "--json"]);
    assert_eq!(code, 0, "auto analyze failed: {auto}");
    assert_eq!(auto, streamed);

    // And all of it matches the library computed directly on the trace.
    let trace = load_trace(&path).unwrap();
    let hist = parda_threads::<SplayTree>(trace.as_slice(), &PardaConfig::with_ranks(4));
    let expected = serde_json::to_string(&hist).unwrap();
    assert_eq!(streamed.trim_end(), expected);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn v1_traces_load_via_legacy_path_and_reject_stream() {
    let path = tmp("zipf.v1.trc");
    let (code, out) = run_to_string(&[
        "gen",
        "--pattern",
        "zipf",
        "--footprint",
        "512",
        "--refs",
        "20000",
        "--format",
        "v1",
        "--out",
        &path,
    ]);
    assert_eq!(code, 0, "gen --format v1 failed: {out}");
    assert!(out.contains("(v1)"), "got: {out}");

    let (code, out) = run_to_string(&["stats", &path]);
    assert_eq!(code, 0);
    assert!(out.contains("N=20000"), "got: {out}");

    // v1 histogram agrees with a v2 copy of the same generated trace.
    let (code, v1_json) = run_to_string(&["analyze", &path, "--engine", "seq", "--json"]);
    assert_eq!(code, 0, "v1 analyze failed: {v1_json}");
    let path2 = tmp("zipf.v1-as-v2.trc");
    let (code, _) = run_to_string(&[
        "gen",
        "--pattern",
        "zipf",
        "--footprint",
        "512",
        "--refs",
        "20000",
        "--out",
        &path2,
    ]);
    assert_eq!(code, 0);
    let (code, v2_json) = run_to_string(&["analyze", &path2, "--json"]);
    assert_eq!(code, 0, "v2 analyze failed: {v2_json}");
    assert_eq!(
        v1_json, v2_json,
        "format change must not change the histogram"
    );

    // Streaming needs the frame index; v1 files are rejected with a hint.
    let (code, out) = run_to_string(&["analyze", &path, "--stream"]);
    assert_eq!(code, 1);
    assert!(out.contains("v2"), "error should point at v2: {out}");

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&path2).unwrap();
}

#[test]
fn stream_flag_rejects_incompatible_options() {
    let path = tmp("small.v2.trc");
    let (code, _) = run_to_string(&[
        "gen",
        "--pattern",
        "cyclic",
        "--footprint",
        "64",
        "--refs",
        "1000",
        "--out",
        &path,
    ]);
    assert_eq!(code, 0);

    let (code, out) = run_to_string(&["analyze", &path, "--engine", "seq", "--stream"]);
    assert_eq!(code, 1);
    assert!(out.contains("--stream"), "got: {out}");

    let (code, out) = run_to_string(&["analyze", &path, "--line-bits", "6", "--stream"]);
    assert_eq!(code, 1);
    assert!(out.contains("line-bits"), "got: {out}");

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mrc_streams_v2_and_matches_sequential() {
    let v1 = tmp("mrc.v1.trc");
    let v2 = tmp("mrc.v2.trc");
    for (path, format) in [(&v1, "v1"), (&v2, "v2")] {
        let (code, out) = run_to_string(&[
            "gen", "--spec", "gcc", "--refs", "30000", "--seed", "5", "--format", format, "--out",
            path,
        ]);
        assert_eq!(code, 0, "gen {format} failed: {out}");
    }
    let (code, seq_mrc) = run_to_string(&["mrc", &v1]);
    assert_eq!(code, 0, "v1 mrc failed: {seq_mrc}");
    let (code, streamed_mrc) = run_to_string(&["mrc", &v2]);
    assert_eq!(code, 0, "v2 mrc failed: {streamed_mrc}");
    assert_eq!(seq_mrc, streamed_mrc, "streamed MRC must match sequential");

    std::fs::remove_file(&v1).unwrap();
    std::fs::remove_file(&v2).unwrap();
}

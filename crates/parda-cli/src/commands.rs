//! Subcommand implementations.

use crate::{Args, CliError};
use parda_core::phased::Reduction;
use parda_core::{
    analyze_concurrent_kind, default_granularity, interleave_threads, recommend_partition,
    shared_metrics, Analysis, ApproxMode, Degradation, FaultPolicy, InterleaveModel, Mode,
    PardaError, Report,
};
use parda_obs::SharedMetrics;
use parda_pinsim::{collect_mt_trace, collect_trace};
use parda_server::{Server, ServerConfig, SubmitOptions};
use parda_trace::gen::{CyclicGen, SequentialGen, UniformGen, ZipfGen};
use parda_trace::io::{
    load_tagged_trace, load_trace, peek_version, save_tagged_trace_v2, save_trace, save_trace_v2,
    Encoding,
};
use parda_trace::spec::{SpecBenchmark, SPEC2006};
use parda_trace::stream::FramedStream;
use parda_trace::{load_trace_recovering, verify_trace, Addr, AddressStream, Trace};
use parda_tree::TreeKind;
use serde::Deserialize;
use std::io::Write;
use std::time::{Duration, Instant};

/// Boolean switches the CLI recognizes: these never consume the next token
/// (`--stream file.trc` keeps `file.trc` positional), while `--stats=json`
/// still selects a format via the `--key=value` form.
pub const SWITCHES: &[&str] = &[
    "json",
    "stream",
    "renumber",
    "stats",
    "verify",
    "mrc",
    "approx",
    "fallback-poller",
    "false-sharing",
];

/// Top-level usage text.
pub const USAGE: &str = "\
usage: parda <command> [options]

commands:
  gen      generate a trace
             --spec <name> --refs <n> [--seed <s>]      SPEC CPU2006 model
             --pattern <cyclic|uniform|zipf|sequential> --footprint <m> --refs <n>
             --kernel <matmul|matmul-blocked|stencil|chase|join|triad|mergesort> --size <n>
             --kernel <mt-stencil|mt-matmul> --size <n> [--threads <t>]
             [--iters <i>] [--false-sharing]
             (multi-threaded kernels write thread-tagged v2.2 traces;
              --false-sharing packs per-thread counters on one line)
             --out <file> [--encoding <raw|delta>] [--format <v1|v2>]
             (v2 is the default: block-framed with a seekable index)
  analyze  analyze a trace file
             <file> [--engine <parda|msg|seq|naive|phased|sampled>] [--ranks <p>]
             [--bound <B>] [--tree <splay|avl|treap|vector>] [--json]
             [--line-bits <b>]  (fold addresses to 2^b-byte lines first)
             [--stream]  (decode v2 frames concurrently with analysis;
                          automatic for v2 files with the default engine)
             [--stats[=json|pretty]]  (per-rank timing breakdown; with
                          --stats=json the output is one JSON object
                          holding the histogram and the stats report)
             [--degradation <strict|repair|best-effort>]  (corrupt-input
                          policy: fail, skip checksummed-bad frames, or
                          salvage everything recoverable; default strict)
             [--verify]  (check format + checksums only, no analysis)
             [--approx[=<spec>]]  (constant-space approximate analysis;
                          spec is exact | shards:<rate> | shards-smax:<n>
                          | aet[:<rate>], default shards:0.01)
             phased:  [--chunk <C>] [--renumber]
             sampled: [--rate <k>]   (legacy spatial sampling at rate 2^-k;
                          prefer --approx=shards:<rate>)
  mrc      print the miss ratio curve of a trace
             <file> [--capacities <c1,c2,...>] [--stream]
             [--stats[=json|pretty]] [--degradation <policy>]
             [--approx[=<spec>]]  (same grammar as analyze)
  stats    print trace statistics (N, M, address span)
             <file>
  compare  run every engine over a trace, verify agreement, report timings
             <file> [--ranks <p>] [--naive-limit <n>]
  spec     print the paper's Table IV benchmark table
  serve    run the analysis daemon (std TCP, sharded event-driven core)
             [--addr <host:port>]     (default 127.0.0.1:0, ephemeral port;
                          the bound address is printed on startup)
             [--max-sessions <n>]     (admission cap, default 8)
             [--shards <n>]           (ingest shard threads; default 0 =
                          scale to the hardware, capped at 8)
             [--max-session-bytes <b>] (per-session DATA budget)
             [--degradation <policy>] (default wire-corruption policy for
                          sessions that do not pick their own)
             [--idle-timeout <secs>]  (stall out silent clients; 0 = never)
             [--accept-limit <n>]     (stop after n connections; tests)
             [--approx[=<spec>]]      (default approx mode for sessions
                          that do not pick their own; default exact)
             [--ack-every <n>]        (ACK ingest progress every n DATA
                          frames so reconnecting clients resume cheaply;
                          0 = no ACKs, the default)
             [--orphan-retention <secs>] (keep disconnected sessions
                          resumable this long; 0 = fail on disconnect,
                          the default)
             [--orphan-budget <bytes>] (total parked-session state, oldest
                          evicted first; default 64 MiB)
             [--fallback-poller]      (use the portable bounded-sleep
                          poller instead of poll(2); mainly for testing)
             SIGINT/SIGTERM stop accepting and drain in-flight sessions
  submit   stream a trace to a daemon and print the returned histogram
             <file> --addr <host:port> [--config k=v[,k=v...]]
             [--encoding <raw|delta>] [--frame-refs <n>] [--json] [--mrc]
             [--approx[=<spec>]]  (request approximate analysis; rides the
                          CONFIG frame as approx=<spec>)
             [--stats=json]  (full histogram+stats document from the server,
                          same shape as analyze --stats=json)
             [--retries <n>]  (total connection attempts; after a lost
                          connection the client reconnects with backoff
                          and RESUMEs the same session; default 1)
             [--backoff <ms>] (initial reconnect delay, doubling per
                          attempt with jitter; default 50)
             [--timeout <secs>] (connect + socket I/O deadlines; a hung
                          daemon exits with a stall, not a hang;
                          default 30, 0 = wait forever)
  partition  recommend a static shared-cache partition (UCP/Soft-OLP)
             <tagged.trc>            one thread-tagged v2.2 trace,
                          analyzed in recorded order; --model instead
                          re-interleaves its per-thread streams
             <t0.trc> <t1.trc> ...   one plain trace per thread, merged
                          under --model (default rr:1)
             --capacity <lines>       shared-cache capacity to split
             [--granularity <lines>]  (default capacity/64, min 1)
             [--model <rr[:burst]|prob[:w,..][@seed]>]
             [--tree <splay|avl|treap|vector>]
             [--addr <host:port>]  (run the analysis on a daemon via a
                          thread-tagged session; the daemon analyzes the
                          stream as received — model `as-recorded` — and
                          returns the same recommendation as offline)
             [--stats[=json]]  (JSON: one document with the shared-stream
                          histogram and a stats report carrying the
                          SharedMetrics block, identical in shape offline
                          and served; pretty is offline-only)
             [--json]  (shared-stream histogram only)
             [--frame-refs <n>] [--retries <n>] [--backoff <ms>]
             [--timeout <secs>]  (server path; same semantics as submit)
  help     show this message

exit codes: 0 ok, 1 usage, 2 corrupt trace, 3 i/o failure,
            4 worker panic (retries exhausted), 5 watchdog stall";

fn io_err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// The `--approx` engine selection, shared by `analyze`, `mrc`, `serve`,
/// and `submit`. Bare `--approx` defaults to fixed-rate SHARDS at 1%;
/// `--approx=<spec>` accepts the full grammar
/// (`exact | shards:<rate> | shards-smax:<n> | aet[:<rate>]`).
fn parse_approx(args: &Args) -> Result<Option<ApproxMode>, CliError> {
    if let Some(spec) = args.get("approx") {
        Ok(Some(ApproxMode::parse(spec).map_err(CliError::Usage)?))
    } else if args.has("approx") {
        Ok(Some(ApproxMode::ShardsFixedRate { rate: 0.01 }))
    } else {
        Ok(None)
    }
}

/// The `--degradation` policy, defaulting to strict.
fn parse_degradation(args: &Args) -> Result<Degradation, CliError> {
    match args.get("degradation") {
        None => Ok(Degradation::Strict),
        Some(raw) => raw
            .parse()
            .map_err(|e: String| CliError::Fault(PardaError::Config(e))),
    }
}

/// `parda gen`: produce a trace from a SPEC model, a pattern generator, or
/// a pinsim kernel.
pub fn gen(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.get("out").ok_or("missing --out <file>")?.to_string();
    let seed: u64 = args.get_parsed("seed", 42)?;
    let refs: u64 = args.get_parsed("refs", 1_000_000)?;
    let encoding = match args.get("encoding").unwrap_or("delta") {
        "raw" => Encoding::Raw,
        "delta" => Encoding::DeltaVarint,
        other => return Err(format!("unknown encoding `{other}`").into()),
    };

    let trace: Trace = if let Some(name) = args.get("spec") {
        let bench = SpecBenchmark::by_name(name)
            .ok_or_else(|| format!("unknown SPEC benchmark `{name}` (see `parda spec`)"))?;
        bench.generator(refs, seed).take_trace(refs as usize)
    } else if let Some(pattern) = args.get("pattern") {
        let m: u64 = args.get_parsed("footprint", 1_024)?;
        match pattern {
            "cyclic" => CyclicGen::new(m, 0).take_trace(refs as usize),
            "uniform" => UniformGen::new(m, 0, seed).take_trace(refs as usize),
            "zipf" => {
                let theta: f64 = args.get_parsed("theta", 0.99)?;
                ZipfGen::new(m as usize, theta, 0, seed).take_trace(refs as usize)
            }
            "sequential" => SequentialGen::new(0, 8).take_trace(refs as usize),
            other => return Err(format!("unknown pattern `{other}`").into()),
        }
    } else if let Some(kernel) = args.get("kernel") {
        let size: usize = args.get_parsed("size", 64)?;
        // Multi-threaded kernels produce thread-tagged streams and take a
        // v2.2 early exit: there is no v1 layout for thread tags.
        if kernel.starts_with("mt-") {
            let threads: usize = args.get_parsed("threads", 4)?;
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            let false_sharing = args.has("false-sharing");
            let mt = match kernel {
                "mt-stencil" => {
                    let iters: usize = args.get_parsed("iters", 4)?;
                    collect_mt_trace(parda_pinsim::MtStencil2D::new(
                        size,
                        iters,
                        threads,
                        false_sharing,
                    ))
                }
                "mt-matmul" => {
                    collect_mt_trace(parda_pinsim::MtMatMul::new(size, threads, false_sharing))
                }
                other => return Err(format!("unknown kernel `{other}`").into()),
            };
            if args.get("format").is_some_and(|f| f != "v2") {
                return Err("thread-tagged kernels write format v2.2; drop --format".into());
            }
            save_tagged_trace_v2(&path, &mt.interleaved, encoding).map_err(io_err)?;
            writeln!(
                out,
                "wrote {} references from {} threads to {path} (v2.2 tagged)",
                mt.interleaved.len(),
                mt.per_thread.len()
            )
            .map_err(io_err)?;
            return Ok(());
        }
        match kernel {
            "matmul" => collect_trace(parda_pinsim::MatMul::naive(size)),
            "matmul-blocked" => {
                let block: usize = args.get_parsed("block", (size / 4).max(1))?;
                collect_trace(parda_pinsim::MatMul::blocked(size, block))
            }
            "stencil" => {
                let iters: usize = args.get_parsed("iters", 4)?;
                collect_trace(parda_pinsim::Stencil2D::new(size, iters))
            }
            "chase" => collect_trace(parda_pinsim::PointerChase::new(size, refs, seed)),
            "join" => collect_trace(parda_pinsim::HashJoin::new(size, size * 4, seed)),
            "triad" => {
                let iters: usize = args.get_parsed("iters", 4)?;
                collect_trace(parda_pinsim::StreamTriad::new(size, iters))
            }
            "mergesort" => collect_trace(parda_pinsim::MergeSortScan::new(size, seed)),
            other => return Err(format!("unknown kernel `{other}`").into()),
        }
    } else {
        return Err("gen needs one of --spec, --pattern, or --kernel".into());
    };

    let format = args.get("format").unwrap_or("v2");
    match format {
        "v2" => save_trace_v2(&path, &trace, encoding).map_err(io_err)?,
        "v1" => save_trace(&path, &trace, encoding).map_err(io_err)?,
        other => return Err(format!("unknown format `{other}` (v1|v2)").into()),
    }
    writeln!(out, "wrote {} references to {path} ({format})", trace.len()).map_err(io_err)?;
    Ok(())
}

fn parse_tree(args: &Args) -> Result<TreeKind, String> {
    args.get("tree").unwrap_or("splay").parse()
}

/// How `--stats` output should be rendered.
enum StatsFormat {
    Off,
    Pretty,
    Json,
}

fn stats_format(args: &Args) -> Result<StatsFormat, String> {
    if let Some(fmt) = args.get("stats") {
        match fmt {
            "json" => Ok(StatsFormat::Json),
            "pretty" => Ok(StatsFormat::Pretty),
            other => Err(format!("unknown --stats format `{other}` (json|pretty)")),
        }
    } else if args.has("stats") {
        Ok(StatsFormat::Pretty)
    } else {
        Ok(StatsFormat::Off)
    }
}

/// Emit the histogram and report as one JSON object, so the whole stdout of
/// a `--stats=json` run parses as a single document.
fn write_stats_json(
    hist: &parda_hist::ReuseHistogram,
    report: &Report,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let hist_json = serde_json::to_string(hist).map_err(io_err)?;
    let report_json = serde_json::to_string(report).map_err(io_err)?;
    writeln!(out, "{{\"histogram\":{hist_json},\"stats\":{report_json}}}").map_err(io_err)?;
    Ok(())
}

/// Decoder pool size for policy-aware stream opens — the same default
/// [`FramedStream::open`] uses.
fn stream_decoders() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// `parda analyze`: run an analyzer over a trace file and print the binned
/// histogram and timing.
pub fn analyze(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(0, "trace file")?;

    // --verify: integrity check only — header, footer index, and (v2.1)
    // every frame CRC — without running any analysis.
    if args.has("verify") {
        let report = verify_trace(path).map_err(PardaError::from)?;
        writeln!(
            out,
            "ok: version={}.{} frames={} refs={} checksummed={} tagged={}",
            report.version,
            report.minor,
            report.frames,
            report.refs,
            report.checksummed,
            report.tagged
        )
        .map_err(io_err)?;
        return Ok(());
    }

    let engine = args.get("engine").unwrap_or("parda");
    if !matches!(
        engine,
        "parda" | "msg" | "seq" | "naive" | "phased" | "sampled"
    ) {
        return Err(
            format!("unknown engine `{engine}` (parda|msg|seq|naive|phased|sampled)").into(),
        );
    }
    let tree = parse_tree(args)?;
    let bound: Option<u64> = args.get_optional("bound")?;
    let ranks: usize = args.get_parsed("ranks", 4)?;
    let line_bits: u32 = args.get_parsed("line-bits", 0)?;
    let stats_fmt = stats_format(args)?;
    let degradation = parse_degradation(args)?;
    let approx = parse_approx(args)?;
    if approx.is_some_and(|a| !a.is_exact()) && args.get("engine").is_some() {
        return Err("--approx replaces the analysis engine; drop --engine".into());
    }

    // Streamed analysis: decode v2 frames on background threads while the
    // phased analyzer consumes them. Explicit with --stream; automatic for
    // v2 files when the engine is left at its default (or is `phased`) —
    // the phased engine is exact, so the histogram is identical either way.
    let requested_stream = args.has("stream");
    if requested_stream {
        if !matches!(engine, "parda" | "phased") {
            return Err(format!(
                "--stream runs the phased engine and cannot honor --engine {engine}"
            )
            .into());
        }
        if line_bits > 0 {
            return Err("--stream cannot be combined with --line-bits".into());
        }
    }
    let version = peek_version(path).map_err(PardaError::from)?;
    if requested_stream && version != 2 {
        return Err(format!(
            "--stream needs a v2 framed trace with a frame index; `{path}` is v{version}"
        )
        .into());
    }
    let use_stream = requested_stream
        || (version == 2 && line_bits == 0 && (engine == "phased" || args.get("engine").is_none()));

    let chunk: usize = args.get_parsed("chunk", 65_536)?;
    let reduction = if args.has("renumber") {
        Reduction::RenumberRanks
    } else {
        Reduction::ShipToRankZero
    };

    let builder = Analysis::new()
        .tree(tree)
        .ranks(ranks)
        .bound(bound)
        .stats(true)
        .degradation(degradation)
        .approx(approx.unwrap_or_default());

    // The streaming path needs an intact footer index to seek frames; if
    // it is destroyed and the policy is best-effort, fall back to the
    // in-memory salvage decoder below.
    let streamed = if use_stream {
        match FramedStream::open_with_policy(path, stream_decoders(), degradation) {
            Ok(stream) => {
                let builder = builder.clone().mode(Mode::Phased { chunk, reduction });
                let errors = stream.error_handle();
                let counters = stream.stats_handle();
                let recovery = stream.recovery_handle();
                let (hist, report) = builder.run_stream(stream);
                if let Some(e) = errors.take() {
                    return Err(PardaError::from(e).into());
                }
                let mut report = report.expect("stats were requested");
                report.stream = Some(counters.snapshot());
                report.recovery = Some(recovery.lock().unwrap_or_else(|e| e.into_inner()).clone());
                Some((hist, report))
            }
            Err(_) if degradation == Degradation::BestEffort => None,
            Err(e) => return Err(PardaError::from(e).into()),
        }
    } else {
        None
    };

    let (hist, report) = match streamed {
        Some(done) => done,
        None => {
            let (mut trace, rec) =
                load_trace_recovering(path, degradation).map_err(PardaError::from)?;
            if line_bits > 0 {
                trace = parda_trace::xform::to_lines(&trace, line_bits);
            }
            let mode = match engine {
                "seq" => Mode::Seq,
                "naive" => Mode::Naive,
                "msg" => Mode::Msg,
                "phased" => Mode::Phased { chunk, reduction },
                "sampled" => Mode::Sampled {
                    rate_log2: args.get_parsed("rate", 3)?,
                },
                _ => Mode::Threads,
            };
            // run_faulted: the threads engine gets panic-isolated workers
            // with scalar rescue; other engines run unchanged.
            let (hist, report) = builder
                .clone()
                .mode(mode)
                .fault_policy(FaultPolicy::with_degradation(degradation))
                .run_faulted(trace.as_slice())?;
            let mut report = report.expect("stats were requested");
            match report.recovery.as_mut() {
                Some(existing) => existing.merge(&rec),
                None => report.recovery = Some(rec),
            }
            (hist, report)
        }
    };

    if matches!(stats_fmt, StatsFormat::Json) {
        return write_stats_json(&hist, &report, out);
    }
    if args.has("json") {
        let json = serde_json::to_string(&hist).map_err(io_err)?;
        writeln!(out, "{json}").map_err(io_err)?;
    } else {
        writeln!(
            out,
            "engine={} tree={} ranks={} bound={} time={:.3}s",
            report.mode,
            tree.name(),
            report.ranks,
            bound.map_or("none".into(), |b| b.to_string()),
            report.total_ns as f64 / 1e9
        )
        .map_err(io_err)?;
        writeln!(
            out,
            "total={} finite={} inf={} mean_finite={:.1}",
            hist.total(),
            hist.finite_total(),
            hist.infinite(),
            hist.mean_finite_distance().unwrap_or(0.0)
        )
        .map_err(io_err)?;
        write!(out, "{}", hist.to_binned().render()).map_err(io_err)?;
    }
    if matches!(stats_fmt, StatsFormat::Pretty) {
        write!(out, "{}", report.render_pretty()).map_err(io_err)?;
    }
    Ok(())
}

/// `parda mrc`: miss ratio curve at pow-2 capacities (or a custom list).
pub fn mrc(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(0, "trace file")?;
    let stats_fmt = stats_format(args)?;
    let degradation = parse_degradation(args)?;
    let approx = parse_approx(args)?.unwrap_or_default();
    // v2 files stream through the phased engine (exact, same histogram as
    // the sequential analyzer); v1 files use the legacy load-then-analyze.
    // A v2 file whose footer is destroyed falls back to the in-memory
    // salvage decoder under best-effort.
    let streamed = if args.has("stream") || peek_version(path).map_err(PardaError::from)? == 2 {
        let ranks: usize = args.get_parsed("ranks", 4)?;
        match FramedStream::open_with_policy(path, stream_decoders(), degradation) {
            Ok(stream) => {
                let errors = stream.error_handle();
                let counters = stream.stats_handle();
                let recovery = stream.recovery_handle();
                let (hist, report) = Analysis::new()
                    .ranks(ranks)
                    .stats(true)
                    .approx(approx)
                    .run_stream(stream);
                if let Some(e) = errors.take() {
                    return Err(PardaError::from(e).into());
                }
                let mut report = report.expect("stats were requested");
                report.stream = Some(counters.snapshot());
                report.recovery = Some(recovery.lock().unwrap_or_else(|e| e.into_inner()).clone());
                Some((hist, report))
            }
            Err(_) if degradation == Degradation::BestEffort => None,
            Err(e) => return Err(PardaError::from(e).into()),
        }
    } else {
        None
    };
    let (hist, report) = match streamed {
        Some(done) => done,
        None => {
            let (trace, rec) =
                load_trace_recovering(path, degradation).map_err(PardaError::from)?;
            let (hist, report) = Analysis::new()
                .mode(Mode::Seq)
                .stats(true)
                .approx(approx)
                .run(trace.as_slice());
            let mut report = report.expect("stats were requested");
            report.recovery = Some(rec);
            (hist, report)
        }
    };
    if matches!(stats_fmt, StatsFormat::Json) {
        return write_stats_json(&hist, &report, out);
    }
    let curve = match args.get("capacities") {
        Some(list) => {
            let caps: Result<Vec<u64>, _> = list.split(',').map(str::parse).collect();
            hist.miss_ratio_curve(&caps.map_err(|e| format!("bad capacity list: {e}"))?)
        }
        None => hist.miss_ratio_curve_pow2(),
    };
    writeln!(out, "{:>12} {:>10}", "capacity", "miss_ratio").map_err(io_err)?;
    for (c, mr) in curve {
        writeln!(out, "{c:>12} {mr:>10.4}").map_err(io_err)?;
    }
    if matches!(stats_fmt, StatsFormat::Pretty) {
        write!(out, "{}", report.render_pretty()).map_err(io_err)?;
    }
    Ok(())
}

/// `parda stats`: N, M, and address span of a trace file.
pub fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(0, "trace file")?;
    let trace = load_trace(path).map_err(io_err)?;
    writeln!(out, "{}", trace.stats()).map_err(io_err)?;
    Ok(())
}

/// `parda compare`: run every exact engine over a trace, check that they
/// produce identical histograms, and report per-engine timings.
pub fn compare(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(0, "trace file")?;
    let ranks: usize = args.get_parsed("ranks", 4)?;
    let naive_limit: usize = args.get_parsed("naive-limit", 50_000)?;
    let trace = load_trace(path).map_err(io_err)?;

    let mut results: Vec<(String, f64, parda_hist::ReuseHistogram)> = Vec::new();
    let mut run = |name: String, f: &mut dyn FnMut() -> parda_hist::ReuseHistogram| {
        let start = Instant::now();
        let hist = f();
        results.push((name, start.elapsed().as_secs_f64(), hist));
    };

    let base = Analysis::new().ranks(ranks);
    for kind in TreeKind::ALL {
        run(format!("seq/{}", kind.name()), &mut || {
            base.clone()
                .tree(kind)
                .mode(Mode::Seq)
                .run(trace.as_slice())
                .0
        });
    }
    run(format!("parda-threads/p{ranks}"), &mut || {
        base.clone().mode(Mode::Threads).run(trace.as_slice()).0
    });
    run(format!("parda-msg/p{ranks}"), &mut || {
        base.clone().mode(Mode::Msg).run(trace.as_slice()).0
    });
    run(format!("phased/p{ranks}"), &mut || {
        base.clone()
            .mode(Mode::Phased {
                chunk: 65_536,
                reduction: Reduction::ShipToRankZero,
            })
            .run(trace.as_slice())
            .0
    });
    if trace.len() <= naive_limit {
        run("naive-stack".to_string(), &mut || {
            base.clone().mode(Mode::Naive).run(trace.as_slice()).0
        });
    }

    let reference = results[0].2.clone();
    writeln!(out, "{:<22} {:>10} {:>10}", "engine", "time_s", "agrees").map_err(io_err)?;
    let mut all_agree = true;
    for (name, secs, hist) in &results {
        let agrees = *hist == reference;
        all_agree &= agrees;
        writeln!(
            out,
            "{name:<22} {secs:>10.3} {:>10}",
            if agrees { "yes" } else { "NO" }
        )
        .map_err(io_err)?;
    }
    if all_agree {
        writeln!(out, "all engines agree on {} references", trace.len()).map_err(io_err)?;
        Ok(())
    } else {
        Err("engine disagreement detected".into())
    }
}

/// `parda serve`: run the analysis daemon until a signal (or the accept
/// limit) stops it, then print the final metrics.
pub fn serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_sessions: usize = args.get_parsed("max-sessions", 8)?;
    if max_sessions == 0 {
        return Err("--max-sessions must be at least 1".into());
    }
    let max_session_bytes: Option<u64> = args.get_optional("max-session-bytes")?;
    let degradation = parse_degradation(args)?;
    let idle_secs: u64 = args.get_parsed("idle-timeout", 30)?;
    let accept_limit: Option<u64> = args.get_optional("accept-limit")?;
    // 0 = scale with the hardware (the ServerConfig default).
    let shards: usize = args.get_parsed("shards", 0)?;
    let ack_every: u32 = args.get_parsed("ack-every", 0)?;
    let orphan_retention_secs: u64 = args.get_parsed("orphan-retention", 0)?;
    let orphan_budget: u64 = args.get_parsed("orphan-budget", 64 * 1024 * 1024)?;

    // Chaos harnesses arm fault injection through the environment so the
    // serve command line stays identical between clean and chaos runs.
    parda_server::arm_failpoints_from_env()
        .map_err(|e| CliError::from(format!("bad PARDA_FAILPOINTS: {e}")))?;

    let server = Server::bind(ServerConfig {
        addr,
        max_sessions,
        max_session_bytes,
        fault: FaultPolicy::with_degradation(degradation),
        idle_timeout: (idle_secs > 0).then(|| Duration::from_secs(idle_secs)),
        accept_limit,
        default_approx: parse_approx(args)?.unwrap_or_default(),
        shards,
        orphan_retention: Duration::from_secs(orphan_retention_secs),
        orphan_budget,
        ack_every,
        fallback_poller: args.has("fallback-poller"),
    })
    .map_err(PardaError::Io)?;
    let local = server.local_addr().map_err(PardaError::Io)?;

    // The startup line is the port-discovery contract for scripts that
    // bind port 0 (see ci.sh): flush it before blocking in the accept loop.
    writeln!(out, "parda-server listening on {local}").map_err(io_err)?;
    out.flush().map_err(io_err)?;

    parda_server::install_signal_shutdown();
    let started = Instant::now();
    let metrics = server.run().map_err(PardaError::Io)?;
    write!(
        out,
        "{}",
        metrics.render_pretty(started.elapsed().as_secs_f64())
    )
    .map_err(io_err)?;
    Ok(())
}

/// `parda submit`: stream a trace file to a daemon and print the reply.
pub fn submit(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(0, "trace file")?;
    let addr = args.get("addr").ok_or("missing --addr <host:port>")?;
    let stats_fmt = stats_format(args)?;
    if matches!(stats_fmt, StatsFormat::Pretty) {
        return Err("submit supports --stats=json only (the stats document \
                    arrives pre-rendered from the server)"
            .into());
    }

    let mut opts = SubmitOptions::default();
    // Args rejects duplicate options, so multiple pairs ride one
    // comma-separated --config value.
    if let Some(pairs) = args.get("config") {
        for pair in pairs.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad --config entry `{pair}` (want key=value)"))?;
            opts.config.push((k.to_string(), v.to_string()));
        }
    }
    // --approx rides the CONFIG frame; older servers reject the key with a
    // clear error, and servers never see it when the flag is absent.
    if let Some(mode) = parse_approx(args)? {
        opts.config.push(("approx".to_string(), mode.spec()));
    }
    opts.encoding = match args.get("encoding").unwrap_or("delta") {
        "raw" => Encoding::Raw,
        "delta" => Encoding::DeltaVarint,
        other => return Err(format!("unknown encoding `{other}`").into()),
    };
    opts.frame_refs = args.get_parsed("frame-refs", opts.frame_refs)?;
    if matches!(stats_fmt, StatsFormat::Json) {
        opts.reply = parda_server::ReplyFormat::Json;
    }
    let retries: u32 = args.get_parsed("retries", 1)?;
    if retries == 0 {
        return Err("--retries must be at least 1".into());
    }
    opts.retry = parda_server::RetryPolicy::with_attempts(retries);
    let backoff_ms: u64 = args.get_parsed("backoff", 50)?;
    opts.retry.backoff = Duration::from_millis(backoff_ms);
    let timeout_secs: u64 = args.get_parsed("timeout", 30)?;
    // 0 keeps the OS defaults: block indefinitely.
    let deadline = (timeout_secs > 0).then(|| Duration::from_secs(timeout_secs));
    opts.retry.connect_timeout = deadline;
    opts.retry.io_timeout = deadline;

    let reply = parda_server::submit_file(addr, path, &opts)?;

    if matches!(stats_fmt, StatsFormat::Json) {
        let doc = reply
            .stats_json
            .ok_or_else(|| CliError::Fault(PardaError::Corrupt("server sent no stats".into())))?;
        writeln!(out, "{doc}").map_err(io_err)?;
        return Ok(());
    }
    let hist = reply.histogram;
    if args.has("json") {
        let json = serde_json::to_string(&hist).map_err(io_err)?;
        writeln!(out, "{json}").map_err(io_err)?;
    } else if args.has("mrc") {
        writeln!(out, "{:>12} {:>10}", "capacity", "miss_ratio").map_err(io_err)?;
        for (c, mr) in hist.miss_ratio_curve_pow2() {
            writeln!(out, "{c:>12} {mr:>10.4}").map_err(io_err)?;
        }
    } else {
        writeln!(
            out,
            "session={} total={} finite={} inf={} mean_finite={:.1}",
            reply.session,
            hist.total(),
            hist.finite_total(),
            hist.infinite(),
            hist.mean_finite_distance().unwrap_or(0.0)
        )
        .map_err(io_err)?;
        write!(out, "{}", hist.to_binned().render()).map_err(io_err)?;
    }
    Ok(())
}

/// Render the shared-cache summary and partition table from a
/// [`SharedMetrics`] block — the one rendering both the offline analysis
/// and the parsed server reply flow through, so the two paths print
/// identically when the recommendations agree.
fn render_partition(m: &SharedMetrics, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "threads={} model={} shared_addrs={} sharing_ratio={:.4}",
        m.threads, m.model, m.shared_addrs, m.sharing_ratio
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "partition: capacity={} granularity={} predicted_misses={}",
        m.capacity, m.granularity, m.predicted_misses
    )
    .map_err(io_err)?;
    writeln!(out, "{:>8} {:>12} {:>8}", "thread", "refs", "alloc").map_err(io_err)?;
    for i in 0..m.threads {
        writeln!(
            out,
            "{:>8} {:>12} {:>8}",
            i,
            m.per_thread_refs.get(i).copied().unwrap_or(0),
            m.allocation.get(i).copied().unwrap_or(0)
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// A probabilistic model with explicit weights needs one weight per thread
/// — caught here so the interleaver's assertion never fires on user input.
fn check_model_arity(model: &InterleaveModel, threads: usize) -> Result<(), CliError> {
    if let InterleaveModel::Probabilistic { weights, .. } = model {
        if !weights.is_empty() && weights.len() != threads {
            return Err(format!(
                "--model prob has {} weights for {threads} threads",
                weights.len()
            )
            .into());
        }
    }
    Ok(())
}

/// `parda partition`: analyze a thread-tagged shared reference stream and
/// recommend a static cache partition, offline or on a daemon.
pub fn partition(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut paths = Vec::new();
    while let Some(p) = args.positional(paths.len()) {
        paths.push(p.to_string());
    }
    if paths.is_empty() {
        return Err(
            "missing required argument: trace file(s) — one thread-tagged trace, \
             or one plain trace per thread"
                .into(),
        );
    }

    let capacity: u64 = args
        .get_optional("capacity")?
        .ok_or("missing --capacity <lines>")?;
    if capacity == 0 {
        return Err("--capacity must be at least 1 line".into());
    }
    let granularity: u64 = args.get_parsed("granularity", default_granularity(capacity))?;
    if granularity == 0 || granularity > capacity {
        return Err(
            format!("--granularity must be between 1 and the capacity ({capacity})").into(),
        );
    }
    let model: Option<InterleaveModel> = args.get_optional("model")?;
    let tree = parse_tree(args)?;
    let stats_fmt = stats_format(args)?;

    // Build the thread-tagged shared stream: either a recorded v2.2
    // interleaving, or per-thread plain traces merged under the model.
    let started = Instant::now();
    let (trace, label) = if paths.len() == 1 {
        let tagged = load_tagged_trace(&paths[0]).map_err(|e| {
            if e.to_string().contains("not thread-tagged") {
                CliError::Usage(format!(
                    "`{}` is not thread-tagged: pass one v2.2 tagged trace \
                     (gen --kernel mt-…) or one plain trace per thread",
                    paths[0]
                ))
            } else {
                CliError::Fault(PardaError::from(e))
            }
        })?;
        match &model {
            None => (tagged, "as-recorded".to_string()),
            Some(m) => {
                check_model_arity(m, tagged.thread_ids().len())?;
                let per_thread = tagged.per_thread();
                let slices: Vec<&[Addr]> = per_thread.iter().map(|(_, t)| t.as_slice()).collect();
                (interleave_threads(&slices, m), m.to_string())
            }
        }
    } else {
        let m = model.clone().unwrap_or_else(InterleaveModel::round_robin);
        check_model_arity(&m, paths.len())?;
        let mut loaded = Vec::with_capacity(paths.len());
        for p in &paths {
            loaded.push(load_trace(p).map_err(io_err)?);
        }
        let slices: Vec<&[Addr]> = loaded.iter().map(|t| t.as_slice()).collect();
        (interleave_threads(&slices, &m), m.to_string())
    };

    let threads = trace.thread_ids().len();
    if threads == 0 {
        return Err("partition needs at least one reference".into());
    }
    if capacity < granularity * threads as u64 {
        return Err(format!(
            "partition capacity {capacity} cannot give {threads} threads \
             {granularity} lines each"
        )
        .into());
    }

    // Server path: the stream rides a thread-tagged session and the daemon
    // runs the same concurrent analyzer; the printed recommendation comes
    // from its reply, not a local re-analysis.
    if let Some(addr) = args.get("addr") {
        if matches!(stats_fmt, StatsFormat::Pretty) {
            return Err("partition --addr supports --stats=json only (the stats \
                        document arrives pre-rendered from the server)"
                .into());
        }
        let mut opts = SubmitOptions {
            reply: parda_server::ReplyFormat::Json,
            ..SubmitOptions::default()
        };
        opts.config
            .push(("partition".to_string(), format!("{capacity}/{granularity}")));
        opts.config.push(("tree".to_string(), tree.name().into()));
        opts.frame_refs = args.get_parsed("frame-refs", opts.frame_refs)?;
        let retries: u32 = args.get_parsed("retries", 1)?;
        if retries == 0 {
            return Err("--retries must be at least 1".into());
        }
        opts.retry = parda_server::RetryPolicy::with_attempts(retries);
        let backoff_ms: u64 = args.get_parsed("backoff", 50)?;
        opts.retry.backoff = Duration::from_millis(backoff_ms);
        let timeout_secs: u64 = args.get_parsed("timeout", 30)?;
        let deadline = (timeout_secs > 0).then(|| Duration::from_secs(timeout_secs));
        opts.retry.connect_timeout = deadline;
        opts.retry.io_timeout = deadline;

        let reply = parda_server::submit_tagged(addr, &trace, &opts)?;
        let doc = reply
            .stats_json
            .ok_or_else(|| CliError::Fault(PardaError::Corrupt("server sent no stats".into())))?;
        if matches!(stats_fmt, StatsFormat::Json) {
            writeln!(out, "{doc}").map_err(io_err)?;
            return Ok(());
        }
        if args.has("json") {
            let json = serde_json::to_string(&reply.histogram).map_err(io_err)?;
            writeln!(out, "{json}").map_err(io_err)?;
            return Ok(());
        }
        let parsed: serde_json::Value = serde_json::from_str(doc.trim()).map_err(io_err)?;
        let shared = parsed
            .field("stats")
            .and_then(|s| s.field("shared"))
            .map_err(io_err)?;
        let metrics = SharedMetrics::from_value(shared).map_err(io_err)?;
        return render_partition(&metrics, out);
    }

    let analysis = analyze_concurrent_kind(&trace, tree);
    let plan = recommend_partition(&analysis.per_thread_solo, capacity, granularity);
    let metrics = shared_metrics(&analysis, &label, Some(&plan));

    if matches!(stats_fmt, StatsFormat::Json) {
        let report = Report {
            mode: "concurrent".to_string(),
            tree: tree.name().to_string(),
            ranks: 1,
            trace_refs: trace.len() as u64,
            total_ns: started.elapsed().as_nanos() as u64,
            shared: Some(metrics),
            ..Report::default()
        };
        return write_stats_json(&analysis.shared, &report, out);
    }
    if args.has("json") {
        let json = serde_json::to_string(&analysis.shared).map_err(io_err)?;
        writeln!(out, "{json}").map_err(io_err)?;
        return Ok(());
    }
    render_partition(&metrics, out)?;
    if matches!(stats_fmt, StatsFormat::Pretty) {
        let report = Report {
            mode: "concurrent".to_string(),
            tree: tree.name().to_string(),
            ranks: 1,
            trace_refs: trace.len() as u64,
            total_ns: started.elapsed().as_nanos() as u64,
            shared: Some(metrics),
            ..Report::default()
        };
        write!(out, "{}", report.render_pretty()).map_err(io_err)?;
    }
    Ok(())
}

/// `parda spec`: the paper's Table IV parameters and slowdown factors.
pub fn spec(_args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "{:<12} {:>12} {:>16} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "benchmark", "M", "N", "orig_s", "olken_s", "parda_s", "olken_x", "parda_x"
    )
    .map_err(io_err)?;
    for b in &SPEC2006 {
        writeln!(
            out,
            "{:<12} {:>12} {:>16} {:>8.2} {:>10.2} {:>10.2} {:>8.1} {:>8.1}",
            b.name,
            b.m_paper,
            b.n_paper,
            b.orig_secs,
            b.olken_secs,
            b.parda_secs,
            b.olken_slowdown(),
            b.parda_slowdown()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

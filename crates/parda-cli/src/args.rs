//! Minimal argument parsing: positional values plus `--key value` and
//! `--flag` switches.

use std::collections::{HashMap, HashSet};

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Args {
    /// Parse raw tokens. `--key value` becomes an option, a trailing `--key`
    /// (or one followed by another `--…` token) becomes a boolean switch.
    pub fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare `--` is not supported".into());
                }
                match tokens.get(i + 1) {
                    Some(value) if !value.starts_with("--") => {
                        if args
                            .options
                            .insert(key.to_string(), value.clone())
                            .is_some()
                        {
                            return Err(format!("duplicate option --{key}"));
                        }
                        i += 2;
                    }
                    _ => {
                        args.switches.insert(key.to_string());
                        i += 1;
                    }
                }
            } else {
                args.positional.push(tok.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Parse raw tokens against a list of known boolean switches.
    ///
    /// Unlike [`Args::parse`], this form is not greedy-ambiguous:
    ///
    /// * `--key=value` is always an option — including for known switches,
    ///   which is how `--stats=json` selects a format while bare `--stats`
    ///   stays a switch;
    /// * a known switch never consumes the next token (`--stream file.trc`
    ///   leaves `file.trc` positional);
    /// * any other `--key` *must* be followed by a value token; a dangling
    ///   option (`--bound` at the end) or a flag-shaped value
    ///   (`--bound --ranks`) is an error instead of silently becoming a
    ///   switch.
    pub fn parse_with_switches(tokens: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare `--` is not supported".into());
                }
                if let Some((k, v)) = key.split_once('=') {
                    if k.is_empty() {
                        return Err(format!("malformed option `{tok}`"));
                    }
                    if args.options.insert(k.to_string(), v.to_string()).is_some() {
                        return Err(format!("duplicate option --{k}"));
                    }
                    i += 1;
                } else if switches.contains(&key) {
                    args.switches.insert(key.to_string());
                    i += 1;
                } else {
                    match tokens.get(i + 1) {
                        Some(value) if !value.starts_with("--") => {
                            if args
                                .options
                                .insert(key.to_string(), value.clone())
                                .is_some()
                            {
                                return Err(format!("duplicate option --{key}"));
                            }
                            i += 2;
                        }
                        Some(flag) => {
                            return Err(format!("option --{key} requires a value, got `{flag}`"))
                        }
                        None => return Err(format!("option --{key} requires a value")),
                    }
                }
            } else {
                args.positional.push(tok.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Positional argument at `idx`.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// Required positional argument with a descriptive error.
    pub fn require_positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional(idx)
            .ok_or_else(|| format!("missing required argument: {what}"))
    }

    /// String option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// Parse an option as `T`, with a default when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }

    /// Parse an optional option as `Option<T>`.
    pub fn get_optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse(&["file.trc", "extra", "--ranks", "8", "--verbose"]);
        assert_eq!(a.positional(0), Some("file.trc"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.get("ranks"), Some("8"));
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn option_greedily_consumes_next_token() {
        // Documented semantics: `--flag value` is an option even if the
        // caller meant a switch; switches must come last or before another
        // `--` token.
        let a = parse(&["--verbose", "extra"]);
        assert_eq!(a.get("verbose"), Some("extra"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn switch_followed_by_option() {
        let a = parse(&["--fast", "--bound", "1024"]);
        assert!(a.has("fast"));
        assert_eq!(a.get("bound"), Some("1024"));
    }

    #[test]
    fn get_parsed_with_default() {
        let a = parse(&["--n", "42"]);
        assert_eq!(a.get_parsed("n", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("missing", 7u64).unwrap(), 7);
        assert!(a.get_parsed::<u64>("n", 0).is_ok());
        let bad = parse(&["--n", "xyz"]);
        assert!(bad.get_parsed::<u64>("n", 0).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        let tokens: Vec<String> = ["--a", "1", "--a", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(Args::parse(&tokens).is_err());
    }

    #[test]
    fn require_positional_errors_nicely() {
        let a = parse(&[]);
        let err = a.require_positional(0, "trace file").unwrap_err();
        assert!(err.contains("trace file"));
    }

    fn parse_sw(tokens: &[&str], switches: &[&str]) -> Result<Args, String> {
        Args::parse_with_switches(
            &tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            switches,
        )
    }

    #[test]
    fn switches_never_consume_values() {
        let a = parse_sw(&["--stream", "file.trc", "--ranks", "8"], &["stream"]).unwrap();
        assert!(a.has("stream"));
        assert_eq!(a.positional(0), Some("file.trc"));
        assert_eq!(a.get("ranks"), Some("8"));
    }

    #[test]
    fn key_equals_value_forms() {
        let a = parse_sw(&["--stats=json", "--ranks=4", "t.trc"], &["stats"]).unwrap();
        assert_eq!(a.get("stats"), Some("json"));
        assert!(!a.has("stats"), "--stats=json is an option, not a switch");
        assert_eq!(a.get("ranks"), Some("4"));
        assert_eq!(a.positional(0), Some("t.trc"));

        let bare = parse_sw(&["--stats"], &["stats"]).unwrap();
        assert!(bare.has("stats"));
        assert_eq!(bare.get("stats"), None);
    }

    #[test]
    fn dangling_and_flag_shaped_values_rejected() {
        let err = parse_sw(&["--bound"], &["stats"]).unwrap_err();
        assert!(err.contains("--bound requires a value"), "{err}");
        let err = parse_sw(&["--bound", "--ranks", "4"], &["stats"]).unwrap_err();
        assert!(err.contains("--bound requires a value"), "{err}");
        let err = parse_sw(&["--=x"], &[]).unwrap_err();
        assert!(err.contains("malformed"), "{err}");
    }

    #[test]
    fn duplicate_options_rejected_in_switch_mode() {
        assert!(parse_sw(&["--ranks", "1", "--ranks=2"], &[]).is_err());
        assert!(parse_sw(&["--stats=json", "--stats=pretty"], &["stats"]).is_err());
    }
}

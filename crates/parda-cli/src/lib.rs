//! Implementation of the `parda` command-line tool.
//!
//! Subcommands:
//!
//! * `parda gen` — generate synthetic traces (SPEC models, patterns, or
//!   pinsim kernels) into the binary trace format;
//! * `parda analyze` — run any analyzer (sequential / naive / parallel /
//!   bounded) over a trace file and print the binned histogram;
//! * `parda mrc` — print the miss-ratio curve;
//! * `parda stats` — print trace shape statistics (N, M, span);
//! * `parda spec` — print the paper's Table IV benchmark parameters;
//! * `parda compare` — run every engine, verify agreement, report timings;
//! * `parda serve` — run the analysis daemon (std TCP, graceful drain);
//! * `parda submit` — stream a trace to a daemon, print the reply;
//! * `parda partition` — thread-aware shared-cache analysis and a static
//!   partition recommendation, offline or on a daemon.
//!
//! Argument parsing is hand-rolled ([`Args`]) to keep the dependency
//! surface at the workspace's approved set.

pub mod args;
pub mod commands;

pub use args::Args;
use parda_core::PardaError;

/// A failed CLI invocation, classified for the exit code.
///
/// Usage mistakes (bad flags, unknown engines) exit 1 as before; analysis
/// faults carry their [`PardaError`] class through to a distinct exit
/// code so scripts can react per failure class:
///
/// | code | meaning |
/// |---|---|
/// | 0 | success |
/// | 1 | usage error / engine disagreement / bad configuration |
/// | 2 | corrupt trace input ([`PardaError::Corrupt`]) |
/// | 3 | I/O failure ([`PardaError::Io`]) or connection lost past the retry budget ([`PardaError::ConnectionLost`]) |
/// | 4 | worker panic, retries exhausted ([`PardaError::WorkerPanic`]) |
/// | 5 | watchdog stall ([`PardaError::Stall`]) |
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation or any non-fault failure: exit code 1.
    Usage(String),
    /// A classified analysis fault: exit code 2–5 by variant.
    Fault(PardaError),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Fault(e) => match e {
                PardaError::Corrupt(_) => 2,
                PardaError::Io(_) => 3,
                PardaError::ConnectionLost { .. } => 3,
                PardaError::WorkerPanic { .. } => 4,
                PardaError::Stall { .. } => 5,
                PardaError::Config(_) => 1,
            },
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Fault(e) => write!(f, "[{}] {e}", e.class()),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

impl From<PardaError> for CliError {
    fn from(e: PardaError) -> Self {
        CliError::Fault(e)
    }
}

/// Entry point shared by the binary and the integration tests: everything
/// — results and diagnostics — goes to `out`. Returns the process exit
/// code (see [`CliError::exit_code`]).
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match run_inner(argv, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            e.exit_code()
        }
    }
}

/// [`run`] with split output: results to `out` (stdout), the one-line
/// diagnostic to `err` (stderr) — what the binary uses, so piped JSON
/// stays clean even on failure.
pub fn run_split(
    argv: &[String],
    out: &mut dyn std::io::Write,
    err: &mut dyn std::io::Write,
) -> i32 {
    match run_inner(argv, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(err, "error: {e}");
            e.exit_code()
        }
    }
}

fn run_inner(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(format!("no subcommand given\n\n{}", commands::USAGE).into());
    };
    let args = Args::parse_with_switches(&argv[1..], commands::SWITCHES)?;
    match command.as_str() {
        "gen" => commands::gen(&args, out),
        "analyze" => commands::analyze(&args, out),
        "mrc" => commands::mrc(&args, out),
        "stats" => commands::stats(&args, out),
        "spec" => commands::spec(&args, out),
        "compare" => commands::compare(&args, out),
        "serve" => commands::serve(&args, out),
        "submit" => commands::submit(&args, out),
        "partition" => commands::partition(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", commands::USAGE).map_err(|e| CliError::Usage(e.to_string()))
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{}", commands::USAGE).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> (i32, String) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_subcommand_is_an_error() {
        let (code, out) = run_to_string(&[]);
        assert_eq!(code, 1);
        assert!(out.contains("usage"), "got: {out}");
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let (code, out) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("analyze"));
        assert!(out.contains("gen"));
    }

    #[test]
    fn spec_lists_all_benchmarks() {
        let (code, out) = run_to_string(&["spec"]);
        assert_eq!(code, 0);
        for name in ["perlbench", "mcf", "lbm", "sphinx3"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn gen_analyze_round_trip() {
        let dir = std::env::temp_dir().join("parda-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        let path_str = path.to_str().unwrap();

        let (code, out) = run_to_string(&[
            "gen", "--spec", "gcc", "--refs", "20000", "--seed", "3", "--out", path_str,
        ]);
        assert_eq!(code, 0, "gen failed: {out}");
        assert!(out.contains("20000"));

        let (code, out) = run_to_string(&["stats", path_str]);
        assert_eq!(code, 0);
        assert!(out.contains("N=20000"), "got: {out}");

        let (code, out) = run_to_string(&["analyze", path_str, "--ranks", "3"]);
        assert_eq!(code, 0, "analyze failed: {out}");
        assert!(out.contains("total"), "got: {out}");
        assert!(out.contains("inf"), "got: {out}");

        let (code, seq_out) = run_to_string(&["analyze", path_str, "--engine", "seq"]);
        assert_eq!(code, 0, "seq analyze failed: {seq_out}");

        let (code, out) = run_to_string(&["mrc", path_str]);
        assert_eq!(code, 0);
        assert!(out.contains("capacity"), "got: {out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gen_pattern_and_kernel_sources() {
        let dir = std::env::temp_dir().join("parda-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("cyc.trc");
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "cyclic",
            "--footprint",
            "64",
            "--refs",
            "1000",
            "--out",
            p1.to_str().unwrap(),
        ]);
        assert_eq!(code, 0);

        let p2 = dir.join("mm.trc");
        let (code, _) = run_to_string(&[
            "gen",
            "--kernel",
            "matmul",
            "--size",
            "8",
            "--out",
            p2.to_str().unwrap(),
        ]);
        assert_eq!(code, 0);

        let (code, out) = run_to_string(&["stats", p2.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("N=1536"), "3*8^3 refs: {out}"); // 3·n³
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn phased_sampled_and_vector_engines() {
        let dir = std::env::temp_dir().join("parda-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "zipf",
            "--footprint",
            "500",
            "--refs",
            "30000",
            "--out",
            p,
        ]);
        assert_eq!(code, 0);

        // All exact engines agree on the total line.
        let mut totals = Vec::new();
        for extra in [
            vec!["--engine", "seq", "--tree", "vector"],
            vec!["--engine", "phased", "--chunk", "1000", "--ranks", "3"],
            vec![
                "--engine",
                "phased",
                "--chunk",
                "1000",
                "--ranks",
                "3",
                "--renumber",
            ],
            vec!["--engine", "parda", "--ranks", "2", "--tree", "avl"],
        ] {
            let mut argv = vec!["analyze", p];
            argv.extend(extra.iter().copied());
            let (code, out) = run_to_string(&argv);
            assert_eq!(code, 0, "{argv:?}: {out}");
            let total_line = out
                .lines()
                .find(|l| l.starts_with("total="))
                .unwrap_or_else(|| panic!("no total in {out}"))
                .to_string();
            totals.push(total_line);
        }
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "engines disagree: {totals:?}"
        );

        // The sampled engine runs and reports an estimate.
        let (code, out) = run_to_string(&["analyze", p, "--engine", "sampled", "--rate", "2"]);
        assert_eq!(code, 0, "sampled failed: {out}");
        assert!(out.contains("total="));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_json_is_one_document_accounting_for_every_reference() {
        use serde_json::Value;

        fn u64_of(v: &Value) -> u64 {
            match v {
                Value::U64(x) => *x,
                Value::I64(x) => u64::try_from(*x).unwrap(),
                other => panic!("expected integer, got {other:?}"),
            }
        }

        let dir = std::env::temp_dir().join("parda-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "zipf",
            "--footprint",
            "400",
            "--refs",
            "24000",
            "--out",
            p,
        ]);
        assert_eq!(code, 0);

        let (code, out) =
            run_to_string(&["analyze", p, "--engine=msg", "--ranks=8", "--stats=json"]);
        assert_eq!(code, 0, "{out}");
        let doc: Value =
            serde_json::from_str(out.trim()).expect("--stats=json stdout is one JSON document");
        let hist_infinite = u64_of(doc.field("histogram").unwrap().field("infinite").unwrap());
        let stats = doc.field("stats").unwrap();
        assert_eq!(
            stats.field("mode").unwrap(),
            &Value::Str("parda-msg".into())
        );
        let Value::Array(per_rank) = stats.field("per_rank").unwrap() else {
            panic!("per_rank is not an array");
        };
        assert_eq!(per_rank.len(), 8);

        // Every reference lands in exactly one rank's chunk.
        let total_refs: u64 = per_rank
            .iter()
            .map(|rm| u64_of(rm.field("refs").unwrap()))
            .sum();
        assert_eq!(total_refs, 24000);

        // Cold misses only surface on rank 0 (all other ranks forward their
        // unresolved infinities leftward), so rank 0's count must equal the
        // histogram's infinity bucket.
        let rank0 = &per_rank[0];
        assert_eq!(u64_of(rank0.field("rank").unwrap()), 0);
        let cold = u64_of(rank0.field("engine").unwrap().field("cold_misses").unwrap());
        assert_eq!(cold, hist_infinite);

        // The headline per-rank timing fields are all present, including
        // the cascade batching breakdown (per-round merge lengths and
        // batch-delete counts plus their timings).
        for rm in per_rank {
            rm.field("chunk_ns").unwrap();
            rm.field("cascade_ns").unwrap();
            rm.field("infinities_forwarded").unwrap();
            rm.field("merge_ns").unwrap();
            rm.field("batch_ns").unwrap();
            let Value::Array(lens) = rm.field("round_infinity_lens").unwrap() else {
                panic!("round_infinity_lens is not an array");
            };
            let Value::Array(deletes) = rm.field("round_batch_deletes").unwrap() else {
                panic!("round_batch_deletes is not an array");
            };
            assert_eq!(lens.len(), deletes.len(), "one delete tally per round");
            // Space-optimized absorb: every batch-deleted stream element is
            // one engine stream hit.
            let hits = u64_of(rm.field("engine").unwrap().field("stream_hits").unwrap());
            assert_eq!(deletes.iter().map(u64_of).sum::<u64>(), hits);
        }

        // Streamed analysis attaches decoder-pipeline counters.
        let (code, out) = run_to_string(&["analyze", p, "--stream", "--stats=json"]);
        assert_eq!(code, 0, "{out}");
        let doc: Value = serde_json::from_str(out.trim()).unwrap();
        let stream = doc.field("stats").unwrap().field("stream").unwrap();
        assert_eq!(u64_of(stream.field("refs_decoded").unwrap()), 24000);
        assert!(u64_of(stream.field("frames_decoded").unwrap()) > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn analyze_rejects_bad_engine() {
        let (code, out) = run_to_string(&["analyze", "/nonexistent", "--engine", "warp"]);
        assert_eq!(code, 1);
        assert!(out.contains("error"), "got: {out}");
    }

    /// Write a v2.1 Raw trace with 64-ref frames; returns the path and the
    /// addresses. Raw layout is deterministic: 24-byte header, then per
    /// frame a 12-byte inline header + 64×8 payload bytes.
    fn write_framed(name: &str, refs: usize) -> (std::path::PathBuf, Vec<u64>) {
        use parda_trace::io::{write_trace_v2_framed, Encoding};
        let dir = std::env::temp_dir().join("parda-cli-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let trace: Vec<u64> = (0..refs as u64).map(|i| (i * 11) % 97).collect();
        let f = std::fs::File::create(&path).unwrap();
        write_trace_v2_framed(
            f,
            &parda_trace::Trace::from_vec(trace.clone()),
            Encoding::Raw,
            64,
        )
        .unwrap();
        (path, trace)
    }

    #[test]
    fn missing_file_exits_3_bad_policy_exits_1() {
        let (code, out) = run_to_string(&["analyze", "/definitely/not/here.trc"]);
        assert_eq!(code, 3, "i/o failure class: {out}");
        assert!(out.contains("[io]"), "got: {out}");

        let (path, _) = write_framed("policy.trc", 128);
        let p = path.to_str().unwrap();
        let (code, out) = run_to_string(&["analyze", p, "--degradation", "yolo"]);
        assert_eq!(code, 1, "config errors are usage-class: {out}");
        assert!(out.contains("degradation"), "got: {out}");
    }

    #[test]
    fn corrupt_trace_exit_codes_follow_the_degradation_ladder() {
        let (path, _) = write_framed("corrupt.trc", 640);
        let p = path.to_str().unwrap();
        // Flip a payload byte in frame 3 (offset 24 + 3·(12+512) + 12).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24 + 3 * (12 + 512) + 12 + 7] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        // Strict (default): corrupt class, exit 2 — both load and stream.
        for extra in [&[][..], &["--stream"][..]] {
            let mut argv = vec!["analyze", p, "--engine", "parda"];
            argv.extend_from_slice(extra);
            let (code, out) = run_to_string(&argv);
            assert_eq!(code, 2, "{argv:?}: {out}");
            assert!(out.contains("[corrupt]"), "got: {out}");
        }

        // Lossy rungs: clean exit, frame 3's 64 references dropped.
        for policy in ["repair", "best-effort"] {
            let (code, out) =
                run_to_string(&["analyze", p, "--degradation", policy, "--engine", "parda"]);
            assert_eq!(code, 0, "{policy}: {out}");
            assert!(out.contains("total=576"), "{policy}: {out}");
        }

        // mrc honours the same ladder.
        let (code, _) = run_to_string(&["mrc", p]);
        assert_eq!(code, 2);
        let (code, _) = run_to_string(&["mrc", p, "--degradation=best-effort"]);
        assert_eq!(code, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_json_reports_recovery_counters() {
        use serde_json::Value;
        let (path, _) = write_framed("recovery.trc", 640);
        let p = path.to_str().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24 + 5 * (12 + 512) + 12] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        for extra in [&[][..], &["--stream"][..]] {
            let mut argv = vec!["analyze", p, "--degradation=best-effort", "--stats=json"];
            argv.extend_from_slice(extra);
            let (code, out) = run_to_string(&argv);
            assert_eq!(code, 0, "{argv:?}: {out}");
            let doc: Value = serde_json::from_str(out.trim()).unwrap();
            let rec = doc.field("stats").unwrap().field("recovery").unwrap();
            let Value::Array(skipped) = rec.field("skipped_frames").unwrap() else {
                panic!("skipped_frames is not an array");
            };
            assert_eq!(skipped.len(), 1, "{argv:?}");
            assert_eq!(rec.field("refs_dropped").unwrap(), &Value::U64(64));
            assert_eq!(rec.field("crc_failures").unwrap(), &Value::U64(1));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_checks_integrity_without_analysis() {
        let (path, _) = write_framed("verify.trc", 640);
        let p = path.to_str().unwrap();
        let (code, out) = run_to_string(&["analyze", p, "--verify"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("version=2.1"), "got: {out}");
        assert!(out.contains("frames=10"), "got: {out}");
        assert!(out.contains("checksummed=true"), "got: {out}");

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24 + 12 + 3] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let (code, out) = run_to_string(&["analyze", p, "--verify"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("CRC"), "got: {out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_split_routes_diagnostics_to_stderr() {
        let argv: Vec<String> = ["analyze", "/definitely/not/here.trc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_split(&argv, &mut out, &mut err);
        assert_eq!(code, 3);
        assert!(out.is_empty(), "stdout stays clean on failure");
        let err = String::from_utf8(err).unwrap();
        assert!(err.contains("error: [io]"), "got: {err}");
    }

    #[test]
    fn serve_with_accept_limit_zero_starts_and_drains_cleanly() {
        let (code, out) = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--accept-limit",
            "0",
            "--idle-timeout",
            "5",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(
            out.contains("parda-server listening on 127.0.0.1:"),
            "{out}"
        );
        assert!(
            out.contains("sessions opened=0"),
            "final metrics line: {out}"
        );
    }

    #[test]
    fn serve_rejects_zero_session_cap() {
        let (code, out) = run_to_string(&["serve", "--max-sessions", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("max-sessions"), "{out}");
    }

    #[test]
    fn submit_matches_offline_analyze_and_maps_error_classes() {
        use parda_server::{Server, ServerConfig};

        let dir = std::env::temp_dir().join("parda-cli-submit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&[
            "gen", "--spec", "gcc", "--refs", "30000", "--seed", "9", "--out", p,
        ]);
        assert_eq!(code, 0);

        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.shutdown_handle();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        // --json output is byte-identical to the offline analyzer's.
        let (code, offline) = run_to_string(&["analyze", p, "--json"]);
        assert_eq!(code, 0, "{offline}");
        let (code, served) = run_to_string(&["submit", p, "--addr", &addr, "--json"]);
        assert_eq!(code, 0, "{served}");
        assert_eq!(served, offline, "serve+submit must equal offline analyze");

        // Session config pairs ride one comma-separated --config value, and
        // the summary/mrc renderings work from the binary reply.
        let (code, out) = run_to_string(&[
            "submit",
            p,
            "--addr",
            &addr,
            "--config",
            "tree=avl,ranks=2,engine=threads",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("total=30000"), "{out}");
        let (code, out) = run_to_string(&["submit", p, "--addr", &addr, "--mrc"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("capacity"), "{out}");

        // --stats=json returns the server's full document.
        let (code, out) = run_to_string(&["submit", p, "--addr", &addr, "--stats=json"]);
        assert_eq!(code, 0, "{out}");
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        doc.field("histogram").unwrap();
        doc.field("stats").unwrap();

        // Server-side config faults keep the usage exit class…
        let (code, out) = run_to_string(&["submit", p, "--addr", &addr, "--config", "tree=btree"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("[config]"), "{out}");
        // …and bad --config syntax is caught before any connection.
        let (code, out) = run_to_string(&["submit", p, "--addr", &addr, "--config", "nope"]);
        assert_eq!(code, 1);
        assert!(out.contains("key=value"), "{out}");

        stop.shutdown();
        daemon.join().unwrap();

        // With the daemon gone, submit fails in the i/o class (exit 3).
        let (code, out) = run_to_string(&["submit", p, "--addr", &addr]);
        assert_eq!(code, 3, "{out}");
        assert!(out.contains("[io]"), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partition_offline_matches_server_and_round_trips_mt_kernels() {
        use parda_server::{Server, ServerConfig};
        use serde_json::Value;

        let dir = std::env::temp_dir().join("parda-cli-partition-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mt.trc");
        let p = path.to_str().unwrap();

        // gen writes a thread-tagged v2.2 trace for mt- kernels…
        let (code, out) = run_to_string(&[
            "gen",
            "--kernel",
            "mt-matmul",
            "--size",
            "12",
            "--threads",
            "3",
            "--out",
            p,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("3 threads"), "{out}");
        assert!(out.contains("v2.2 tagged"), "{out}");

        // …that --verify identifies as tagged.
        let (code, out) = run_to_string(&["analyze", p, "--verify"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("version=2.2"), "{out}");
        assert!(out.contains("tagged=true"), "{out}");

        // Offline partition renders the recommendation table.
        let (code, offline) = run_to_string(&["partition", p, "--capacity", "512"]);
        assert_eq!(code, 0, "{offline}");
        assert!(offline.contains("threads=3"), "{offline}");
        assert!(offline.contains("model=as-recorded"), "{offline}");
        assert!(offline.contains("capacity=512 granularity=8"), "{offline}");

        // Acceptance criterion: the server verb returns the identical
        // recommendation — the default renderings match byte for byte.
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.shutdown_handle();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let (code, served) = run_to_string(&["partition", p, "--capacity", "512", "--addr", &addr]);
        assert_eq!(code, 0, "{served}");
        assert_eq!(served, offline, "server partition must equal offline");

        // --stats=json carries SharedMetrics in both paths, and the
        // recommendation fields agree.
        let (code, off_doc) = run_to_string(&["partition", p, "--capacity=512", "--stats=json"]);
        assert_eq!(code, 0, "{off_doc}");
        let (code, srv_doc) = run_to_string(&[
            "partition",
            p,
            "--capacity=512",
            "--stats=json",
            "--addr",
            &addr,
        ]);
        assert_eq!(code, 0, "{srv_doc}");
        let off: Value = serde_json::from_str(off_doc.trim()).unwrap();
        let srv: Value = serde_json::from_str(srv_doc.trim()).unwrap();
        assert_eq!(
            off.field("histogram").unwrap(),
            srv.field("histogram").unwrap()
        );
        let off_shared = off.field("stats").unwrap().field("shared").unwrap();
        let srv_shared = srv.field("stats").unwrap().field("shared").unwrap();
        for key in ["capacity", "granularity", "allocation", "predicted_misses"] {
            assert_eq!(
                off_shared.field(key).unwrap(),
                srv_shared.field(key).unwrap(),
                "recommendation field {key} must agree offline vs server"
            );
        }
        assert_eq!(
            off_shared.field("model").unwrap(),
            &Value::Str("as-recorded".into())
        );

        stop.shutdown();
        daemon.join().unwrap();

        // A capacity too small for one granule per thread is refused.
        let (code, out) =
            run_to_string(&["partition", p, "--capacity", "512", "--granularity", "256"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("cannot give"), "{out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn partition_merges_plain_traces_under_a_model() {
        let dir = std::env::temp_dir().join("parda-cli-partition-plain");
        std::fs::create_dir_all(&dir).unwrap();
        let p0 = dir.join("t0.trc");
        let p1 = dir.join("t1.trc");
        for (path, footprint) in [(&p0, "64"), (&p1, "700")] {
            let (code, _) = run_to_string(&[
                "gen",
                "--pattern",
                "zipf",
                "--footprint",
                footprint,
                "--refs",
                "8000",
                "--out",
                path.to_str().unwrap(),
            ]);
            assert_eq!(code, 0);
        }
        let s0 = p0.to_str().unwrap();
        let s1 = p1.to_str().unwrap();

        // Default model is lockstep round-robin.
        let (code, out) = run_to_string(&["partition", s0, s1, "--capacity", "1024"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("threads=2"), "{out}");
        assert!(out.contains("model=rr:1"), "{out}");

        // A probabilistic model is accepted, and a wrong weight count is not.
        let (code, out) = run_to_string(&[
            "partition",
            s0,
            s1,
            "--capacity",
            "1024",
            "--model",
            "prob:3,1@7",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("model=prob:3,1@7"), "{out}");
        let (code, out) = run_to_string(&[
            "partition",
            s0,
            s1,
            "--capacity",
            "1024",
            "--model",
            "prob:1,2,3",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("weights"), "{out}");

        // A single plain trace has no thread information.
        let (code, out) = run_to_string(&["partition", s0, "--capacity", "1024"]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("not thread-tagged"), "{out}");

        // --capacity is mandatory.
        let (code, out) = run_to_string(&["partition", s0, s1]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("--capacity"), "{out}");

        std::fs::remove_file(&p0).unwrap();
        std::fs::remove_file(&p1).unwrap();
    }

    #[test]
    fn compare_verifies_engine_agreement() {
        let dir = std::env::temp_dir().join("parda-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&["gen", "--spec", "soplex", "--refs", "20000", "--out", p]);
        assert_eq!(code, 0);
        let (code, out) = run_to_string(&["compare", p, "--ranks", "3"]);
        assert_eq!(code, 0, "compare failed: {out}");
        assert!(out.contains("all engines agree"), "got: {out}");
        for engine in [
            "seq/splay",
            "seq/vector",
            "parda-msg/p3",
            "phased/p3",
            "naive-stack",
        ] {
            assert!(out.contains(engine), "missing {engine}: {out}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! Implementation of the `parda` command-line tool.
//!
//! Subcommands:
//!
//! * `parda gen` — generate synthetic traces (SPEC models, patterns, or
//!   pinsim kernels) into the binary trace format;
//! * `parda analyze` — run any analyzer (sequential / naive / parallel /
//!   bounded) over a trace file and print the binned histogram;
//! * `parda mrc` — print the miss-ratio curve;
//! * `parda stats` — print trace shape statistics (N, M, span);
//! * `parda spec` — print the paper's Table IV benchmark parameters;
//! * `parda compare` — run every engine, verify agreement, report timings.
//!
//! Argument parsing is hand-rolled ([`Args`]) to keep the dependency
//! surface at the workspace's approved set.

pub mod args;
pub mod commands;

pub use args::Args;

/// Entry point shared by the binary and the integration tests. Returns the
/// process exit code.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match run_inner(argv, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            1
        }
    }
}

fn run_inner(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    let Some(command) = argv.first() else {
        return Err(format!("no subcommand given\n\n{}", commands::USAGE));
    };
    let args = Args::parse_with_switches(&argv[1..], commands::SWITCHES)?;
    match command.as_str() {
        "gen" => commands::gen(&args, out),
        "analyze" => commands::analyze(&args, out),
        "mrc" => commands::mrc(&args, out),
        "stats" => commands::stats(&args, out),
        "spec" => commands::spec(&args, out),
        "compare" => commands::compare(&args, out),
        "help" | "--help" | "-h" => writeln!(out, "{}", commands::USAGE).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown subcommand `{other}`\n\n{}",
            commands::USAGE
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> (i32, String) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_subcommand_is_an_error() {
        let (code, out) = run_to_string(&[]);
        assert_eq!(code, 1);
        assert!(out.contains("usage"), "got: {out}");
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let (code, out) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("analyze"));
        assert!(out.contains("gen"));
    }

    #[test]
    fn spec_lists_all_benchmarks() {
        let (code, out) = run_to_string(&["spec"]);
        assert_eq!(code, 0);
        for name in ["perlbench", "mcf", "lbm", "sphinx3"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn gen_analyze_round_trip() {
        let dir = std::env::temp_dir().join("parda-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        let path_str = path.to_str().unwrap();

        let (code, out) = run_to_string(&[
            "gen", "--spec", "gcc", "--refs", "20000", "--seed", "3", "--out", path_str,
        ]);
        assert_eq!(code, 0, "gen failed: {out}");
        assert!(out.contains("20000"));

        let (code, out) = run_to_string(&["stats", path_str]);
        assert_eq!(code, 0);
        assert!(out.contains("N=20000"), "got: {out}");

        let (code, out) = run_to_string(&["analyze", path_str, "--ranks", "3"]);
        assert_eq!(code, 0, "analyze failed: {out}");
        assert!(out.contains("total"), "got: {out}");
        assert!(out.contains("inf"), "got: {out}");

        let (code, seq_out) = run_to_string(&["analyze", path_str, "--engine", "seq"]);
        assert_eq!(code, 0, "seq analyze failed: {seq_out}");

        let (code, out) = run_to_string(&["mrc", path_str]);
        assert_eq!(code, 0);
        assert!(out.contains("capacity"), "got: {out}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gen_pattern_and_kernel_sources() {
        let dir = std::env::temp_dir().join("parda-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("cyc.trc");
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "cyclic",
            "--footprint",
            "64",
            "--refs",
            "1000",
            "--out",
            p1.to_str().unwrap(),
        ]);
        assert_eq!(code, 0);

        let p2 = dir.join("mm.trc");
        let (code, _) = run_to_string(&[
            "gen",
            "--kernel",
            "matmul",
            "--size",
            "8",
            "--out",
            p2.to_str().unwrap(),
        ]);
        assert_eq!(code, 0);

        let (code, out) = run_to_string(&["stats", p2.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("N=1536"), "3*8^3 refs: {out}"); // 3·n³
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn phased_sampled_and_vector_engines() {
        let dir = std::env::temp_dir().join("parda-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "zipf",
            "--footprint",
            "500",
            "--refs",
            "30000",
            "--out",
            p,
        ]);
        assert_eq!(code, 0);

        // All exact engines agree on the total line.
        let mut totals = Vec::new();
        for extra in [
            vec!["--engine", "seq", "--tree", "vector"],
            vec!["--engine", "phased", "--chunk", "1000", "--ranks", "3"],
            vec![
                "--engine",
                "phased",
                "--chunk",
                "1000",
                "--ranks",
                "3",
                "--renumber",
            ],
            vec!["--engine", "parda", "--ranks", "2", "--tree", "avl"],
        ] {
            let mut argv = vec!["analyze", p];
            argv.extend(extra.iter().copied());
            let (code, out) = run_to_string(&argv);
            assert_eq!(code, 0, "{argv:?}: {out}");
            let total_line = out
                .lines()
                .find(|l| l.starts_with("total="))
                .unwrap_or_else(|| panic!("no total in {out}"))
                .to_string();
            totals.push(total_line);
        }
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "engines disagree: {totals:?}"
        );

        // The sampled engine runs and reports an estimate.
        let (code, out) = run_to_string(&["analyze", p, "--engine", "sampled", "--rate", "2"]);
        assert_eq!(code, 0, "sampled failed: {out}");
        assert!(out.contains("total="));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_json_is_one_document_accounting_for_every_reference() {
        use serde_json::Value;

        fn u64_of(v: &Value) -> u64 {
            match v {
                Value::U64(x) => *x,
                Value::I64(x) => u64::try_from(*x).unwrap(),
                other => panic!("expected integer, got {other:?}"),
            }
        }

        let dir = std::env::temp_dir().join("parda-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&[
            "gen",
            "--pattern",
            "zipf",
            "--footprint",
            "400",
            "--refs",
            "24000",
            "--out",
            p,
        ]);
        assert_eq!(code, 0);

        let (code, out) =
            run_to_string(&["analyze", p, "--engine=msg", "--ranks=8", "--stats=json"]);
        assert_eq!(code, 0, "{out}");
        let doc: Value =
            serde_json::from_str(out.trim()).expect("--stats=json stdout is one JSON document");
        let hist_infinite = u64_of(doc.field("histogram").unwrap().field("infinite").unwrap());
        let stats = doc.field("stats").unwrap();
        assert_eq!(
            stats.field("mode").unwrap(),
            &Value::Str("parda-msg".into())
        );
        let Value::Array(per_rank) = stats.field("per_rank").unwrap() else {
            panic!("per_rank is not an array");
        };
        assert_eq!(per_rank.len(), 8);

        // Every reference lands in exactly one rank's chunk.
        let total_refs: u64 = per_rank
            .iter()
            .map(|rm| u64_of(rm.field("refs").unwrap()))
            .sum();
        assert_eq!(total_refs, 24000);

        // Cold misses only surface on rank 0 (all other ranks forward their
        // unresolved infinities leftward), so rank 0's count must equal the
        // histogram's infinity bucket.
        let rank0 = &per_rank[0];
        assert_eq!(u64_of(rank0.field("rank").unwrap()), 0);
        let cold = u64_of(rank0.field("engine").unwrap().field("cold_misses").unwrap());
        assert_eq!(cold, hist_infinite);

        // The headline per-rank timing fields are all present.
        for rm in per_rank {
            rm.field("chunk_ns").unwrap();
            rm.field("cascade_ns").unwrap();
            rm.field("infinities_forwarded").unwrap();
        }

        // Streamed analysis attaches decoder-pipeline counters.
        let (code, out) = run_to_string(&["analyze", p, "--stream", "--stats=json"]);
        assert_eq!(code, 0, "{out}");
        let doc: Value = serde_json::from_str(out.trim()).unwrap();
        let stream = doc.field("stats").unwrap().field("stream").unwrap();
        assert_eq!(u64_of(stream.field("refs_decoded").unwrap()), 24000);
        assert!(u64_of(stream.field("frames_decoded").unwrap()) > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn analyze_rejects_bad_engine() {
        let (code, out) = run_to_string(&["analyze", "/nonexistent", "--engine", "warp"]);
        assert_eq!(code, 1);
        assert!(out.contains("error"), "got: {out}");
    }

    #[test]
    fn compare_verifies_engine_agreement() {
        let dir = std::env::temp_dir().join("parda-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.trc");
        let p = path.to_str().unwrap();
        let (code, _) = run_to_string(&["gen", "--spec", "soplex", "--refs", "20000", "--out", p]);
        assert_eq!(code, 0);
        let (code, out) = run_to_string(&["compare", p, "--ranks", "3"]);
        assert_eq!(code, 0, "compare failed: {out}");
        assert!(out.contains("all engines agree"), "got: {out}");
        for engine in [
            "seq/splay",
            "seq/vector",
            "parda-msg/p3",
            "phased/p3",
            "naive-stack",
        ] {
            assert!(out.contains(engine), "missing {engine}: {out}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

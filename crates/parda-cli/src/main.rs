//! `parda` — reuse distance analysis from the command line.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    std::process::exit(parda_cli::run(&argv, &mut lock));
}

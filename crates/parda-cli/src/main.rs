//! `parda` — reuse distance analysis from the command line.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let mut out = stdout.lock();
    let mut err = stderr.lock();
    std::process::exit(parda_cli::run_split(&argv, &mut out, &mut err));
}

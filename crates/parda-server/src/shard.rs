//! Shard event loops: N threads, each owning a set of pinned sessions.
//!
//! The acceptor pins every connection to the least-loaded shard at accept
//! time; from then on all of that session's I/O, frame decoding, and
//! analysis happen on the shard thread. One `poll(2)` set per shard covers
//! its admission-inbox waker plus every pinned socket, so an idle shard
//! burns no CPU and a busy one wakes exactly for the sockets with work.
//!
//! Backpressure is explicit at two levels:
//!
//! * A session with an unflushed reply is not read — its poll registration
//!   flips from `POLLIN` to `POLLOUT` until the outbox drains, so a slow
//!   reader cannot make the shard buffer unboundedly.
//! * The shard reads at most [`READ_BURST`] bytes from one socket per
//!   event-loop turn, so one firehose session cannot starve its
//!   shard-mates (fairness is asserted by the e2e suite).
//!
//! Frame payloads are decoded into one reusable per-shard arena
//! ([`crate::proto::decode_data_frame_into`]) — steady-state ingest does
//! no per-frame allocation. Session stepping runs under `catch_unwind`, so
//! a panicking session (failpoint or bug) costs one error frame, never the
//! shard.

use crate::orphan::OrphanPool;
use crate::poll::{self, Poller, Waker};
use crate::server::ServerConfig;
use crate::session::{Session, SessionHost};
use parda_obs::{LatencyHist, ServerCounters, ShardMetrics};
use parda_trace::Addr;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared read buffer size: one socket drains in large chunks without a
/// per-slot buffer of that size.
const READ_CHUNK: usize = 128 * 1024;

/// Per-slot, per-turn ingest cap — the fairness quantum.
const READ_BURST: usize = 1 << 20;

/// Upper bound on one poll wait; also the latency bound for noticing the
/// process-wide signal latch on platforms where `poll` does not EINTR.
const MAX_POLL_WAIT: Duration = Duration::from_millis(100);

/// Compact the consumed prefix of a slot's input buffer once it exceeds
/// this many bytes.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// A shard's admission inbox: connections pinned by the acceptor, a load
/// gauge the acceptor balances on, and the waker that unparks the shard.
pub(crate) struct Inbox {
    queue: Mutex<VecDeque<(TcpStream, u64, Instant)>>,
    /// Pinned connections not yet closed (queued + live slots).
    load: AtomicUsize,
    stop: AtomicBool,
    waker: Waker,
}

impl Inbox {
    pub(crate) fn new() -> std::io::Result<Self> {
        Ok(Inbox {
            queue: Mutex::new(VecDeque::new()),
            load: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            waker: Waker::new()?,
        })
    }

    /// Pin one accepted connection to this shard.
    pub(crate) fn push(&self, stream: TcpStream, id: u64) {
        self.load.fetch_add(1, Ordering::SeqCst);
        self.queue
            .lock()
            .unwrap()
            .push_back((stream, id, Instant::now()));
        self.waker.wake();
    }

    /// Current pinned-connection count, for least-loaded placement.
    pub(crate) fn load(&self) -> usize {
        self.load.load(Ordering::SeqCst)
    }

    /// Ask the shard to drain its sessions and exit.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// One pinned connection: socket, parser buffer, reply outbox, and the
/// protocol state machine.
struct Slot {
    stream: TcpStream,
    fd: poll::RawFd,
    session: Session,
    inbuf: Vec<u8>,
    consumed: usize,
    outbox: Vec<u8>,
    sent: usize,
    last_activity: Instant,
    accepted_at: Instant,
    dead: bool,
    /// The transport died but the session is resumable: park it in the
    /// orphan pool at reap instead of dropping it.
    orphan: bool,
}

#[cfg(unix)]
fn raw_fd(stream: &TcpStream) -> poll::RawFd {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_stream: &TcpStream) -> poll::RawFd {
    -1
}

/// Run one shard to completion; returns its lifetime metrics and the
/// session-latency histogram for the server-wide p99.
pub(crate) fn run_shard(
    index: usize,
    inbox: Arc<Inbox>,
    scfg: Arc<ServerConfig>,
    counters: Arc<ServerCounters>,
    active: Arc<AtomicUsize>,
    pool: Arc<OrphanPool>,
) -> (ShardMetrics, LatencyHist) {
    let mut metrics = ShardMetrics {
        shard: index,
        ..ShardMetrics::default()
    };
    let mut hist = LatencyHist::default();
    let mut slots: Vec<Slot> = Vec::new();
    let mut poller = Poller::new(scfg.fallback_poller);
    let mut readbuf = vec![0u8; READ_CHUNK];
    let mut arena: Vec<Addr> = Vec::new();

    loop {
        if inbox.stop.load(Ordering::SeqCst)
            && slots.is_empty()
            && inbox.queue.lock().unwrap().is_empty()
        {
            break;
        }

        // Register interests for the sockets we currently hold. A session
        // with a pending reply is write-only until the outbox drains —
        // that is the backpressure edge.
        poller.clear();
        poller.register(inbox.waker.fd(), true, false);
        for slot in &slots {
            let pending = slot.sent < slot.outbox.len();
            let read = slot.session.wants_read() && !pending;
            poller.register(slot.fd, read, pending);
        }
        let polled = slots.len();
        let _ = poller.wait(poll_timeout(&slots, scfg.idle_timeout));
        inbox.waker.drain();
        let now = Instant::now();

        // Admit newly pinned connections (they join the poll set next
        // turn, which is immediate when they already have bytes waiting).
        {
            let mut queue = inbox.queue.lock().unwrap();
            metrics.queue_depth_hwm = metrics.queue_depth_hwm.max(queue.len() as u64);
            while let Some((stream, id, accepted_at)) = queue.pop_front() {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                let fd = raw_fd(&stream);
                slots.push(Slot {
                    stream,
                    fd,
                    session: Session::new(id),
                    inbuf: Vec::new(),
                    consumed: 0,
                    outbox: Vec::new(),
                    sent: 0,
                    last_activity: now,
                    accepted_at,
                    dead: false,
                    orphan: false,
                });
                metrics.sessions += 1;
                metrics.sessions_peak = metrics.sessions_peak.max(slots.len() as u64);
            }
        }

        // Serve readiness for the slots that were in this turn's poll set.
        for (i, slot) in slots.iter_mut().enumerate().take(polled) {
            let ev = poller.events(i + 1);
            if ev.writable {
                flush_slot(slot, &pool, &scfg, &counters, &active, &mut arena);
            }
            if ev.readable && !slot.dead {
                pump_slot(
                    slot,
                    &mut readbuf,
                    &pool,
                    &scfg,
                    &counters,
                    &active,
                    &mut arena,
                    now,
                );
                // Replies are usually small; try to hand them to the
                // kernel right away instead of waiting one poll turn.
                flush_slot(slot, &pool, &scfg, &counters, &active, &mut arena);
            }
        }

        // Stall sweep: a session whose idle deadline passed *and* whose
        // socket holds no unread bytes gets the watchdog error. The
        // readability probe keeps a session that merely waited out a busy
        // shard from being misclassified as idle.
        if let Some(idle) = scfg.idle_timeout {
            for slot in slots.iter_mut() {
                if slot.dead || !slot.session.wants_read() {
                    continue;
                }
                if now.duration_since(slot.last_activity) >= idle
                    && !poll::readable_now(slot.fd, scfg.fallback_poller)
                    && slot.consumed == slot.inbuf.len()
                {
                    let mut host = SessionHost {
                        scfg: &scfg,
                        counters: &counters,
                        active: &active,
                        outbox: &mut slot.outbox,
                        arena: &mut arena,
                    };
                    slot.session.on_stall(&mut host);
                    flush_slot(slot, &pool, &scfg, &counters, &active, &mut arena);
                }
            }
        }

        // Expire orphans past their retention deadline. Runs on every
        // shard at poll cadence; a no-op when the pool is empty.
        pool.sweep(&counters);

        // Reap finished slots: dead transports, and closing sessions whose
        // outbox reached the kernel. A dead slot flagged `orphan` parks
        // its session in the pool for a reconnecting client instead of
        // dropping it.
        let mut i = 0;
        while i < slots.len() {
            let done = slots[i].dead
                || (slots[i].session.is_closing() && slots[i].sent == slots[i].outbox.len());
            if !done {
                i += 1;
                continue;
            }
            let slot = slots.swap_remove(i);
            metrics.state_bytes_hwm = metrics.state_bytes_hwm.max(slot.session.state_bytes_hwm());
            metrics.sketch_bytes_hwm = metrics
                .sketch_bytes_hwm
                .max(slot.session.sketch_bytes_hwm());
            if slot.orphan {
                let mut session = slot.session;
                session.detach();
                counters.sessions_orphaned.incr();
                pool.park(session, &counters);
            } else if slot.session.completed() {
                let ns = u64::try_from(slot.accepted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                hist.record(ns);
            }
            inbox.load.fetch_sub(1, Ordering::SeqCst);
        }
    }

    metrics.p99_session_ns = if hist.count() > 0 {
        hist.quantile(0.99)
    } else {
        0
    };
    (metrics, hist)
}

/// The next poll wait: the nearest idle deadline among live sessions,
/// capped at [`MAX_POLL_WAIT`].
fn poll_timeout(slots: &[Slot], idle: Option<Duration>) -> Duration {
    let mut wait = MAX_POLL_WAIT;
    if let Some(idle) = idle {
        let now = Instant::now();
        for slot in slots {
            if slot.dead || !slot.session.wants_read() {
                continue;
            }
            let deadline = slot.last_activity + idle;
            let remaining = deadline.saturating_duration_since(now);
            wait = wait.min(remaining.max(Duration::from_millis(1)));
        }
    }
    wait
}

/// How a transport was lost, for the orphan-or-fail funnel.
enum Loss {
    /// Peer closed its write side (legacy path: protocol error, but the
    /// reply flush is still attempted on the intact write side).
    Eof,
    /// Hard socket read error.
    Read(std::io::Error),
    /// Write failure or injected reset: the fd is unusable both ways.
    Gone,
}

/// The transport under a session died. If disconnect-resumption is on and
/// the session is worth keeping, flag the slot for orphaning at reap;
/// otherwise take the legacy path (typed error frame, failure counters).
fn transport_lost(
    slot: &mut Slot,
    loss: Loss,
    pool: &OrphanPool,
    scfg: &ServerConfig,
    counters: &ServerCounters,
    active: &Arc<AtomicUsize>,
    arena: &mut Vec<Addr>,
) {
    // EOF is special: after FIN it is a routine half-close with the write
    // side intact (the reply still flushes), so only a *mid-stream* EOF
    // counts as a disconnect. Read/write errors kill the fd both ways.
    let resumable = pool.enabled()
        && slot.session.is_orphanable()
        && (!matches!(loss, Loss::Eof) || slot.session.is_streaming());
    if resumable {
        // Half-parsed input and unflushed replies die with the fd: the
        // session's frame watermark only counts fully-ingested frames,
        // and the resume path requeues the reply from `final_reply`.
        slot.dead = true;
        slot.orphan = true;
        return;
    }
    let mut host = SessionHost {
        scfg,
        counters,
        active,
        outbox: &mut slot.outbox,
        arena,
    };
    match loss {
        Loss::Eof => slot.session.on_eof(&mut host),
        Loss::Read(e) => slot.session.on_read_error(e, &mut host),
        Loss::Gone => {
            slot.session.on_transport_error(&mut host);
            slot.dead = true;
        }
    }
}

/// Chaos site: sever a connection just before a DATA frame is dispatched.
/// The frame is *not* ingested, so a resuming client must retransmit it —
/// the e2e chaos suite leans on this to prove the watermark protocol.
fn conn_reset_failpoint() -> bool {
    parda_failpoint::failpoint!("server::conn_reset", return true);
    false
}

/// Chaos site: tear a reply mid-message (a few bytes reach the kernel,
/// then the transport dies), leaving the client a truncated header.
fn partial_write_failpoint() -> bool {
    parda_failpoint::failpoint!("server::partial_write", return true);
    false
}

/// Chaos site: panic out of message dispatch, proving the shard's
/// `catch_unwind` containment holds on the resumption paths too.
fn dispatch_failpoint() {
    parda_failpoint::failpoint!("server::dispatch");
}

/// Read a burst off one socket and run the protocol over whatever complete
/// messages arrived. Panics unwinding out of session code are converted to
/// a failure outcome on the session, never surfaced to the shard loop.
#[allow(clippy::too_many_arguments)]
fn pump_slot(
    slot: &mut Slot,
    readbuf: &mut [u8],
    pool: &OrphanPool,
    scfg: &ServerConfig,
    counters: &ServerCounters,
    active: &Arc<AtomicUsize>,
    arena: &mut Vec<Addr>,
    now: Instant,
) {
    let mut eof = false;
    let mut read_err: Option<std::io::Error> = None;
    let mut total = 0usize;
    while total < READ_BURST {
        match slot.stream.read(readbuf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                slot.inbuf.extend_from_slice(&readbuf[..n]);
                total += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                read_err = Some(e);
                break;
            }
        }
    }
    if total > 0 {
        slot.last_activity = now;
    }

    let stepped = catch_unwind(AssertUnwindSafe(|| {
        parse_messages(slot, pool, scfg, counters, active, arena);
        if slot.dead {
            return;
        }
        if let Some(e) = read_err.take() {
            transport_lost(slot, Loss::Read(e), pool, scfg, counters, active, arena);
        } else if eof {
            transport_lost(slot, Loss::Eof, pool, scfg, counters, active, arena);
        }
    }));
    if stepped.is_err() {
        let mut host = SessionHost {
            scfg,
            counters,
            active,
            outbox: &mut slot.outbox,
            arena,
        };
        slot.session.on_panic(&mut host);
    }
}

/// Split the slot's buffered bytes into wire messages and feed them to the
/// session state machine. Framing violations (unknown kind, lying length)
/// are unrecoverable desyncs.
fn parse_messages(
    slot: &mut Slot,
    pool: &OrphanPool,
    scfg: &ServerConfig,
    counters: &ServerCounters,
    active: &Arc<AtomicUsize>,
    arena: &mut Vec<Addr>,
) {
    use crate::proto::{MsgKind, MAX_PAYLOAD};
    loop {
        if slot.dead || !slot.session.wants_read() {
            break;
        }
        let avail = slot.inbuf.len() - slot.consumed;
        if avail < 5 {
            break;
        }
        let head = &slot.inbuf[slot.consumed..slot.consumed + 5];
        let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
        let kind = match MsgKind::from_u8(head[0]) {
            Ok(kind) => kind,
            Err(e) => {
                let mut host = SessionHost {
                    scfg,
                    counters,
                    active,
                    outbox: &mut slot.outbox,
                    arena,
                };
                slot.session.on_desync(e.to_string(), &mut host);
                break;
            }
        };
        if len > MAX_PAYLOAD {
            let mut host = SessionHost {
                scfg,
                counters,
                active,
                outbox: &mut slot.outbox,
                arena,
            };
            slot.session.on_desync(
                format!("message payload of {len} bytes exceeds cap"),
                &mut host,
            );
            break;
        }
        if avail < 5 + len {
            slot.inbuf.reserve(5 + len - avail);
            break;
        }
        if kind == MsgKind::Data && conn_reset_failpoint() {
            // Injected reset: the frame is dropped unconsumed and the
            // socket is torn down both ways, as a mid-datacenter network
            // failure would.
            let _ = slot.stream.shutdown(std::net::Shutdown::Both);
            transport_lost(slot, Loss::Gone, pool, scfg, counters, active, arena);
            break;
        }
        dispatch_failpoint();
        let start = slot.consumed + 5;
        slot.consumed += 5 + len;
        {
            let Slot {
                session,
                inbuf,
                outbox,
                ..
            } = slot;
            let mut host = SessionHost {
                scfg,
                counters,
                active,
                outbox,
                arena,
            };
            session.on_message(kind, &inbuf[start..start + len], &mut host);
        }
        // A RESUME handshake: swap the parked session into this slot.
        // The fresh shell recorded nothing (no admission, no counters),
        // so discarding it leaks nothing; the adopted session kept its
        // admission guard the whole time it was parked.
        if let Some(token) = slot.session.take_pending_resume() {
            match pool.take(&token) {
                Some(mut adopted) => {
                    counters.sessions_resumed.incr();
                    adopted.resume_onto(&mut slot.outbox);
                    slot.session = adopted;
                }
                None => {
                    let mut host = SessionHost {
                        scfg,
                        counters,
                        active,
                        outbox: &mut slot.outbox,
                        arena,
                    };
                    slot.session.on_resume_missing(&mut host);
                }
            }
        }
    }

    // Drop the consumed prefix once it is worth the memmove.
    if slot.consumed == slot.inbuf.len() {
        slot.inbuf.clear();
        slot.consumed = 0;
    } else if slot.consumed > COMPACT_THRESHOLD {
        slot.inbuf.drain(..slot.consumed);
        slot.consumed = 0;
    }
}

/// Push outbox bytes to the kernel until done or `WouldBlock`. A hard
/// write error marks the slot dead (the peer is gone) after either
/// parking the session for resumption or making sure it is accounted.
fn flush_slot(
    slot: &mut Slot,
    pool: &OrphanPool,
    scfg: &ServerConfig,
    counters: &ServerCounters,
    active: &Arc<AtomicUsize>,
    arena: &mut Vec<Addr>,
) {
    if slot.dead {
        return;
    }
    if slot.sent < slot.outbox.len() && partial_write_failpoint() {
        // Injected torn write: a few bytes of the pending reply reach the
        // wire, then the transport dies — the client is left holding a
        // truncated message header.
        let n = (slot.outbox.len() - slot.sent).min(3);
        let _ = slot.stream.write(&slot.outbox[slot.sent..slot.sent + n]);
        let _ = slot.stream.shutdown(std::net::Shutdown::Both);
        transport_lost(slot, Loss::Gone, pool, scfg, counters, active, arena);
        return;
    }
    while slot.sent < slot.outbox.len() {
        match slot.stream.write(&slot.outbox[slot.sent..]) {
            Ok(0) => {
                transport_lost(slot, Loss::Gone, pool, scfg, counters, active, arena);
                return;
            }
            Ok(n) => slot.sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                transport_lost(slot, Loss::Gone, pool, scfg, counters, active, arena);
                return;
            }
        }
    }
    if slot.sent > 0 && slot.sent == slot.outbox.len() {
        slot.outbox.clear();
        slot.sent = 0;
    }
}

//! `parda-server`: reuse-distance analysis as a network service.
//!
//! A std-only TCP daemon on a **sharded-core** model (no async runtime,
//! no per-session threads): a nonblocking acceptor waits on `poll(2)`
//! readiness and pins each connection to the least-loaded of N shard
//! event loops; each shard multiplexes all of its sessions' socket I/O,
//! frame decoding (into one reusable arena), and analysis on one thread,
//! driving every session's `Analysis` as a resumable state machine
//! (`parda_core::SessionAnalysis`):
//!
//! ```text
//!  client ──HELLO/CONFIG──▶ ┌──────────┐   ┌─ shard 0: poll ─ sessions ─┐
//!         ◀─ACCEPT|ERROR──  │ acceptor │──▶│  feed frames → resumable   │
//!         ──DATA*──FIN────▶ │  (poll)  │   │  Analysis → STATS at FIN   │
//!         ◀─STATS|ERROR──   └──────────┘   └─ shard N-1 ────────────────┘
//! ```
//!
//! The wire protocol ([`proto`]) reuses the trace format's per-frame
//! CRC32C header byte-for-byte, so the `Degradation` ladder applies on the
//! wire exactly as on disk: strict sessions fail on the first corrupt
//! frame, lossy sessions quarantine it and tally the loss in the reply's
//! `RecoveryMetrics`. Back-pressure is explicit: a session with an
//! unflushed reply stops being read, so TCP flow control propagates to
//! the client end-to-end. Admission control caps concurrent sessions with
//! a structured refusal. Sessions run under PR 4's `FaultPolicy` —
//! panicking analysis workers are rescued or reported as typed errors,
//! and a panicking session costs one error frame, never a shard and never
//! the daemon.

pub mod client;
mod orphan;
mod poll;
pub mod proto;
pub mod server;
pub mod session;
mod shard;

pub use client::{submit, submit_file, submit_tagged, RetryPolicy, SubmitOptions, SubmitReply};
pub use proto::{ErrorClass, ErrorFrame};
pub use server::{
    install_signal_shutdown, request_shutdown, reset_shutdown_latch, Server, ServerConfig,
    ShutdownHandle,
};
pub use session::{ReplyFormat, SessionConfig, SessionEngine};

/// Arm fault-injection sites from the `PARDA_FAILPOINTS` environment
/// variable (`site=spec` entries separated by `;`, the
/// `parda_failpoint::configure_list` grammar). A no-op when the
/// `failpoints` feature is off or the variable is unset/empty; a
/// malformed spec is an error so a chaos run never starts half-armed.
pub fn arm_failpoints_from_env() -> Result<(), String> {
    #[cfg(feature = "failpoints")]
    if let Ok(spec) = std::env::var("PARDA_FAILPOINTS") {
        if !spec.trim().is_empty() {
            return parda_failpoint::configure_list(&spec);
        }
    }
    Ok(())
}

//! `parda-server`: reuse-distance analysis as a network service.
//!
//! A std-only TCP daemon (no async runtime: one OS thread per session,
//! blocking sockets, an accept loop polling a shutdown latch) that accepts
//! many concurrent clients, each streaming a trace over the v2.1 frame
//! encoding and receiving its histogram/MRC back:
//!
//! ```text
//!  client ──HELLO/CONFIG──▶ ┌──────────────┐
//!         ◀─ACCEPT|ERROR──  │  parda-server │──▶ Analysis (phased stream
//!         ──DATA*──FIN────▶ │  session      │       or panic-isolated
//!         ◀─STATS|ERROR──   └──────────────┘       threads engine)
//! ```
//!
//! The wire protocol ([`proto`]) reuses the trace format's per-frame
//! CRC32C header byte-for-byte, so the `Degradation` ladder applies on the
//! wire exactly as on disk: strict sessions fail on the first corrupt
//! frame, lossy sessions quarantine it and tally the loss in the reply's
//! `RecoveryMetrics`. Back-pressure composes from the bounded
//! `parda-comm` pipe feeding the streaming analyzer and TCP flow control
//! upstream of it; admission control caps concurrent sessions with a
//! structured refusal. Sessions run under PR 4's `FaultPolicy` — panicking
//! analysis workers are rescued or reported as typed errors, and a
//! panicking session never takes the daemon down.

pub mod client;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{submit, submit_file, SubmitOptions, SubmitReply};
pub use proto::{ErrorClass, ErrorFrame};
pub use server::{
    install_signal_shutdown, request_shutdown, reset_shutdown_latch, Server, ServerConfig,
    ShutdownHandle,
};
pub use session::{ReplyFormat, SessionConfig, SessionEngine};

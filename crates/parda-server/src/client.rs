//! The submitting client: stream a trace to a daemon, get the histogram.
//!
//! [`submit`] speaks the whole session protocol over one blocking TCP
//! connection and rehydrates the server's reply — a [`ReuseHistogram`]
//! plus, for JSON replies, the raw stats document (byte-identical to the
//! CLI's offline `--stats=json` output, so tooling can diff the two).
//! Server-side failures arrive as typed [`PardaError`]s with their details
//! intact: a rank panic on the server reports the same rank/attempts it
//! would have reported locally.

use crate::proto::{
    encode_data_frame, hello_payload, read_msg, write_msg, ErrorFrame, MsgKind,
    STATS_FORMAT_BINARY, STATS_FORMAT_JSON,
};
use crate::session::ReplyFormat;
use parda_core::PardaError;
use parda_hist::ReuseHistogram;
use parda_trace::io::Encoding;
use parda_trace::Addr;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;

/// Client-side knobs for one submission.
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// Extra `key=value` pairs for the CONFIG message (tree, ranks, bound,
    /// engine, chunk, degradation — see `session::SessionConfig`).
    pub config: Vec<(String, String)>,
    /// DATA frame payload encoding.
    pub encoding: Encoding,
    /// References per DATA frame.
    pub frame_refs: usize,
    /// Reply encoding to request.
    pub reply: ReplyFormat,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            config: Vec::new(),
            encoding: Encoding::DeltaVarint,
            frame_refs: parda_trace::io::FRAME_REFS,
            reply: ReplyFormat::Binary,
        }
    }
}

/// A successful server reply.
#[derive(Clone, Debug)]
pub struct SubmitReply {
    /// The session id the server assigned.
    pub session: u64,
    /// The analysis result.
    pub histogram: ReuseHistogram,
    /// The full `{"histogram":…,"stats":…}` document (JSON replies only).
    pub stats_json: Option<String>,
}

fn corrupt(msg: impl Into<String>) -> PardaError {
    PardaError::Corrupt(msg.into())
}

/// Stream `trace` to the daemon at `addr` and return its reply.
pub fn submit(addr: &str, trace: &[Addr], opts: &SubmitOptions) -> Result<SubmitReply, PardaError> {
    let stream = TcpStream::connect(addr).map_err(PardaError::Io)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(PardaError::Io)?);
    let mut writer = BufWriter::new(stream);

    // HELLO + CONFIG, flushed so the server can act (and possibly refuse)
    // before we commit to streaming the trace.
    write_msg(&mut writer, MsgKind::Hello, &hello_payload()).map_err(PardaError::Io)?;
    write_msg(&mut writer, MsgKind::Config, config_text(opts).as_bytes())
        .map_err(PardaError::Io)?;
    writer.flush().map_err(PardaError::Io)?;

    let accept = read_msg(&mut reader).map_err(PardaError::from)?;
    let session = match accept.kind {
        MsgKind::Accept => {
            let bytes: [u8; 8] = accept
                .payload
                .as_slice()
                .try_into()
                .map_err(|_| corrupt("ACCEPT payload is not a u64 session id"))?;
            u64::from_le_bytes(bytes)
        }
        MsgKind::Error => return Err(rehydrate(&accept.payload)),
        other => return Err(corrupt(format!("expected ACCEPT, got {other:?}"))),
    };

    // Stream the trace. A mid-stream write failure (e.g. the server
    // closed the socket after sending a fatal ERROR) must not abort the
    // submission here — fall through to the read phase, where the typed
    // error is waiting.
    let frame_refs = opts.frame_refs.max(1);
    let mut write_err = None;
    for chunk in trace.chunks(frame_refs) {
        let payload = encode_data_frame(chunk, opts.encoding);
        if let Err(e) = write_msg(&mut writer, MsgKind::Data, &payload) {
            write_err = Some(e);
            break;
        }
    }
    if write_err.is_none() {
        write_err = write_msg(&mut writer, MsgKind::Fin, &[])
            .and_then(|()| writer.flush())
            .err();
    }

    // Reply phase: STATS on success, ERROR on failure. If the write side
    // broke and no reply is readable either, report the write error.
    let reply = match read_msg(&mut reader) {
        Ok(msg) => msg,
        Err(read_e) => {
            return Err(match write_err {
                Some(e) => PardaError::Io(e),
                None => read_e.into(),
            })
        }
    };
    match reply.kind {
        MsgKind::Stats => parse_stats(session, &reply.payload),
        MsgKind::Error => Err(rehydrate(&reply.payload)),
        other => Err(corrupt(format!("expected STATS, got {other:?}"))),
    }
}

/// Load a trace file (any supported format) and [`submit`] it.
pub fn submit_file<P: AsRef<Path>>(
    addr: &str,
    path: P,
    opts: &SubmitOptions,
) -> Result<SubmitReply, PardaError> {
    let trace = parda_trace::io::load_trace(path).map_err(PardaError::from)?;
    submit(addr, trace.as_slice(), opts)
}

fn config_text(opts: &SubmitOptions) -> String {
    let mut text = String::new();
    for (k, v) in &opts.config {
        text.push_str(k);
        text.push('=');
        text.push_str(v);
        text.push('\n');
    }
    text.push_str(match opts.encoding {
        Encoding::Raw => "encoding=raw\n",
        Encoding::DeltaVarint => "encoding=delta\n",
    });
    text.push_str(match opts.reply {
        ReplyFormat::Json => "reply=json\n",
        ReplyFormat::Binary => "reply=binary\n",
    });
    text
}

fn rehydrate(payload: &[u8]) -> PardaError {
    match ErrorFrame::from_payload(payload) {
        Ok(frame) => frame.to_parda(),
        Err(e) => corrupt(format!("undecodable ERROR frame: {e}")),
    }
}

fn parse_stats(session: u64, payload: &[u8]) -> Result<SubmitReply, PardaError> {
    let (format, body) = payload
        .split_first()
        .ok_or_else(|| corrupt("empty STATS payload"))?;
    match *format {
        STATS_FORMAT_BINARY => Ok(SubmitReply {
            session,
            histogram: crate::proto::decode_histogram_binary(body).map_err(PardaError::from)?,
            stats_json: None,
        }),
        STATS_FORMAT_JSON => {
            let text =
                std::str::from_utf8(body).map_err(|_| corrupt("JSON STATS body is not UTF-8"))?;
            let doc: serde::Value = serde_json::from_str(text)
                .map_err(|e| corrupt(format!("unparsable STATS JSON: {e:?}")))?;
            let hist_value = doc
                .field("histogram")
                .map_err(|e| corrupt(format!("STATS JSON: {e:?}")))?;
            let histogram = <ReuseHistogram as serde::Deserialize>::from_value(hist_value)
                .map_err(|e| corrupt(format!("STATS histogram: {e:?}")))?;
            Ok(SubmitReply {
                session,
                histogram,
                stats_json: Some(text.to_string()),
            })
        }
        other => Err(corrupt(format!("unknown STATS format byte {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_text_appends_wire_settings_last() {
        let opts = SubmitOptions {
            config: vec![("tree".into(), "avl".into()), ("ranks".into(), "2".into())],
            encoding: Encoding::Raw,
            frame_refs: 128,
            reply: ReplyFormat::Json,
        };
        assert_eq!(
            config_text(&opts),
            "tree=avl\nranks=2\nencoding=raw\nreply=json\n"
        );
    }

    #[test]
    fn rehydrate_tolerates_garbage_error_frames() {
        assert_eq!(rehydrate(&[0xFF, 0x00]).class(), "corrupt");
    }
}

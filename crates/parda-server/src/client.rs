//! The submitting client: stream a trace to a daemon, get the histogram.
//!
//! [`submit`] speaks the whole session protocol and rehydrates the
//! server's reply — a [`ReuseHistogram`] plus, for JSON replies, the raw
//! stats document (byte-identical to the CLI's offline `--stats=json`
//! output, so tooling can diff the two). Server-side failures arrive as
//! typed [`PardaError`]s with their details intact: a rank panic on the
//! server reports the same rank/attempts it would have reported locally.
//!
//! Since the RESUME protocol the client is **disconnect-resilient**: a
//! [`RetryPolicy`] turns one logical submission into a reconnect loop.
//! The first ACCEPT carries a resume token; if the transport dies
//! mid-stream (or mid-reply), the client reconnects with backoff and
//! presents the token in a RESUME message, and the server's resume-ACCEPT
//! answers with the authoritative ingest watermark — the client then
//! retransmits only the frames past it (server `ACK`s observed along the
//! way tighten the bound; a bounded buffer of recently sent frames avoids
//! re-encoding on retransmit). Nothing is replayed server-side, so the
//! final histogram is bit-identical to an uninterrupted run.
//!
//! Every attempt runs under socket deadlines (`SO_RCVTIMEO`/`SO_SNDTIMEO`
//! via the std setters): a hung daemon surfaces as a typed
//! [`PardaError::Stall`] instead of blocking forever, and a connection
//! that keeps dying exhausts the policy into
//! [`PardaError::ConnectionLost`].

use crate::proto::{
    encode_data_frame, encode_resume, encode_tagged_data_frame, hello_payload, write_msg,
    AcceptPayload, ErrorFrame, Message, MsgKind, MAX_PAYLOAD, STATS_FORMAT_BINARY,
    STATS_FORMAT_JSON, TOKEN_LEN,
};
use crate::session::ReplyFormat;
use parda_core::PardaError;
use parda_hist::ReuseHistogram;
use parda_obs::ClientRetryMetrics;
use parda_trace::io::Encoding;
use parda_trace::{Addr, ThreadedTrace};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Cap on buffered already-sent DATA payloads kept for cheap retransmit.
/// Frames past the cap are simply re-encoded from the trace on resume.
const UNACKED_CAP_BYTES: usize = 8 << 20;

/// Drain server ACKs opportunistically every this many sent frames.
const ACK_DRAIN_INTERVAL: u64 = 16;

/// Reconnect behaviour for one logical submission.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts (the first one included). `1` — the
    /// default — disables reconnection entirely: any transport failure
    /// surfaces immediately, the historical behavior.
    pub max_attempts: u32,
    /// Delay before the first reconnect; doubles per attempt.
    pub backoff: Duration,
    /// Ceiling for the exponential backoff.
    pub backoff_max: Duration,
    /// Per-attempt TCP connect deadline (`None`: OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read/write deadline (`SO_RCVTIMEO`/`SO_SNDTIMEO`). Expiry
    /// is a [`PardaError::Stall`], not a retry — a daemon that accepted
    /// the session but stopped responding is not a lost connection.
    pub io_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            connect_timeout: Some(Duration::from_secs(10)),
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl RetryPolicy {
    /// A policy with `attempts` total attempts and the default deadlines.
    pub fn with_attempts(attempts: u32) -> Self {
        Self {
            max_attempts: attempts.max(1),
            ..Self::default()
        }
    }
}

/// Client-side knobs for one submission.
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// Extra `key=value` pairs for the CONFIG message (tree, ranks, bound,
    /// engine, chunk, degradation — see `session::SessionConfig`).
    pub config: Vec<(String, String)>,
    /// DATA frame payload encoding.
    pub encoding: Encoding,
    /// References per DATA frame.
    pub frame_refs: usize,
    /// Reply encoding to request.
    pub reply: ReplyFormat,
    /// Reconnect/deadline policy.
    pub retry: RetryPolicy,
    /// Chaos knob for tests and the flaky-network bench: sever the
    /// connection (both ways) after these cumulative sent-frame counts,
    /// each point firing once. Exercises the reconnect + RESUME path
    /// without any server-side fault injection. Empty in production.
    pub chaos_drop_points: Vec<u64>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            config: Vec::new(),
            encoding: Encoding::DeltaVarint,
            frame_refs: parda_trace::io::FRAME_REFS,
            reply: ReplyFormat::Binary,
            retry: RetryPolicy::default(),
            chaos_drop_points: Vec::new(),
        }
    }
}

/// A successful server reply.
#[derive(Clone, Debug)]
pub struct SubmitReply {
    /// The session id the server assigned.
    pub session: u64,
    /// The analysis result.
    pub histogram: ReuseHistogram,
    /// The full `{"histogram":…,"stats":…}` document (JSON replies only).
    pub stats_json: Option<String>,
    /// What the reconnect loop did to deliver this reply.
    pub retry: ClientRetryMetrics,
}

fn corrupt(msg: impl Into<String>) -> PardaError {
    PardaError::Corrupt(msg.into())
}

/// How one attempt ended, when it did not end with a reply.
enum AttemptError {
    /// Retrying cannot help: a typed server error, a protocol violation,
    /// or a deadline expiry.
    Fatal(PardaError),
    /// The transport died; reconnect and resume if the policy allows.
    Transient(io::Error),
}

/// Submission state that survives reconnects.
#[derive(Default)]
struct SessionState {
    /// Resume token from the first ACCEPT.
    token: Option<[u8; TOKEN_LEN]>,
    session_id: u64,
    /// Frames the server has confirmed ingested (ACKs and resume-ACCEPT
    /// watermarks; monotone per session).
    watermark: u64,
    /// One past the highest frame index ever sent.
    sent_high: u64,
    /// Cumulative DATA frames written across all attempts (retransmits
    /// included) — the clock the chaos drop points run on.
    frames_sent_total: u64,
}

/// Bounded buffer of (frame index, encoded payload) awaiting ACK, so
/// retransmission after a resume usually skips re-encoding.
struct UnackedBuf {
    entries: VecDeque<(u64, Vec<u8>)>,
    bytes: usize,
}

impl UnackedBuf {
    fn new() -> Self {
        Self {
            entries: VecDeque::new(),
            bytes: 0,
        }
    }

    fn push(&mut self, seq: u64, payload: Vec<u8>) {
        self.bytes += payload.len();
        self.entries.push_back((seq, payload));
        while self.bytes > UNACKED_CAP_BYTES {
            let Some((_, dropped)) = self.entries.pop_front() else {
                break;
            };
            self.bytes -= dropped.len();
        }
    }

    /// Drop everything below the acked watermark.
    fn ack(&mut self, watermark: u64) {
        while self
            .entries
            .front()
            .is_some_and(|(seq, _)| *seq < watermark)
        {
            let (_, dropped) = self.entries.pop_front().expect("front just observed");
            self.bytes -= dropped.len();
        }
    }

    fn get(&self, seq: u64) -> Option<&Vec<u8>> {
        // Entries are in ascending seq order; resumption asks for a
        // contiguous suffix, so a scan from the front is fine at this cap.
        self.entries
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, payload)| payload)
    }
}

/// Fires each configured cumulative-frame drop point once, in order.
struct ChaosPlan {
    points: Vec<u64>,
    next: usize,
}

impl ChaosPlan {
    fn new(points: &[u64]) -> Self {
        let mut points = points.to_vec();
        points.sort_unstable();
        Self { points, next: 0 }
    }

    fn should_drop(&mut self, frames_sent_total: u64) -> bool {
        if self.next < self.points.len() && frames_sent_total >= self.points[self.next] {
            self.next += 1;
            return true;
        }
        false
    }
}

/// A connection with client-owned read buffering, so blocking reads
/// (honouring `SO_RCVTIMEO`) and opportunistic nonblocking ACK drains
/// share one parser state.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    consumed: usize,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            inbuf: Vec::new(),
            consumed: 0,
        }
    }

    /// Parse one complete message out of the buffer, if there is one.
    fn parse_one(&mut self) -> io::Result<Option<Message>> {
        let avail = self.inbuf.len() - self.consumed;
        if avail < 5 {
            return Ok(None);
        }
        let head = &self.inbuf[self.consumed..self.consumed + 5];
        let kind = MsgKind::from_u8(head[0])?;
        let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message payload of {len} bytes exceeds cap"),
            ));
        }
        if avail < 5 + len {
            return Ok(None);
        }
        let start = self.consumed + 5;
        let payload = self.inbuf[start..start + len].to_vec();
        self.consumed += 5 + len;
        if self.consumed == self.inbuf.len() {
            self.inbuf.clear();
            self.consumed = 0;
        }
        Ok(Some(Message { kind, payload }))
    }

    /// Blocking read of the next message. With `SO_RCVTIMEO` set, expiry
    /// surfaces as a `WouldBlock`/`TimedOut` error from the socket read.
    fn read_msg(&mut self) -> io::Result<Message> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(msg) = self.parse_one()? {
                return Ok(msg);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pull whatever is ready without blocking and parse it. Transport
    /// death is reported *after* buffered messages are parsed, so a typed
    /// ERROR that raced the close is not lost.
    fn drain_ready(&mut self, out: &mut Vec<Message>) -> io::Result<()> {
        self.stream.set_nonblocking(true)?;
        let mut buf = [0u8; 16 * 1024];
        let result = loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
                Ok(n) => self.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e),
            }
        };
        self.stream.set_nonblocking(false)?;
        while let Some(msg) = self.parse_one()? {
            out.push(msg);
        }
        result
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// Classify a failed read in the reply path: deadline expiry is a typed
/// stall (the daemon is hung, not gone — retrying would hang again), a
/// disconnect is transient, anything else is a hard I/O error.
fn classify_read(e: io::Error, io_timeout: Option<Duration>) -> AttemptError {
    if is_timeout(&e) {
        return AttemptError::Fatal(PardaError::Stall {
            rank: 0,
            deadline: io_timeout.unwrap_or_default(),
        });
    }
    if is_disconnect(&e) {
        return AttemptError::Transient(e);
    }
    if e.kind() == io::ErrorKind::InvalidData {
        return AttemptError::Fatal(corrupt(e.to_string()));
    }
    AttemptError::Fatal(PardaError::Io(e))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Exponential backoff with deterministic jitter (0–25%, derived from the
/// attempt number so tests are reproducible).
fn backoff_delay(policy: &RetryPolicy, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(2).min(16);
    let base = policy
        .backoff
        .saturating_mul(1u32 << exp)
        .min(policy.backoff_max);
    let jitter_num = splitmix(u64::from(attempt)) % 256;
    let jitter_ns = (base.as_nanos() as u64 / 1024).saturating_mul(jitter_num);
    (base + Duration::from_nanos(jitter_ns)).min(policy.backoff_max)
}

fn connect(addr: &str, policy: &RetryPolicy) -> io::Result<TcpStream> {
    let Some(timeout) = policy.connect_timeout else {
        return TcpStream::connect(addr);
    };
    use std::net::ToSocketAddrs;
    let mut last: Option<io::Error> = None;
    for sockaddr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sockaddr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

/// What one submission streams: a plain address trace, or a thread-tagged
/// one whose DATA frames carry the v2.2 tagged layout (the session must be
/// configured `tagged=1`).
#[derive(Clone, Copy)]
enum Payload<'a> {
    Plain(&'a [Addr]),
    Tagged(&'a ThreadedTrace),
}

impl Payload<'_> {
    fn len(&self) -> usize {
        match self {
            Payload::Plain(t) => t.len(),
            Payload::Tagged(t) => t.len(),
        }
    }

    /// Encode the frame at `seq` (frames are `frame_refs`-reference
    /// chunks of the trace, the last possibly short).
    fn encode_frame(&self, seq: u64, frame_refs: usize, encoding: Encoding) -> io::Result<Vec<u8>> {
        let start = usize::try_from(seq).unwrap_or(usize::MAX) * frame_refs;
        let end = (start + frame_refs).min(self.len());
        match self {
            Payload::Plain(t) => Ok(encode_data_frame(&t[start..end], encoding)),
            Payload::Tagged(t) => {
                encode_tagged_data_frame(&t.addrs()[start..end], &t.tids()[start..end], encoding)
            }
        }
    }
}

/// Stream `trace` to the daemon at `addr` and return its reply,
/// reconnecting and resuming per `opts.retry`.
pub fn submit(addr: &str, trace: &[Addr], opts: &SubmitOptions) -> Result<SubmitReply, PardaError> {
    submit_payload(addr, Payload::Plain(trace), opts)
}

/// Stream a thread-tagged trace to the daemon and return its reply — the
/// shared-cache histogram plus, for JSON replies, the report carrying
/// `stats.shared` (and the partition recommendation when the CONFIG asked
/// for one via `partition=`). Appends `tagged=1` to the CONFIG unless the
/// caller already set it.
pub fn submit_tagged(
    addr: &str,
    trace: &ThreadedTrace,
    opts: &SubmitOptions,
) -> Result<SubmitReply, PardaError> {
    if opts.config.iter().any(|(k, _)| k == "tagged") {
        return submit_payload(addr, Payload::Tagged(trace), opts);
    }
    let mut opts = opts.clone();
    opts.config.push(("tagged".into(), "1".into()));
    submit_payload(addr, Payload::Tagged(trace), &opts)
}

fn submit_payload(
    addr: &str,
    trace: Payload,
    opts: &SubmitOptions,
) -> Result<SubmitReply, PardaError> {
    let max_attempts = opts.retry.max_attempts.max(1);
    let mut st = SessionState::default();
    let mut unacked = UnackedBuf::new();
    let mut chaos = ChaosPlan::new(&opts.chaos_drop_points);
    let mut metrics = ClientRetryMetrics::default();
    let mut lost_at: Option<Instant> = None;
    let mut last_io: Option<io::Error> = None;

    for attempt in 1..=max_attempts {
        if attempt > 1 {
            std::thread::sleep(backoff_delay(&opts.retry, attempt));
        }
        metrics.attempts = attempt;
        match run_attempt(
            addr,
            trace,
            opts,
            &mut st,
            &mut unacked,
            &mut chaos,
            &mut metrics,
            &mut lost_at,
        ) {
            Ok(mut reply) => {
                reply.retry = metrics;
                return Ok(reply);
            }
            Err(AttemptError::Fatal(e)) => return Err(e),
            Err(AttemptError::Transient(e)) => {
                if lost_at.is_none() {
                    lost_at = Some(Instant::now());
                }
                last_io = Some(e);
            }
        }
    }

    if max_attempts == 1 {
        // No retries were requested: surface the raw I/O failure exactly
        // as the pre-resumption client did.
        Err(PardaError::Io(last_io.unwrap_or_else(|| {
            io::Error::other("submission failed without an I/O error")
        })))
    } else {
        Err(PardaError::ConnectionLost {
            attempts: max_attempts,
        })
    }
}

/// One connection's worth of the protocol: handshake (CONFIG or RESUME),
/// stream the unacknowledged frame suffix, FIN, read the reply.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    addr: &str,
    trace: Payload,
    opts: &SubmitOptions,
    st: &mut SessionState,
    unacked: &mut UnackedBuf,
    chaos: &mut ChaosPlan,
    metrics: &mut ClientRetryMetrics,
    lost_at: &mut Option<Instant>,
) -> Result<SubmitReply, AttemptError> {
    let io_timeout = opts.retry.io_timeout;
    let stream = connect(addr, &opts.retry).map_err(AttemptError::Transient)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    let mut conn = Conn::new(stream);
    let resuming = st.token.is_some();

    // Handshake, flushed in one write so the server can act (and possibly
    // refuse) before we commit to streaming the trace.
    let mut handshake = Vec::new();
    write_msg(&mut handshake, MsgKind::Hello, &hello_payload()).map_err(AttemptError::Transient)?;
    match &st.token {
        Some(token) => {
            write_msg(
                &mut handshake,
                MsgKind::Resume,
                &encode_resume(token, st.watermark),
            )
            .map_err(AttemptError::Transient)?;
        }
        None => {
            write_msg(
                &mut handshake,
                MsgKind::Config,
                config_text(opts).as_bytes(),
            )
            .map_err(AttemptError::Transient)?;
        }
    }
    conn.write_all(&handshake)
        .map_err(AttemptError::Transient)?;

    // ACCEPT (or a structured refusal).
    let accept = match conn.read_msg() {
        Ok(msg) => msg,
        Err(e) => return Err(classify_read(e, io_timeout)),
    };
    match accept.kind {
        MsgKind::Accept => {
            let payload =
                AcceptPayload::from_bytes(&accept.payload).map_err(|e| corrupt(e.to_string()))?;
            if resuming {
                metrics.resumes += 1;
                if let Some(at) = lost_at.take() {
                    if metrics.resume_latency_ns == 0 {
                        metrics.resume_latency_ns =
                            u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    }
                }
                // The server's watermark is authoritative; every frame we
                // sent past it is about to be retransmitted.
                st.watermark = payload.watermark;
                metrics.retransmitted_frames += st.sent_high.saturating_sub(payload.watermark);
            } else {
                st.session_id = payload.session;
                st.token = Some(payload.token);
                st.watermark = payload.watermark;
                st.sent_high = 0;
            }
            unacked.ack(st.watermark);
        }
        MsgKind::Error if resuming => {
            // A refused RESUME is retried, not fatal: the server may simply
            // not have parked the dead connection's session yet (the old
            // fd's EOF races our reconnect). A genuinely expired token
            // keeps refusing until the policy exhausts into ConnectionLost.
            return Err(AttemptError::Transient(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("resume refused: {}", rehydrate(&accept.payload)),
            )));
        }
        MsgKind::Error => return Err(AttemptError::Fatal(rehydrate(&accept.payload))),
        other => {
            return Err(AttemptError::Fatal(corrupt(format!(
                "expected ACCEPT, got {other:?}"
            ))))
        }
    }

    // Stream the frame suffix the server has not confirmed. A mid-stream
    // write failure must not abort the attempt here — fall through to the
    // read phase, where a typed ERROR may be waiting.
    let frame_refs = opts.frame_refs.max(1);
    let total_frames = (trace.len() as u64).div_ceil(frame_refs as u64);
    let mut write_err: Option<io::Error> = None;
    let mut pending: Option<Message> = None;
    let mut msgbuf = Vec::new();
    let mut seq = st.watermark;
    'streaming: while seq < total_frames {
        let payload = match unacked.get(seq) {
            Some(buffered) => buffered.clone(),
            None => trace
                .encode_frame(seq, frame_refs, opts.encoding)
                .map_err(|e| AttemptError::Fatal(PardaError::Io(e)))?,
        };
        msgbuf.clear();
        write_msg(&mut msgbuf, MsgKind::Data, &payload).map_err(AttemptError::Transient)?;
        if let Err(e) = conn.write_all(&msgbuf) {
            write_err = Some(e);
            break;
        }
        unacked.push(seq, payload);
        seq += 1;
        st.sent_high = st.sent_high.max(seq);
        st.frames_sent_total += 1;
        if chaos.should_drop(st.frames_sent_total) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            return Err(AttemptError::Transient(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected client-side connection drop",
            )));
        }
        if st.frames_sent_total.is_multiple_of(ACK_DRAIN_INTERVAL) {
            let mut ready = Vec::new();
            let drained = conn.drain_ready(&mut ready);
            for msg in ready {
                match msg.kind {
                    MsgKind::Ack => {
                        if let Ok(mark) = crate::proto::decode_ack(&msg.payload) {
                            metrics.acks_seen += 1;
                            st.watermark = st.watermark.max(mark);
                            unacked.ack(st.watermark);
                        }
                    }
                    _ => {
                        // A non-ACK mid-stream (a fatal ERROR, typically):
                        // stop streaming and let the reply phase sort it.
                        pending = Some(msg);
                        break 'streaming;
                    }
                }
            }
            if let Err(e) = drained {
                write_err = Some(e);
                break;
            }
        }
    }
    if write_err.is_none() && pending.is_none() {
        msgbuf.clear();
        write_msg(&mut msgbuf, MsgKind::Fin, &[]).map_err(AttemptError::Transient)?;
        write_err = conn.write_all(&msgbuf).err();
    }

    // Reply phase: STATS on success, ERROR on failure, interleaved ACKs
    // skipped. If the transport broke and no reply is readable either,
    // the broken write wins the classification (it is always transient —
    // for a single-attempt policy that surfaces as the raw I/O error).
    loop {
        let msg = match pending.take() {
            Some(msg) => msg,
            None => match conn.read_msg() {
                Ok(msg) => msg,
                Err(read_e) => {
                    return Err(match write_err {
                        Some(e) => AttemptError::Transient(e),
                        None => classify_read(read_e, io_timeout),
                    })
                }
            },
        };
        match msg.kind {
            MsgKind::Ack => {
                if let Ok(mark) = crate::proto::decode_ack(&msg.payload) {
                    metrics.acks_seen += 1;
                    st.watermark = st.watermark.max(mark);
                    unacked.ack(st.watermark);
                }
            }
            MsgKind::Stats => return parse_stats(st.session_id, &msg.payload),
            MsgKind::Error => return Err(AttemptError::Fatal(rehydrate(&msg.payload))),
            other => {
                return Err(AttemptError::Fatal(corrupt(format!(
                    "expected STATS, got {other:?}"
                ))))
            }
        }
    }
}

impl From<PardaError> for AttemptError {
    fn from(e: PardaError) -> Self {
        AttemptError::Fatal(e)
    }
}

/// Load a trace file (any supported format) and [`submit`] it.
pub fn submit_file<P: AsRef<Path>>(
    addr: &str,
    path: P,
    opts: &SubmitOptions,
) -> Result<SubmitReply, PardaError> {
    let trace = parda_trace::io::load_trace(path).map_err(PardaError::from)?;
    submit(addr, trace.as_slice(), opts)
}

fn config_text(opts: &SubmitOptions) -> String {
    let mut text = String::new();
    for (k, v) in &opts.config {
        text.push_str(k);
        text.push('=');
        text.push_str(v);
        text.push('\n');
    }
    text.push_str(match opts.encoding {
        Encoding::Raw => "encoding=raw\n",
        Encoding::DeltaVarint => "encoding=delta\n",
    });
    text.push_str(match opts.reply {
        ReplyFormat::Json => "reply=json\n",
        ReplyFormat::Binary => "reply=binary\n",
    });
    text
}

fn rehydrate(payload: &[u8]) -> PardaError {
    match ErrorFrame::from_payload(payload) {
        Ok(frame) => frame.to_parda(),
        Err(e) => corrupt(format!("undecodable ERROR frame: {e}")),
    }
}

fn parse_stats(session: u64, payload: &[u8]) -> Result<SubmitReply, AttemptError> {
    let (format, body) = payload
        .split_first()
        .ok_or_else(|| corrupt("empty STATS payload"))?;
    match *format {
        STATS_FORMAT_BINARY => Ok(SubmitReply {
            session,
            histogram: crate::proto::decode_histogram_binary(body).map_err(PardaError::from)?,
            stats_json: None,
            retry: ClientRetryMetrics::default(),
        }),
        STATS_FORMAT_JSON => {
            let text =
                std::str::from_utf8(body).map_err(|_| corrupt("JSON STATS body is not UTF-8"))?;
            let doc: serde::Value = serde_json::from_str(text)
                .map_err(|e| corrupt(format!("unparsable STATS JSON: {e:?}")))?;
            let hist_value = doc
                .field("histogram")
                .map_err(|e| corrupt(format!("STATS JSON: {e:?}")))?;
            let histogram = <ReuseHistogram as serde::Deserialize>::from_value(hist_value)
                .map_err(|e| corrupt(format!("STATS histogram: {e:?}")))?;
            Ok(SubmitReply {
                session,
                histogram,
                stats_json: Some(text.to_string()),
                retry: ClientRetryMetrics::default(),
            })
        }
        other => Err(corrupt(format!("unknown STATS format byte {other}")).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_text_appends_wire_settings_last() {
        let opts = SubmitOptions {
            config: vec![("tree".into(), "avl".into()), ("ranks".into(), "2".into())],
            encoding: Encoding::Raw,
            frame_refs: 128,
            reply: ReplyFormat::Json,
            ..SubmitOptions::default()
        };
        assert_eq!(
            config_text(&opts),
            "tree=avl\nranks=2\nencoding=raw\nreply=json\n"
        );
    }

    #[test]
    fn rehydrate_tolerates_garbage_error_frames() {
        assert_eq!(rehydrate(&[0xFF, 0x00]).class(), "corrupt");
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = RetryPolicy {
            backoff: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        let d2 = backoff_delay(&policy, 2);
        let d3 = backoff_delay(&policy, 3);
        let d4 = backoff_delay(&policy, 4);
        assert!(d2 >= Duration::from_millis(10) && d2 <= Duration::from_millis(13));
        assert!(d3 >= Duration::from_millis(20) && d3 <= Duration::from_millis(25));
        assert!(d4 >= Duration::from_millis(40) && d4 <= Duration::from_millis(50));
        // Deterministic: the same attempt always waits the same time.
        assert_eq!(backoff_delay(&policy, 3), d3);
        // The ceiling holds however far the attempts run.
        assert!(backoff_delay(&policy, 30) <= Duration::from_secs(1));
    }

    #[test]
    fn unacked_buffer_acks_prefixes_and_bounds_bytes() {
        let mut buf = UnackedBuf::new();
        for seq in 0..10u64 {
            buf.push(seq, vec![0u8; 100]);
        }
        assert!(buf.get(3).is_some());
        buf.ack(5);
        assert!(buf.get(3).is_none(), "acked frames are dropped");
        assert!(buf.get(7).is_some(), "unacked frames are kept");
        assert_eq!(buf.bytes, 500);
        // The byte cap evicts oldest first.
        let mut buf = UnackedBuf::new();
        buf.push(0, vec![0u8; UNACKED_CAP_BYTES]);
        buf.push(1, vec![0u8; 64]);
        assert!(buf.get(0).is_none(), "oversized prefix evicted");
        assert!(buf.get(1).is_some());
    }

    #[test]
    fn chaos_plan_fires_each_point_once_in_order() {
        let mut plan = ChaosPlan::new(&[5, 2]);
        assert!(!plan.should_drop(1));
        assert!(plan.should_drop(2), "sorted: 2 fires first");
        assert!(!plan.should_drop(3));
        assert!(plan.should_drop(5));
        assert!(!plan.should_drop(100), "each point fires once");
    }

    #[test]
    fn read_classification_separates_stall_disconnect_and_io() {
        let stall = classify_read(
            io::Error::from(io::ErrorKind::WouldBlock),
            Some(Duration::from_secs(3)),
        );
        match stall {
            AttemptError::Fatal(PardaError::Stall { deadline, .. }) => {
                assert_eq!(deadline, Duration::from_secs(3));
            }
            _ => panic!("timeout should classify as a stall"),
        }
        assert!(matches!(
            classify_read(io::Error::from(io::ErrorKind::ConnectionReset), None),
            AttemptError::Transient(_)
        ));
        assert!(matches!(
            classify_read(io::Error::from(io::ErrorKind::UnexpectedEof), None),
            AttemptError::Transient(_)
        ));
        assert!(matches!(
            classify_read(io::Error::from(io::ErrorKind::PermissionDenied), None),
            AttemptError::Fatal(PardaError::Io(_))
        ));
    }
}

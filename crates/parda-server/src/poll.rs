//! Readiness polling for the sharded server core.
//!
//! The daemon is std-only, so readiness comes from a raw `poll(2)` FFI
//! binding on Linux (the same precedent as the `signal(2)` binding in
//! `server::signal`). Platforms without that ABI get a coarse fallback:
//! a short bounded sleep that reports every registered fd as ready, so
//! the nonblocking read/write paths simply observe `WouldBlock` — correct,
//! just not cheap. The fallback keeps the crate building everywhere while
//! the Linux path removes both the accept-poll busy-wait and per-session
//! blocking reads.
//!
//! Both implementations are always compiled and selected at runtime
//! ([`Poller::new`] takes a `fallback` flag, threaded from
//! `ServerConfig::fallback_poller`), so CI on Linux exercises the
//! portability path instead of leaving it to break silently on exotic
//! hosts.

use std::io;
use std::time::Duration;

#[cfg(unix)]
pub(crate) use std::os::fd::RawFd;
#[cfg(not(unix))]
pub(crate) type RawFd = i32;

/// Readiness reported for one registered fd after [`Poller::wait`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Events {
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        // On LP64 Linux `nfds_t` is an unsigned long, i.e. usize.
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }
}

/// The `poll(2)`-backed implementation (Linux/Android only).
#[cfg(any(target_os = "linux", target_os = "android"))]
pub(crate) struct SysPoller {
    fds: Vec<sys::PollFd>,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl SysPoller {
    fn register(&mut self, fd: RawFd, read: bool, write: bool) {
        let mut events = 0i16;
        if read {
            events |= sys::POLLIN;
        }
        if write {
            events |= sys::POLLOUT;
        }
        self.fds.push(sys::PollFd {
            fd,
            events,
            revents: 0,
        });
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses. EINTR is treated as a zero-event wakeup so signal-driven
    /// shutdown latches are observed by the caller's next loop turn.
    fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len(), ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                for fd in &mut self.fds {
                    fd.revents = 0;
                }
                return Ok(());
            }
            return Err(err);
        }
        Ok(())
    }

    fn events(&self, idx: usize) -> Events {
        let revents = self.fds[idx].revents;
        Events {
            readable: revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
            writable: revents & (sys::POLLOUT | sys::POLLERR | sys::POLLNVAL) != 0,
        }
    }
}

/// Coarse portable implementation: a short bounded sleep, then every
/// registered interest is reported ready. Nonblocking I/O turns the
/// false positives into harmless `WouldBlock`s.
pub(crate) struct FallbackPoller {
    fds: Vec<(bool, bool)>,
}

impl FallbackPoller {
    fn register(&mut self, read: bool, write: bool) {
        self.fds.push((read, write));
    }

    fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        Ok(())
    }

    fn events(&self, idx: usize) -> Events {
        let (read, write) = self.fds[idx];
        Events {
            readable: read,
            writable: write,
        }
    }
}

/// A reusable readiness set. `clear` + `register` each round; indices
/// returned by `register` address the matching [`Events`] after `wait`.
pub(crate) enum Poller {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    Sys(SysPoller),
    Fallback(FallbackPoller),
}

impl Poller {
    /// `fallback: true` forces the bounded-sleep path even where
    /// `poll(2)` is available; platforms without it always fall back.
    pub(crate) fn new(fallback: bool) -> Self {
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if !fallback {
            return Poller::Sys(SysPoller { fds: Vec::new() });
        }
        let _ = fallback;
        Poller::Fallback(FallbackPoller { fds: Vec::new() })
    }

    pub(crate) fn clear(&mut self) {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Sys(p) => p.fds.clear(),
            Poller::Fallback(p) => p.fds.clear(),
        }
    }

    pub(crate) fn register(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Sys(p) => {
                p.register(fd, read, write);
                p.fds.len() - 1
            }
            Poller::Fallback(p) => {
                let _ = fd;
                p.register(read, write);
                p.fds.len() - 1
            }
        }
    }

    pub(crate) fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Sys(p) => p.wait(timeout),
            Poller::Fallback(p) => p.wait(timeout),
        }
    }

    pub(crate) fn events(&self, idx: usize) -> Events {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Sys(p) => p.events(idx),
            Poller::Fallback(p) => p.events(idx),
        }
    }
}

/// Zero-timeout readability probe for a single fd. Used by the stall
/// sweep so a session whose bytes arrived while the shard was busy in
/// analysis is never misclassified as idle. Without `poll(2)` (or with
/// the fallback poller forced) this reports `false`, reducing to plain
/// deadline behaviour.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub(crate) fn readable_now(fd: RawFd, fallback: bool) -> bool {
    if fallback {
        return false;
    }
    let mut pfd = sys::PollFd {
        fd,
        events: sys::POLLIN,
        revents: 0,
    };
    let rc = unsafe { sys::poll(&mut pfd, 1, 0) };
    rc > 0 && pfd.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0
}

#[cfg(not(any(target_os = "linux", target_os = "android")))]
pub(crate) fn readable_now(_fd: RawFd, _fallback: bool) -> bool {
    false
}

/// Cross-thread wakeup for a poll loop: one byte down a nonblocking
/// socketpair unparks the poller immediately instead of waiting out its
/// timeout. Used by the acceptor's shutdown handle and each shard's
/// admission inbox.
#[cfg(unix)]
pub(crate) struct Waker {
    tx: std::os::unix::net::UnixStream,
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    pub(crate) fn new() -> io::Result<Self> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// Nudge the poller. A full pipe means a wakeup is already pending,
    /// so `WouldBlock` (and any other failure) is deliberately ignored.
    pub(crate) fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drain pending wakeups so the next `wait` blocks again.
    pub(crate) fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }
}

/// Fallback waker: a latch the coarse poller's bounded sleep observes
/// within a few milliseconds.
#[cfg(not(unix))]
pub(crate) struct Waker {
    flag: std::sync::atomic::AtomicBool,
}

#[cfg(not(unix))]
impl Waker {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(Waker {
            flag: std::sync::atomic::AtomicBool::new(false),
        })
    }

    pub(crate) fn wake(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Release);
    }

    pub(crate) fn drain(&self) {
        self.flag.store(false, std::sync::atomic::Ordering::Release);
    }

    pub(crate) fn fd(&self) -> RawFd {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn fallback_poller_echoes_interests_after_a_bounded_sleep() {
        let mut poller = Poller::new(true);
        assert!(matches!(poller, Poller::Fallback(_)));
        let a = poller.register(-1, true, false);
        let b = poller.register(-1, false, true);
        let c = poller.register(-1, false, false);
        let start = Instant::now();
        poller.wait(Duration::from_secs(10)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "fallback wait is bounded regardless of the requested timeout"
        );
        let ev = poller.events(a);
        assert!(ev.readable && !ev.writable);
        let ev = poller.events(b);
        assert!(!ev.readable && ev.writable);
        let ev = poller.events(c);
        assert!(!ev.readable && !ev.writable);

        // clear + re-register restarts the index space.
        poller.clear();
        assert_eq!(poller.register(-1, true, true), 0);
    }

    #[test]
    fn fallback_readable_now_is_always_false() {
        assert!(!readable_now(0, true));
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    #[test]
    fn sys_poller_is_the_default_on_linux() {
        assert!(matches!(Poller::new(false), Poller::Sys(_)));
    }

    #[test]
    fn waker_unparks_and_drains() {
        let waker = Waker::new().unwrap();
        waker.wake();
        waker.wake();
        let mut poller = Poller::new(false);
        poller.register(waker.fd(), true, false);
        poller.wait(Duration::from_millis(100)).unwrap();
        waker.drain();
        // After draining, a zero-timeout probe sees nothing pending.
        assert!(!readable_now(waker.fd(), false) || cfg!(not(target_os = "linux")));
    }
}

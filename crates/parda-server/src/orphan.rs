//! Orphan pool: bounded parking lot for sessions whose transport died.
//!
//! When a connection is lost mid-stream (or after completion but before
//! the reply drained) and `ServerConfig::orphan_retention` is non-zero,
//! the shard detaches the session from its dead fd and parks it here
//! instead of failing it. A reconnecting client presents the session
//! token in a `RESUME` message; whichever shard receives that connection
//! adopts the parked session — entries are inert (no fd, no thread
//! affinity), so cross-shard resumption needs no routing.
//!
//! The pool is bounded two ways:
//!
//! - **Retention deadline**: entries older than `orphan_retention` are
//!   expired by the shard loops' periodic sweep.
//! - **Byte budget**: the summed retained state (analysis state bytes
//!   plus any undelivered reply) may not exceed `orphan_budget`; inserts
//!   evict the oldest entries first until the new entry fits.
//!
//! Expiring an orphan records the session as failed (if no outcome was
//! recorded yet) and drops it, which releases its admission slot and
//! memory through the usual RAII guards. After the accept loop stops and
//! the shards join, `drain` expires everything left so the final metrics
//! reconcile: `sessions_resumed + orphans_expired == sessions_orphaned`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use parda_obs::ServerCounters;

use crate::session::Session;

pub(crate) struct OrphanPool {
    retention: Duration,
    budget: u64,
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    total_bytes: u64,
}

struct Entry {
    session: Session,
    parked_at: Instant,
    bytes: u64,
}

impl OrphanPool {
    pub(crate) fn new(retention: Duration, budget: u64) -> Self {
        OrphanPool {
            retention,
            budget,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                total_bytes: 0,
            }),
        }
    }

    /// Whether disconnect-orphaning is enabled at all. With a zero
    /// retention the shards keep the legacy behaviour (a lost transport
    /// fails the session immediately).
    pub(crate) fn enabled(&self) -> bool {
        !self.retention.is_zero()
    }

    /// Park a detached session. Evicts oldest entries as needed to stay
    /// within the byte budget; a session too large to ever fit is
    /// expired immediately. The caller has already counted
    /// `sessions_orphaned`.
    pub(crate) fn park(&self, session: Session, counters: &ServerCounters) {
        let bytes = session.orphan_bytes();
        if bytes > self.budget {
            expire(session, counters);
            return;
        }
        let mut evicted = Vec::new();
        {
            let mut inner = self.inner.lock().unwrap();
            while inner.total_bytes + bytes > self.budget {
                let Some((&oldest, _)) = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, entry)| entry.parked_at)
                else {
                    break;
                };
                let entry = inner.entries.remove(&oldest).expect("key just observed");
                inner.total_bytes -= entry.bytes;
                evicted.push(entry.session);
            }
            inner.total_bytes += bytes;
            inner.entries.insert(
                session.id(),
                Entry {
                    session,
                    parked_at: Instant::now(),
                    bytes,
                },
            );
        }
        for session in evicted {
            expire(session, counters);
        }
    }

    /// Reclaim the session matching a RESUME token, if it is still
    /// parked. The id is recovered from the token prefix; the full token
    /// must match so stale or forged handles cannot adopt someone else's
    /// session.
    pub(crate) fn take(&self, token: &[u8; crate::proto::TOKEN_LEN]) -> Option<Session> {
        let id = u64::from_le_bytes(token[..8].try_into().expect("8-byte prefix"));
        let mut inner = self.inner.lock().unwrap();
        if !inner
            .entries
            .get(&id)
            .is_some_and(|entry| entry.session.token_matches(token))
        {
            return None;
        }
        let entry = inner.entries.remove(&id).expect("entry just matched");
        inner.total_bytes -= entry.bytes;
        Some(entry.session)
    }

    /// Expire entries past the retention deadline. Called from each
    /// shard loop; cheap when the pool is empty.
    pub(crate) fn sweep(&self, counters: &ServerCounters) {
        let expired = {
            let mut inner = self.inner.lock().unwrap();
            if inner.entries.is_empty() {
                return;
            }
            let deadline = self.retention;
            let stale: Vec<u64> = inner
                .entries
                .iter()
                .filter(|(_, entry)| entry.parked_at.elapsed() >= deadline)
                .map(|(&id, _)| id)
                .collect();
            let mut out = Vec::with_capacity(stale.len());
            for id in stale {
                let entry = inner.entries.remove(&id).expect("key just collected");
                inner.total_bytes -= entry.bytes;
                out.push(entry.session);
            }
            out
        };
        for session in expired {
            expire(session, counters);
        }
    }

    /// Expire everything still parked. Called once at shutdown, after
    /// the shards have joined (no RESUME can arrive any more), so the
    /// orphaned/resumed/expired counters reconcile in the final report.
    pub(crate) fn drain(&self, counters: &ServerCounters) {
        let all = {
            let mut inner = self.inner.lock().unwrap();
            inner.total_bytes = 0;
            inner
                .entries
                .drain()
                .map(|(_, e)| e.session)
                .collect::<Vec<_>>()
        };
        for session in all {
            expire(session, counters);
        }
    }

    /// Retained bytes across all parked sessions (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn retained_bytes(&self) -> u64 {
        self.inner.lock().unwrap().total_bytes
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }
}

/// Record the terminal outcome for a parked session that will never be
/// resumed, then drop it — releasing its admission slot and memory.
fn expire(mut session: Session, counters: &ServerCounters) {
    session.expire(counters);
    counters.orphans_expired.incr();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(retention_ms: u64, budget: u64) -> OrphanPool {
        OrphanPool::new(Duration::from_millis(retention_ms), budget)
    }

    // Fresh sessions have no analysis state, so each parks at the 1-byte
    // floor — which makes the budget arithmetic exact in these tests.

    #[test]
    fn zero_retention_disables_orphaning() {
        assert!(!pool(0, 1 << 20).enabled());
        assert!(pool(10, 1 << 20).enabled());
    }

    #[test]
    fn budget_overflow_evicts_the_oldest_entry_first() {
        let pool = pool(10_000, 2);
        let counters = ServerCounters::default();
        let (s1, t1) = Session::tokened(1);
        let (s2, t2) = Session::tokened(2);
        let (s3, t3) = Session::tokened(3);
        pool.park(s1, &counters);
        std::thread::sleep(Duration::from_millis(2));
        pool.park(s2, &counters);
        std::thread::sleep(Duration::from_millis(2));
        pool.park(s3, &counters);

        assert_eq!(pool.len(), 2);
        assert_eq!(pool.retained_bytes(), 2);
        assert_eq!(counters.orphans_expired.get(), 1);
        assert_eq!(counters.sessions_failed.get(), 1, "eviction is terminal");
        assert!(pool.take(&t1).is_none(), "the oldest was evicted");
        assert!(pool.take(&t2).is_some());
        assert!(pool.take(&t3).is_some());
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn oversized_session_expires_immediately_without_evicting_anyone() {
        let pool = pool(10_000, 0);
        let counters = ServerCounters::default();
        let (s, t) = Session::tokened(9);
        pool.park(s, &counters);
        assert_eq!(pool.len(), 0);
        assert_eq!(counters.orphans_expired.get(), 1);
        assert!(pool.take(&t).is_none());
    }

    #[test]
    fn take_requires_the_full_token_not_just_the_id_prefix() {
        let pool = pool(10_000, 1 << 20);
        let counters = ServerCounters::default();
        let (s, t) = Session::tokened(42);
        let (_, stale) = Session::tokened(42); // same id, different nonce
        pool.park(s, &counters);
        assert!(pool.take(&stale).is_none(), "stale nonce must not match");
        assert!(pool.take(&t).is_some());
        assert!(pool.take(&t).is_none(), "an orphan is adopted at most once");
    }

    #[test]
    fn sweep_expires_only_entries_past_the_retention_deadline() {
        let pool = pool(40, 1 << 20);
        let counters = ServerCounters::default();
        let (s1, t1) = Session::tokened(1);
        pool.park(s1, &counters);
        std::thread::sleep(Duration::from_millis(60));
        let (s2, t2) = Session::tokened(2);
        pool.park(s2, &counters);
        pool.sweep(&counters);
        assert_eq!(counters.orphans_expired.get(), 1);
        assert!(pool.take(&t1).is_none(), "past deadline: expired");
        assert!(pool.take(&t2).is_some(), "fresh: retained");
    }

    #[test]
    fn drain_expires_everything_left() {
        let pool = pool(10_000, 1 << 20);
        let counters = ServerCounters::default();
        for id in 0..5 {
            let (s, _) = Session::tokened(id);
            pool.park(s, &counters);
        }
        pool.drain(&counters);
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.retained_bytes(), 0);
        assert_eq!(counters.orphans_expired.get(), 5);
    }
}

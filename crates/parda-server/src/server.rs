//! The daemon: listener, sharded-core supervisor, shutdown.
//!
//! The server is plain std — no async runtime. A nonblocking acceptor
//! thread (the caller of [`Server::run`]) waits on `poll(2)` readiness
//! over the listener and a shutdown waker, and pins each accepted
//! connection to the least-loaded of N shard event loops
//! (the `shard` module). Shards own all session I/O, frame decoding, and
//! analysis; the per-session state machine lives in [`crate::session`]
//! and analysis resumes frame by frame via `parda_core::SessionAnalysis`
//! — no per-session threads, no per-session pipes.
//!
//! Shutdown (programmatic via [`ShutdownHandle`], or SIGINT/SIGTERM once
//! [`install_signal_shutdown`] ran) stops the acceptor and *drains*: every
//! in-flight session runs to completion and delivers its reply before
//! [`Server::run`] returns the final [`ServerMetrics`], now including the
//! per-shard breakdown and the cross-shard p99 session latency.
//!
//! Supervision mirrors PR 4's worker isolation: session stepping runs
//! under `catch_unwind` inside the shard, so a panicking session (a
//! `server::session` failpoint in tests, a bug in production) is converted
//! into a `sessions_failed` tick and a best-effort WORKER-PANIC error
//! frame to that client — the daemon itself never dies with a session.

use crate::orphan::OrphanPool;
use crate::poll::{self, Poller, Waker};
use crate::shard::{run_shard, Inbox};
use parda_core::FaultPolicy;
use parda_obs::{LatencyHist, ServerCounters, ServerMetrics, ShardMetrics};
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on one acceptor poll wait — also how fast the process-wide
/// signal latch is noticed when the poll syscall is not interrupted.
const ACCEPT_WAIT: Duration = Duration::from_millis(50);

/// Ceiling for the automatic shard count (`shards: 0`).
const AUTO_SHARDS_MAX: usize = 8;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Admission cap: concurrent *admitted* sessions.
    pub max_sessions: usize,
    /// Per-session cap on received DATA payload bytes (`None`: unlimited).
    pub max_session_bytes: Option<u64>,
    /// Fault policy for the per-session analyses; its `degradation` is
    /// also the default wire-corruption policy for sessions that do not
    /// pick their own.
    pub fault: FaultPolicy,
    /// Socket read deadline; an idle client trips a STALL error rather
    /// than pinning a session slot forever. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Stop after accepting this many connections (`None`: serve until
    /// shutdown). For tests and benchmarks.
    pub accept_limit: Option<u64>,
    /// Default approximation mode for sessions whose CONFIG carries no
    /// `approx=` key (`Exact` preserves the historical behavior; a session
    /// can always force `approx=exact` explicitly).
    pub default_approx: parda_core::ApproxMode,
    /// Ingest/analysis shard threads. `0` scales with the hardware
    /// (`available_parallelism`, capped at 8).
    pub shards: usize,
    /// How long a session whose transport died is kept resumable in the
    /// orphan pool. `Duration::ZERO` (the default) disables resumption:
    /// a lost connection fails its session immediately, the historical
    /// behavior.
    pub orphan_retention: Duration,
    /// Global byte budget for parked orphan state (analysis state plus
    /// undelivered replies). Inserting past the budget evicts the oldest
    /// orphans first.
    pub orphan_budget: u64,
    /// Queue a cumulative ingest ACK every this many DATA frames so a
    /// reconnecting client knows where to resume from. `0` (the default)
    /// sends no ACKs — the pre-resumption wire behavior; the watermark in
    /// a resume-ACCEPT is authoritative either way, so ACK cadence only
    /// trades overhead against retransmission volume.
    pub ack_every: u32,
    /// Force the portable bounded-sleep poller instead of `poll(2)` —
    /// lets Linux CI exercise the fallback paths (readiness, wakers, the
    /// stall sweep's reduced probe) that otherwise only run on platforms
    /// without the FFI binding.
    pub fallback_poller: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_sessions: 8,
            max_session_bytes: None,
            fault: FaultPolicy::default(),
            idle_timeout: Some(Duration::from_secs(30)),
            accept_limit: None,
            default_approx: parda_core::ApproxMode::Exact,
            shards: 0,
            orphan_retention: Duration::ZERO,
            orphan_budget: 64 * 1024 * 1024,
            ack_every: 0,
            fallback_poller: false,
        }
    }
}

impl ServerConfig {
    /// The shard count `run` will use.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, AUTO_SHARDS_MAX)
    }
}

/// Flips the server's shutdown flag from another thread (or a signal
/// handler's polling loop) and unparks the acceptor immediately.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    waker: Arc<Waker>,
}

impl ShutdownHandle {
    /// Request a graceful shutdown: stop accepting, drain sessions.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    wake: Arc<Waker>,
    counters: Arc<ServerCounters>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Bind the listener (the returned server is not accepting yet).
    pub fn bind(cfg: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Self {
            listener,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
            wake: Arc::new(Waker::new()?),
            counters: Arc::new(ServerCounters::default()),
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address — the actual port when the config asked for 0.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            waker: Arc::clone(&self.wake),
        }
    }

    /// Live counters (shared with every shard).
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// Accept and serve until shutdown, then drain the shards and return
    /// the final metrics snapshot.
    pub fn run(self) -> io::Result<ServerMetrics> {
        self.listener.set_nonblocking(true)?;
        let scfg = Arc::new(self.cfg.clone());
        let nshards = scfg.effective_shards();
        // One orphan pool shared by every shard: entries are inert (no fd,
        // no thread affinity), so a RESUME landing on any shard can adopt
        // a session another shard parked.
        let pool = Arc::new(OrphanPool::new(scfg.orphan_retention, scfg.orphan_budget));
        let mut inboxes: Vec<Arc<Inbox>> = Vec::with_capacity(nshards);
        let mut joins: Vec<JoinHandle<(ShardMetrics, LatencyHist)>> = Vec::with_capacity(nshards);
        for index in 0..nshards {
            let inbox = Arc::new(Inbox::new()?);
            let handle = {
                let inbox = Arc::clone(&inbox);
                let scfg = Arc::clone(&scfg);
                let counters = Arc::clone(&self.counters);
                let active = Arc::clone(&self.active);
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("parda-shard-{index}"))
                    .spawn(move || run_shard(index, inbox, scfg, counters, active, pool))?
            };
            inboxes.push(inbox);
            joins.push(handle);
        }

        let mut poller = Poller::new(self.cfg.fallback_poller);
        let mut next_id: u64 = 0;
        let mut accepted: u64 = 0;
        let accept_error = 'accepting: loop {
            if self.should_stop(accepted) {
                break None;
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        accepted += 1;
                        let id = next_id;
                        next_id += 1;
                        if accept_failpoint() {
                            // Injected accept failure: the connection is
                            // dropped on the floor, as if the OS ran out
                            // of descriptors mid-accept.
                            self.counters.sessions_rejected.incr();
                        } else {
                            least_loaded(&inboxes).push(stream, id);
                        }
                        if self.should_stop(accepted) {
                            break 'accepting None;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => break 'accepting Some(e),
                }
            }
            poller.clear();
            poller.register(listener_fd(&self.listener), true, false);
            poller.register(self.wake.fd(), true, false);
            let _ = poller.wait(ACCEPT_WAIT);
            self.wake.drain();
        };

        // Drain: no new connections, but every in-flight session finishes
        // and delivers its reply before the shards exit.
        for inbox in &inboxes {
            inbox.stop();
        }
        let mut merged = LatencyHist::default();
        let mut per_shard = Vec::new();
        for join in joins {
            if let Ok((shard_metrics, shard_hist)) = join.join() {
                merged.merge(&shard_hist);
                if shard_metrics.sessions > 0 {
                    per_shard.push(shard_metrics);
                }
            }
        }
        // The shards are gone, so no RESUME can arrive: expire whatever is
        // still parked. This releases the orphans' admission slots and
        // memory and makes the final metrics reconcile —
        // `sessions_resumed + orphans_expired == sessions_orphaned`.
        pool.drain(&self.counters);
        if let Some(e) = accept_error {
            return Err(e);
        }
        let mut metrics = self.counters.snapshot();
        metrics.p99_session_ns = merged.quantile(0.99);
        metrics.per_shard = per_shard;
        Ok(metrics)
    }

    fn should_stop(&self, accepted: u64) -> bool {
        if self.shutdown.load(Ordering::SeqCst) || signal::requested() {
            return true;
        }
        self.cfg.accept_limit.is_some_and(|limit| accepted >= limit)
    }
}

#[cfg(unix)]
fn listener_fd(listener: &TcpListener) -> poll::RawFd {
    use std::os::fd::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
fn listener_fd(_listener: &TcpListener) -> poll::RawFd {
    -1
}

/// The shard with the fewest pinned connections; `push` bumps the gauge
/// immediately, so a burst of accepts spreads evenly.
fn least_loaded(inboxes: &[Arc<Inbox>]) -> &Inbox {
    inboxes
        .iter()
        .min_by_key(|inbox| inbox.load())
        .expect("at least one shard")
}

/// The `server::accept` fault-injection site, shaped so the disabled
/// build carries no dead flag.
fn accept_failpoint() -> bool {
    parda_failpoint::failpoint!("server::accept", return true);
    false
}

/// Process-wide SIGINT/SIGTERM latch, polled by the accept loop.
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub(super) fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub(super) mod unix {
        use super::REQUESTED;
        use std::sync::atomic::Ordering;

        // Raw libc signal(2) binding: the container has no signal crate
        // and the need — latch one flag — does not justify one. The
        // handler only performs the async-signal-safe atomic store.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        extern "C" fn on_signal(_signum: i32) {
            REQUESTED.store(true, Ordering::SeqCst);
        }

        pub fn install() {
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }
}

/// Route SIGINT and SIGTERM into a graceful drain of every running
/// [`Server`] in this process (they all poll the same latch). No-op on
/// non-unix targets.
pub fn install_signal_shutdown() {
    #[cfg(unix)]
    signal::unix::install();
}

/// Set the shutdown latch programmatically, exactly as a signal would —
/// lets tests exercise the drain path without raising a real signal.
pub fn request_shutdown() {
    signal::REQUESTED.store(true, Ordering::SeqCst);
}

/// Clear the process-wide latch (tests that start several servers).
pub fn reset_shutdown_latch() {
    signal::REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_reports_the_ephemeral_port() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn shutdown_handle_stops_an_idle_server() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let handle = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run().unwrap());
        std::thread::sleep(Duration::from_millis(30));
        handle.shutdown();
        let metrics = t.join().unwrap();
        assert_eq!(metrics, ServerMetrics::default());
    }

    #[test]
    fn accept_limit_bounds_the_run() {
        let server = Server::bind(ServerConfig {
            accept_limit: Some(0),
            ..ServerConfig::default()
        })
        .unwrap();
        let metrics = server.run().unwrap();
        assert_eq!(metrics.sessions_opened, 0);
    }

    #[test]
    fn effective_shards_is_positive_and_overridable() {
        let auto = ServerConfig::default().effective_shards();
        assert!((1..=AUTO_SHARDS_MAX).contains(&auto));
        let cfg = ServerConfig {
            shards: 3,
            ..ServerConfig::default()
        };
        assert_eq!(cfg.effective_shards(), 3);
    }
}

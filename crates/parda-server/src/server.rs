//! The daemon: listener, accept loop, session supervisor, shutdown.
//!
//! The server is plain std — no async runtime. Each accepted connection
//! gets its own OS thread running the session state machine from
//! [`crate::session`]; the accept loop polls a shutdown flag (settable
//! programmatically via [`ShutdownHandle`] or by SIGINT/SIGTERM once
//! [`install_signal_shutdown`] ran) and, on shutdown, stops accepting and
//! *drains*: every in-flight session runs to completion and delivers its
//! reply before [`Server::run`] returns the final [`ServerMetrics`].
//!
//! Supervision mirrors PR 4's worker isolation: each session thread runs
//! under `catch_unwind`, so a panicking session (a `server::session`
//! failpoint in tests, a bug in production) is converted into a
//! `sessions_failed` tick and a best-effort WORKER-PANIC error frame to
//! that client — the daemon itself never dies with a session.

use crate::proto::{write_msg, ErrorClass, ErrorFrame, MsgKind};
use crate::session::{serve_connection, Outcome};
use parda_core::FaultPolicy;
use parda_obs::{ServerCounters, ServerMetrics};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when there is nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Admission cap: concurrent *admitted* sessions.
    pub max_sessions: usize,
    /// Per-session cap on received DATA payload bytes (`None`: unlimited).
    pub max_session_bytes: Option<u64>,
    /// Fault policy for the per-session analyses; its `degradation` is
    /// also the default wire-corruption policy for sessions that do not
    /// pick their own.
    pub fault: FaultPolicy,
    /// Socket read deadline; an idle client trips a STALL error rather
    /// than pinning a session slot forever. `None` waits forever.
    pub idle_timeout: Option<Duration>,
    /// Stop after accepting this many connections (`None`: serve until
    /// shutdown). For tests and benchmarks.
    pub accept_limit: Option<u64>,
    /// Default approximation mode for sessions whose CONFIG carries no
    /// `approx=` key (`Exact` preserves the historical behavior; a session
    /// can always force `approx=exact` explicitly).
    pub default_approx: parda_core::ApproxMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_sessions: 8,
            max_session_bytes: None,
            fault: FaultPolicy::default(),
            idle_timeout: Some(Duration::from_secs(30)),
            accept_limit: None,
            default_approx: parda_core::ApproxMode::Exact,
        }
    }
}

/// Flips the server's shutdown flag from another thread (or a signal
/// handler's polling loop).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Request a graceful shutdown: stop accepting, drain sessions.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Bind the listener (the returned server is not accepting yet).
    pub fn bind(cfg: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Self {
            listener,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(ServerCounters::default()),
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address — the actual port when the config asked for 0.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from anywhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Live counters (shared with every session thread).
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// Accept and serve until shutdown, then drain and return the final
    /// metrics snapshot.
    pub fn run(self) -> io::Result<ServerMetrics> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        let mut next_id: u64 = 0;
        let mut accepted: u64 = 0;

        while !self.should_stop(accepted) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted += 1;
                    let id = next_id;
                    next_id += 1;
                    if accept_failpoint() {
                        // Injected accept failure: the connection is
                        // dropped on the floor, as if the OS ran out of
                        // descriptors mid-accept.
                        self.counters.sessions_rejected.incr();
                        continue;
                    }
                    handles.push(self.spawn_session(stream, id)?);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    reap_finished(&mut handles);
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no new connections, but every in-flight session finishes
        // and sends its reply.
        for h in handles {
            let _ = h.join();
        }
        Ok(self.counters.snapshot())
    }

    fn should_stop(&self, accepted: u64) -> bool {
        if self.shutdown.load(Ordering::SeqCst) || signal::requested() {
            return true;
        }
        self.cfg.accept_limit.is_some_and(|limit| accepted >= limit)
    }

    /// One thread per connection, panic-isolated: a session panic becomes
    /// a failure metric and a best-effort error reply, never a dead daemon.
    fn spawn_session(&self, stream: TcpStream, id: u64) -> io::Result<JoinHandle<()>> {
        let cfg = self.cfg.clone();
        let counters = Arc::clone(&self.counters);
        let active = Arc::clone(&self.active);
        // A pre-cloned handle lets the supervisor still reach the client
        // after the session's own I/O objects unwound with the panic.
        let rescue = stream.try_clone();
        std::thread::Builder::new()
            .name(format!("parda-session-{id}"))
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_connection(stream, id, &cfg, &counters, &active)
                }));
                if outcome.is_err() {
                    counters.sessions_failed.incr();
                    if let Ok(mut s) = rescue {
                        let frame =
                            ErrorFrame::new(ErrorClass::WorkerPanic, "session thread panicked");
                        let _ = write_msg(&mut s, MsgKind::Error, &frame.to_payload());
                        // Swallow whatever the client was still sending so
                        // it can reach our error frame (closing with
                        // unread data would RST the buffered reply away).
                        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
                        let mut sink = [0u8; 4096];
                        while matches!(io::Read::read(&mut s, &mut sink), Ok(n) if n > 0) {}
                    }
                }
                // Completed / Rejected / Failed already counted in-session.
                let _: Result<Outcome, _> = outcome;
            })
    }
}

/// The `server::accept` fault-injection site, shaped so the disabled
/// build carries no dead flag.
fn accept_failpoint() -> bool {
    parda_failpoint::failpoint!("server::accept", return true);
    false
}

fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Process-wide SIGINT/SIGTERM latch, polled by the accept loop.
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub(super) fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub(super) mod unix {
        use super::REQUESTED;
        use std::sync::atomic::Ordering;

        // Raw libc signal(2) binding: the container has no signal crate
        // and the need — latch one flag — does not justify one. The
        // handler only performs the async-signal-safe atomic store.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        extern "C" fn on_signal(_signum: i32) {
            REQUESTED.store(true, Ordering::SeqCst);
        }

        pub fn install() {
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }
}

/// Route SIGINT and SIGTERM into a graceful drain of every running
/// [`Server`] in this process (they all poll the same latch). No-op on
/// non-unix targets.
pub fn install_signal_shutdown() {
    #[cfg(unix)]
    signal::unix::install();
}

/// Set the shutdown latch programmatically, exactly as a signal would —
/// lets tests exercise the drain path without raising a real signal.
pub fn request_shutdown() {
    signal::REQUESTED.store(true, Ordering::SeqCst);
}

/// Clear the process-wide latch (tests that start several servers).
pub fn reset_shutdown_latch() {
    signal::REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_reports_the_ephemeral_port() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
    }

    #[test]
    fn shutdown_handle_stops_an_idle_server() {
        let server = Server::bind(ServerConfig::default()).unwrap();
        let handle = server.shutdown_handle();
        let t = std::thread::spawn(move || server.run().unwrap());
        std::thread::sleep(Duration::from_millis(30));
        handle.shutdown();
        let metrics = t.join().unwrap();
        assert_eq!(metrics, ServerMetrics::default());
    }

    #[test]
    fn accept_limit_bounds_the_run() {
        let server = Server::bind(ServerConfig {
            accept_limit: Some(0),
            ..ServerConfig::default()
        })
        .unwrap();
        let metrics = server.run().unwrap();
        assert_eq!(metrics.sessions_opened, 0);
    }
}

//! The `parda-server` wire protocol.
//!
//! Everything on the socket is a length-prefixed *message*:
//!
//! ```text
//! [kind u8][payload_len u32 LE][payload …]
//! ```
//!
//! A session is a fixed exchange:
//!
//! ```text
//! client                         server
//!   HELLO  ("PARDAWIRE" + ver) →
//!   CONFIG (key=value lines)   →
//!                              ← ACCEPT (id + token + watermark) | ERROR
//!   DATA   (v2.1 frame)        →   (zero or more)
//!                              ← ACK (watermark u64)   (periodic, advisory)
//!   FIN    (empty)             →
//!                              ← STATS (format u8 + body) |  ERROR
//! ```
//!
//! When a connection dies mid-session the server parks the session in its
//! orphan pool; the client reconnects and sends `RESUME` (token + the last
//! watermark it saw) in place of CONFIG. The resume ACCEPT carries the
//! server's authoritative watermark — the count of frames already ingested
//! — and the client retransmits only frames past it. Nothing is replayed
//! server-side, so the histogram stays bit-identical to an unbroken run.
//!
//! A DATA payload is byte-for-byte the v2.1 *inline frame* layout from
//! `parda-trace::io` — `count u32 | len u32 | crc32c u32 | encoded refs` —
//! so the file format's CRC verification and frame decoding (and therefore
//! the `Degradation` quarantine machinery) apply unchanged on the wire.
//!
//! ERROR payloads carry a class byte aligned with the `PardaError`
//! taxonomy plus two u32 details (rank/attempts, rank/deadline-ms) and a
//! UTF-8 message, so the client can rehydrate a *typed* error and the CLI
//! maps it onto the existing exit-code classes.

use parda_core::PardaError;
use parda_hash::crc32c;
use parda_trace::io::{
    decode_frame_payload_into, decode_tagged_frame_payload_into, encode_frame_payload,
    encode_tagged_frame_payload, Encoding,
};
use parda_trace::{Addr, Tid};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Handshake magic carried by HELLO.
pub const WIRE_MAGIC: &[u8; 9] = b"PARDAWIRE";

/// Wire protocol version carried by HELLO.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on any message payload (a DATA frame at the default
/// 65 536-ref framing is ~512 KiB; this leaves generous headroom while
/// bounding what a lying length prefix can make the server allocate).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Bytes of the DATA inline header (`count u32 | len u32 | crc32c u32`).
pub const DATA_HEADER_LEN: usize = 12;

/// STATS payload format byte: UTF-8 `{"histogram":…,"stats":…}` document.
pub const STATS_FORMAT_JSON: u8 = 0;

/// STATS payload format byte: binary histogram (see
/// [`encode_histogram_binary`]).
pub const STATS_FORMAT_BINARY: u8 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Message discriminant (the `kind` byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Client → server: protocol magic + version.
    Hello = 1,
    /// Client → server: session configuration as `key=value` lines.
    Config = 2,
    /// Client → server: one v2.1 trace frame.
    Data = 3,
    /// Client → server: end of trace, run the analysis.
    Fin = 4,
    /// Server → client: session admitted; payload is
    /// `id u64 | token [u8;16] | watermark u64` (see [`AcceptPayload`]).
    Accept = 5,
    /// Server → client: the analysis result.
    Stats = 6,
    /// Server → client: a classified failure (see [`ErrorFrame`]).
    Error = 7,
    /// Server → client: periodic ingest acknowledgement; payload is the
    /// watermark (u64 LE) — frames ingested so far. Advisory: a lost ACK
    /// costs only retransmission volume, never correctness.
    Ack = 8,
    /// Client → server (in place of CONFIG): reattach to an orphaned
    /// session; payload is `token [u8;16] | last seen watermark u64`.
    Resume = 9,
}

impl MsgKind {
    pub(crate) fn from_u8(b: u8) -> io::Result<Self> {
        Ok(match b {
            1 => MsgKind::Hello,
            2 => MsgKind::Config,
            3 => MsgKind::Data,
            4 => MsgKind::Fin,
            5 => MsgKind::Accept,
            6 => MsgKind::Stats,
            7 => MsgKind::Error,
            8 => MsgKind::Ack,
            9 => MsgKind::Resume,
            other => return Err(invalid(format!("unknown message kind {other:#04x}"))),
        })
    }
}

/// Bytes of a session resume token carried in ACCEPT and RESUME.
pub const TOKEN_LEN: usize = 16;

/// The decoded ACCEPT payload: `id u64 | token [u8;16] | watermark u64`
/// (32 bytes, all LE). On a fresh accept the watermark is 0; on a resume
/// accept it is the server's authoritative count of frames already
/// ingested — the client retransmits from there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcceptPayload {
    /// The server-assigned session id.
    pub session: u64,
    /// Opaque resume token (id + nonce); present to RESUME verbatim.
    pub token: [u8; TOKEN_LEN],
    /// Frames the server has ingested for this session.
    pub watermark: u64,
}

impl AcceptPayload {
    /// Serialized length of an ACCEPT payload.
    pub const LEN: usize = 8 + TOKEN_LEN + 8;

    /// Serialize for the wire.
    pub fn to_bytes(&self) -> [u8; Self::LEN] {
        let mut out = [0u8; Self::LEN];
        out[..8].copy_from_slice(&self.session.to_le_bytes());
        out[8..8 + TOKEN_LEN].copy_from_slice(&self.token);
        out[8 + TOKEN_LEN..].copy_from_slice(&self.watermark.to_le_bytes());
        out
    }

    /// Parse an ACCEPT payload.
    pub fn from_bytes(payload: &[u8]) -> io::Result<Self> {
        if payload.len() != Self::LEN {
            return Err(invalid(format!(
                "ACCEPT payload is {} bytes, expected {}",
                payload.len(),
                Self::LEN
            )));
        }
        let mut token = [0u8; TOKEN_LEN];
        token.copy_from_slice(&payload[8..8 + TOKEN_LEN]);
        Ok(Self {
            session: u64::from_le_bytes(payload[..8].try_into().unwrap()),
            token,
            watermark: u64::from_le_bytes(payload[8 + TOKEN_LEN..].try_into().unwrap()),
        })
    }
}

/// Serialize a RESUME payload: `token [u8;16] | last seen watermark u64`.
pub fn encode_resume(token: &[u8; TOKEN_LEN], last_acked: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TOKEN_LEN + 8);
    out.extend_from_slice(token);
    out.extend_from_slice(&last_acked.to_le_bytes());
    out
}

/// Parse a RESUME payload.
pub fn decode_resume(payload: &[u8]) -> io::Result<([u8; TOKEN_LEN], u64)> {
    if payload.len() != TOKEN_LEN + 8 {
        return Err(invalid(format!(
            "RESUME payload is {} bytes, expected {}",
            payload.len(),
            TOKEN_LEN + 8
        )));
    }
    let mut token = [0u8; TOKEN_LEN];
    token.copy_from_slice(&payload[..TOKEN_LEN]);
    let last = u64::from_le_bytes(payload[TOKEN_LEN..].try_into().unwrap());
    Ok((token, last))
}

/// Parse an ACK payload (the watermark).
pub fn decode_ack(payload: &[u8]) -> io::Result<u64> {
    payload
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| invalid("ACK payload is not a u64 watermark"))
}

/// One decoded wire message.
#[derive(Clone, Debug)]
pub struct Message {
    /// The discriminant byte.
    pub kind: MsgKind,
    /// The raw payload.
    pub payload: Vec<u8>,
}

/// Write one message (header + payload). Callers flush when the peer is
/// expected to act on it.
pub fn write_msg(w: &mut impl Write, kind: MsgKind, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut head = [0u8; 5];
    head[0] = kind as u8;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)
}

/// Read one message, rejecting oversized length prefixes before
/// allocating.
pub fn read_msg(r: &mut impl Read) -> io::Result<Message> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let kind = MsgKind::from_u8(head[0])?;
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(invalid(format!(
            "message payload of {len} bytes exceeds cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Message { kind, payload })
}

/// The HELLO payload for this protocol version.
pub fn hello_payload() -> Vec<u8> {
    let mut p = WIRE_MAGIC.to_vec();
    p.push(WIRE_VERSION);
    p
}

/// Validate a HELLO payload (magic + a version we speak).
pub fn check_hello(payload: &[u8]) -> Result<(), String> {
    if payload.len() != WIRE_MAGIC.len() + 1 || &payload[..WIRE_MAGIC.len()] != WIRE_MAGIC {
        return Err("HELLO payload is not PARDAWIRE".into());
    }
    let version = payload[WIRE_MAGIC.len()];
    if version != WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {version} (server speaks {WIRE_VERSION})"
        ));
    }
    Ok(())
}

/// Build one DATA payload: the v2.1 inline frame layout over `addrs`.
pub fn encode_data_frame(addrs: &[Addr], encoding: Encoding) -> Vec<u8> {
    let body = encode_frame_payload(addrs, encoding);
    let mut out = Vec::with_capacity(DATA_HEADER_LEN + body.len());
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Why a DATA frame was unusable — split so the lossy degradation path can
/// tally CRC failures separately and still account the dropped references.
#[derive(Debug)]
pub enum DataFrameError {
    /// The inline header itself is truncated or inconsistent with the
    /// message length; the claimed reference count is unknown.
    Malformed(String),
    /// The payload's CRC32C does not match the header.
    Crc {
        /// References the header claimed.
        count: u32,
    },
    /// CRC matched (or the check was skipped) but the payload failed to
    /// decode.
    Decode {
        /// References the header claimed.
        count: u32,
        /// The decoder's message.
        detail: String,
    },
}

impl DataFrameError {
    /// References the frame claimed to carry (0 when unknowable).
    pub fn count(&self) -> u64 {
        match self {
            DataFrameError::Malformed(_) => 0,
            DataFrameError::Crc { count } | DataFrameError::Decode { count, .. } => {
                u64::from(*count)
            }
        }
    }

    /// One-line description.
    pub fn message(&self) -> String {
        match self {
            DataFrameError::Malformed(msg) => format!("malformed DATA frame: {msg}"),
            DataFrameError::Crc { count } => {
                format!("DATA frame CRC32C mismatch ({count} refs quarantined)")
            }
            DataFrameError::Decode { detail, .. } => format!("DATA frame decode failed: {detail}"),
        }
    }
}

/// Validate and decode one DATA payload: header shape, CRC32C over the
/// encoded body, then the shared v2 frame decoder.
pub fn decode_data_frame(payload: &[u8], encoding: Encoding) -> Result<Vec<Addr>, DataFrameError> {
    let mut out = Vec::new();
    decode_data_frame_into(payload, encoding, &mut out)?;
    Ok(out)
}

/// [`decode_data_frame`] into a caller-owned arena so a shard decoding
/// frames from hundreds of sessions performs no per-frame allocation.
/// The arena is cleared and refilled; its capacity is retained.
pub fn decode_data_frame_into(
    payload: &[u8],
    encoding: Encoding,
    out: &mut Vec<Addr>,
) -> Result<(), DataFrameError> {
    if payload.len() < DATA_HEADER_LEN {
        return Err(DataFrameError::Malformed(format!(
            "{} bytes is shorter than the {DATA_HEADER_LEN}-byte inline header",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let crc = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let body = &payload[DATA_HEADER_LEN..];
    if body.len() != len as usize {
        return Err(DataFrameError::Malformed(format!(
            "header claims {len} payload bytes, message carries {}",
            body.len()
        )));
    }
    if crc32c(body) != crc {
        return Err(DataFrameError::Crc { count });
    }
    decode_frame_payload_into(body, encoding, count as usize, out).map_err(|e| {
        DataFrameError::Decode {
            count,
            detail: e.to_string(),
        }
    })
}

/// Build one thread-tagged DATA payload: the same `count | len | crc32c`
/// inline header over the v2.2 tagged frame body (TID dictionary +
/// bit-packed tags + encoded addresses). Sessions configured `tagged=1`
/// exchange these instead of plain frames.
pub fn encode_tagged_data_frame(
    addrs: &[Addr],
    tids: &[Tid],
    encoding: Encoding,
) -> io::Result<Vec<u8>> {
    let body = encode_tagged_frame_payload(addrs, tids, encoding)?;
    let mut out = Vec::with_capacity(DATA_HEADER_LEN + body.len());
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Validate and decode one tagged DATA payload into caller-owned arenas
/// (cleared and refilled; capacity retained). Header shape and CRC checks
/// mirror [`decode_data_frame_into`].
pub fn decode_tagged_data_frame_into(
    payload: &[u8],
    encoding: Encoding,
    addrs: &mut Vec<Addr>,
    tids: &mut Vec<Tid>,
) -> Result<(), DataFrameError> {
    if payload.len() < DATA_HEADER_LEN {
        return Err(DataFrameError::Malformed(format!(
            "{} bytes is shorter than the {DATA_HEADER_LEN}-byte inline header",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let crc = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let body = &payload[DATA_HEADER_LEN..];
    if body.len() != len as usize {
        return Err(DataFrameError::Malformed(format!(
            "header claims {len} payload bytes, message carries {}",
            body.len()
        )));
    }
    if crc32c(body) != crc {
        return Err(DataFrameError::Crc { count });
    }
    decode_tagged_frame_payload_into(body, encoding, count as usize, addrs, tids).map_err(|e| {
        DataFrameError::Decode {
            count,
            detail: e.to_string(),
        }
    })
}

/// Error class byte on the wire, aligned with [`PardaError::class`] plus
/// three server-side classes that map onto the configuration exit class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorClass {
    /// Unusable session configuration.
    Config = 1,
    /// Corrupt input (strict degradation).
    Corrupt = 2,
    /// I/O failure on the server side.
    Io = 3,
    /// Analysis worker panicked past its retry budget.
    WorkerPanic = 4,
    /// Watchdog / idle deadline expired.
    Stall = 5,
    /// Admission control refused the session (cap reached).
    Admission = 6,
    /// The session exceeded its byte budget.
    Budget = 7,
    /// The peer violated the message state machine.
    Protocol = 8,
    /// The transport died and reconnection attempts were exhausted
    /// (client-side classification; exits in the i/o class).
    ConnectionLost = 9,
}

impl ErrorClass {
    fn from_u8(b: u8) -> io::Result<Self> {
        Ok(match b {
            1 => ErrorClass::Config,
            2 => ErrorClass::Corrupt,
            3 => ErrorClass::Io,
            4 => ErrorClass::WorkerPanic,
            5 => ErrorClass::Stall,
            6 => ErrorClass::Admission,
            7 => ErrorClass::Budget,
            8 => ErrorClass::Protocol,
            9 => ErrorClass::ConnectionLost,
            other => return Err(invalid(format!("unknown error class {other}"))),
        })
    }
}

/// A structured server-side failure, as carried by an ERROR message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The failure class.
    pub class: ErrorClass,
    /// First detail word (worker-panic: rank; stall: rank).
    pub a: u32,
    /// Second detail word (worker-panic: attempts; stall: deadline ms).
    pub b: u32,
    /// Human-readable description.
    pub message: String,
}

impl ErrorFrame {
    /// A detail-free frame of the given class.
    pub fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        Self {
            class,
            a: 0,
            b: 0,
            message: message.into(),
        }
    }

    /// Classify a [`PardaError`] for the wire, preserving the typed details.
    pub fn from_parda(e: &PardaError) -> Self {
        match e {
            PardaError::Io(inner) => Self::new(ErrorClass::Io, inner.to_string()),
            PardaError::Corrupt(msg) => Self::new(ErrorClass::Corrupt, msg.clone()),
            PardaError::Config(msg) => Self::new(ErrorClass::Config, msg.clone()),
            PardaError::WorkerPanic { rank, attempts } => Self {
                class: ErrorClass::WorkerPanic,
                a: *rank as u32,
                b: *attempts,
                message: e.to_string(),
            },
            PardaError::Stall { rank, deadline } => Self {
                class: ErrorClass::Stall,
                a: *rank as u32,
                b: u32::try_from(deadline.as_millis()).unwrap_or(u32::MAX),
                message: e.to_string(),
            },
            PardaError::ConnectionLost { attempts } => Self {
                class: ErrorClass::ConnectionLost,
                a: *attempts,
                b: 0,
                message: e.to_string(),
            },
        }
    }

    /// Rehydrate the typed error on the client side. The server-only
    /// classes (admission, budget, protocol) land in the configuration
    /// exit class — the invocation, not the data, was unacceptable.
    pub fn to_parda(&self) -> PardaError {
        match self.class {
            ErrorClass::Config => PardaError::Config(self.message.clone()),
            ErrorClass::Corrupt => PardaError::Corrupt(self.message.clone()),
            ErrorClass::Io => PardaError::Io(io::Error::other(self.message.clone())),
            ErrorClass::WorkerPanic => PardaError::WorkerPanic {
                rank: self.a as usize,
                attempts: self.b,
            },
            ErrorClass::Stall => PardaError::Stall {
                rank: self.a as usize,
                deadline: Duration::from_millis(u64::from(self.b)),
            },
            ErrorClass::Admission => PardaError::Config(format!("server: {}", self.message)),
            ErrorClass::Budget => PardaError::Config(format!("server: {}", self.message)),
            ErrorClass::Protocol => PardaError::Config(format!("protocol: {}", self.message)),
            ErrorClass::ConnectionLost => PardaError::ConnectionLost { attempts: self.a },
        }
    }

    /// Serialize for an ERROR message payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.message.len());
        out.push(self.class as u8);
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(self.message.as_bytes());
        out
    }

    /// Parse an ERROR message payload.
    pub fn from_payload(payload: &[u8]) -> io::Result<Self> {
        if payload.len() < 9 {
            return Err(invalid("ERROR payload shorter than its fixed fields"));
        }
        let class = ErrorClass::from_u8(payload[0])?;
        let a = u32::from_le_bytes(payload[1..5].try_into().unwrap());
        let b = u32::from_le_bytes(payload[5..9].try_into().unwrap());
        let message = String::from_utf8(payload[9..].to_vec())
            .map_err(|_| invalid("ERROR message is not UTF-8"))?;
        Ok(Self {
            class,
            a,
            b,
            message,
        })
    }
}

/// Serialize a histogram for a binary STATS body:
/// `npairs u64 | (distance u64, count u64)* | infinite u64` (LE).
pub fn encode_histogram_binary(hist: &parda_hist::ReuseHistogram) -> Vec<u8> {
    let pairs: Vec<(u64, u64)> = hist
        .finite_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(d, &c)| (d as u64, c))
        .collect();
    let mut out = Vec::with_capacity(8 + pairs.len() * 16 + 8);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (d, c) in pairs {
        out.extend_from_slice(&d.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&hist.infinite().to_le_bytes());
    out
}

/// Rebuild the histogram from a binary STATS body. Exact: counts only
/// ever grow, so re-recording every non-zero bucket reproduces the
/// original bit for bit.
pub fn decode_histogram_binary(body: &[u8]) -> io::Result<parda_hist::ReuseHistogram> {
    let take_u64 = |b: &[u8], at: usize| -> io::Result<u64> {
        b.get(at..at + 8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
            .ok_or_else(|| invalid("binary histogram truncated"))
    };
    let npairs = take_u64(body, 0)?;
    let expected = 8 + (npairs as usize).saturating_mul(16) + 8;
    if body.len() != expected {
        return Err(invalid(format!(
            "binary histogram is {} bytes, layout requires {expected}",
            body.len()
        )));
    }
    let mut hist = parda_hist::ReuseHistogram::new();
    let mut at = 8;
    for _ in 0..npairs {
        let d = take_u64(body, at)?;
        let c = take_u64(body, at + 8)?;
        hist.record_finite_n(d, c);
        at += 16;
    }
    let inf = take_u64(body, at)?;
    if inf > 0 {
        hist.record_infinite_n(inf);
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn message_round_trips_through_a_byte_buffer() {
        let mut buf = Vec::new();
        write_msg(&mut buf, MsgKind::Hello, &hello_payload()).unwrap();
        write_msg(&mut buf, MsgKind::Fin, &[]).unwrap();
        let mut r = buf.as_slice();
        let hello = read_msg(&mut r).unwrap();
        assert_eq!(hello.kind, MsgKind::Hello);
        check_hello(&hello.payload).unwrap();
        let fin = read_msg(&mut r).unwrap();
        assert_eq!(fin.kind, MsgKind::Fin);
        assert!(fin.payload.is_empty());
        assert!(read_msg(&mut r).is_err(), "buffer exhausted");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = vec![MsgKind::Data as u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_msg(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn accept_resume_and_ack_payloads_round_trip() {
        let accept = AcceptPayload {
            session: 0xDEAD_BEEF_u64,
            token: *b"0123456789abcdef",
            watermark: 42,
        };
        let bytes = accept.to_bytes();
        assert_eq!(bytes.len(), AcceptPayload::LEN);
        assert_eq!(AcceptPayload::from_bytes(&bytes).unwrap(), accept);
        assert!(AcceptPayload::from_bytes(&bytes[..8]).is_err());

        let resume = encode_resume(&accept.token, 42);
        let (token, last) = decode_resume(&resume).unwrap();
        assert_eq!(token, accept.token);
        assert_eq!(last, 42);
        assert!(decode_resume(&resume[..10]).is_err());

        assert_eq!(decode_ack(&7u64.to_le_bytes()).unwrap(), 7);
        assert!(decode_ack(&[1, 2, 3]).is_err());
    }

    #[test]
    fn bad_hello_versions_and_magic_are_rejected() {
        assert!(check_hello(b"PARDAWIRE\x01").is_ok());
        assert!(check_hello(b"PARDAWIRE\x63").is_err());
        assert!(check_hello(b"NOTPARDA!\x01").is_err());
        assert!(check_hello(b"").is_err());
    }

    proptest! {
        #[test]
        fn data_frames_round_trip(
            addrs in proptest::collection::vec(0u64..1 << 48, 0..400),
            raw in any::<bool>(),
        ) {
            let encoding = if raw { Encoding::Raw } else { Encoding::DeltaVarint };
            let frame = encode_data_frame(&addrs, encoding);
            let back = decode_data_frame(&frame, encoding).unwrap();
            prop_assert_eq!(back, addrs);
        }

        #[test]
        fn flipped_byte_in_a_data_frame_is_caught(
            addrs in proptest::collection::vec(0u64..1 << 48, 1..200),
            flip_body in any::<bool>(),
            bit in 0u8..8,
        ) {
            let frame = encode_data_frame(&addrs, Encoding::DeltaVarint);
            let mut bad = frame.clone();
            // Flip in the body (CRC catches it) or in the CRC field itself.
            let at = if flip_body { DATA_HEADER_LEN } else { 8 };
            bad[at] ^= 1 << bit;
            prop_assert!(decode_data_frame(&bad, Encoding::DeltaVarint).is_err());
        }
    }

    #[test]
    fn tagged_data_frames_round_trip_and_catch_corruption() {
        let addrs = [0x10u64, 0x20, 0x10, 0x30, 0x20];
        let tids = [0u32, 1, 0, 2, 1];
        for encoding in [Encoding::Raw, Encoding::DeltaVarint] {
            let frame = encode_tagged_data_frame(&addrs, &tids, encoding).unwrap();
            let (mut a, mut t) = (Vec::new(), Vec::new());
            decode_tagged_data_frame_into(&frame, encoding, &mut a, &mut t).unwrap();
            assert_eq!(a, addrs);
            assert_eq!(t, tids);

            let mut bad = frame.clone();
            bad[DATA_HEADER_LEN] ^= 0x08;
            assert!(matches!(
                decode_tagged_data_frame_into(&bad, encoding, &mut a, &mut t),
                Err(DataFrameError::Crc { count: 5 })
            ));
            assert!(matches!(
                decode_tagged_data_frame_into(&frame[..6], encoding, &mut a, &mut t),
                Err(DataFrameError::Malformed(_))
            ));
        }
    }

    #[test]
    fn crc_and_malformed_errors_are_distinguished() {
        let frame = encode_data_frame(&[1, 2, 3], Encoding::Raw);
        let mut bad = frame.clone();
        bad[DATA_HEADER_LEN] ^= 0x40;
        match decode_data_frame(&bad, Encoding::Raw) {
            Err(DataFrameError::Crc { count: 3 }) => {}
            other => panic!("expected Crc error, got {other:?}"),
        }
        match decode_data_frame(&frame[..6], Encoding::Raw) {
            Err(DataFrameError::Malformed(_)) => {}
            other => panic!("expected Malformed error, got {other:?}"),
        }
        // Consistent header+CRC but an undecodable payload: re-CRC a
        // truncated raw body so only the count disagrees.
        let mut torn = Vec::new();
        torn.extend_from_slice(&3u32.to_le_bytes());
        torn.extend_from_slice(&16u32.to_le_bytes());
        torn.extend_from_slice(
            &crc32c(&frame[DATA_HEADER_LEN..DATA_HEADER_LEN + 16]).to_le_bytes(),
        );
        torn.extend_from_slice(&frame[DATA_HEADER_LEN..DATA_HEADER_LEN + 16]);
        match decode_data_frame(&torn, Encoding::Raw) {
            Err(DataFrameError::Decode { count: 3, .. }) => {}
            other => panic!("expected Decode error, got {other:?}"),
        }
    }

    #[test]
    fn error_frames_round_trip_typed_details() {
        let cases = [
            PardaError::Config("bad tree".into()),
            PardaError::Corrupt("crc mismatch".into()),
            PardaError::Io(io::Error::other("disk on fire")),
            PardaError::WorkerPanic {
                rank: 3,
                attempts: 4,
            },
            PardaError::Stall {
                rank: 1,
                deadline: Duration::from_millis(250),
            },
            PardaError::ConnectionLost { attempts: 5 },
        ];
        for e in &cases {
            let frame = ErrorFrame::from_parda(e);
            let back = ErrorFrame::from_payload(&frame.to_payload()).unwrap();
            assert_eq!(back, frame);
            let rehydrated = back.to_parda();
            assert_eq!(rehydrated.class(), e.class(), "{e}");
        }
        let panic = ErrorFrame::from_parda(&cases[3]).to_parda();
        match panic {
            PardaError::WorkerPanic { rank, attempts } => {
                assert_eq!((rank, attempts), (3, 4));
            }
            other => panic!("lost panic details: {other:?}"),
        }
    }

    #[test]
    fn server_only_classes_map_to_the_config_exit_class() {
        for class in [
            ErrorClass::Admission,
            ErrorClass::Budget,
            ErrorClass::Protocol,
        ] {
            let e = ErrorFrame::new(class, "refused").to_parda();
            assert_eq!(e.class(), "config");
        }
    }

    proptest! {
        #[test]
        fn binary_histogram_round_trips(
            pairs in proptest::collection::vec((0u64..10_000, 1u64..1000), 0..50),
            inf in 0u64..1000,
        ) {
            let mut hist = parda_hist::ReuseHistogram::new();
            for &(d, c) in &pairs {
                hist.record_finite_n(d, c);
            }
            if inf > 0 {
                hist.record_infinite_n(inf);
            }
            let back = decode_histogram_binary(&encode_histogram_binary(&hist)).unwrap();
            prop_assert_eq!(back, hist);
        }
    }

    #[test]
    fn binary_histogram_rejects_truncation() {
        let mut hist = parda_hist::ReuseHistogram::new();
        hist.record_finite_n(5, 2);
        hist.record_infinite_n(1);
        let body = encode_histogram_binary(&hist);
        assert!(decode_histogram_binary(&body[..body.len() - 1]).is_err());
        assert!(decode_histogram_binary(&[]).is_err());
    }
}

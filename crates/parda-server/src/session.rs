//! One client session: handshake, admission, DATA ingest, analysis, reply.
//!
//! The session state machine is strict — HELLO, CONFIG, then DATA frames
//! until FIN — and every departure from it, every integrity violation, and
//! every analysis fault is converted into one typed ERROR frame before the
//! connection closes, so the client always learns *why* (and maps it onto
//! the CLI's exit-code classes).
//!
//! Two engines are offered per session:
//!
//! * `engine=phased` (default): frames are decoded as they arrive and fed
//!   through a bounded [`mod@parda_comm::pipe`] into the streaming multi-phase
//!   analyzer running concurrently — bounded memory regardless of trace
//!   length, with the pipe's back-pressure stalling the socket reads (and
//!   eventually the client, via TCP flow control) when analysis falls
//!   behind.
//! * `engine=threads`: references are collected and analyzed at FIN by the
//!   panic-isolated parallel driver ([`parda_core::Analysis::run_faulted`])
//!   — rank panics are rescued by the scalar engine under the server's
//!   [`parda_core::FaultPolicy`], bit-identical histogram on success.

use crate::proto::{
    decode_data_frame, encode_histogram_binary, read_msg, write_msg, DataFrameError, ErrorClass,
    ErrorFrame, MsgKind, STATS_FORMAT_BINARY, STATS_FORMAT_JSON,
};
use crate::server::ServerConfig;
use parda_comm::pipe;
use parda_core::phased::Reduction;
use parda_core::{Analysis, ApproxMode, Mode, PardaError};
use parda_hist::ReuseHistogram;
use parda_obs::{RecoveryMetrics, Report, ServerCounters};
use parda_trace::io::Encoding;
use parda_trace::{Addr, Degradation};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pipe capacity (in addresses) between the ingest loop and the streaming
/// analyzer — the bounded-queue back-pressure from `parda-comm`.
const PIPE_CAPACITY_WORDS: usize = 1 << 16;

/// Which analyzer a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEngine {
    /// Streaming multi-phase analysis, concurrent with ingest.
    Phased {
        /// References per rank per phase (`C`).
        chunk: usize,
    },
    /// Collect, then run the panic-isolated parallel driver at FIN.
    Threads,
}

/// How the STATS reply is encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyFormat {
    /// One JSON document `{"histogram":…,"stats":…}` — byte-identical to
    /// the CLI's `--stats=json` output for the same analysis.
    Json,
    /// Compact binary histogram (no stats report).
    Binary,
}

/// Per-session settings parsed from the CONFIG message.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Tree substrate for the analysis.
    pub tree: parda_tree::TreeKind,
    /// Rank count (`None`: hardware parallelism).
    pub ranks: Option<usize>,
    /// Cache bound `B`.
    pub bound: Option<u64>,
    /// The analyzer to run.
    pub engine: SessionEngine,
    /// Frame payload encoding the client will send.
    pub encoding: Encoding,
    /// Corruption policy for DATA frames (defaults to the server's).
    pub degradation: Degradation,
    /// Reply encoding.
    pub reply: ReplyFormat,
    /// Approximation mode requested via `approx=<spec>`. `None` (the key
    /// absent — every pre-approx client) inherits the server's default;
    /// an explicit `approx=exact` forces exact analysis regardless.
    pub approx: Option<ApproxMode>,
}

impl SessionConfig {
    /// Parse `key=value` lines, starting from the server's default
    /// degradation. Unknown keys are configuration errors — a client
    /// asking for something this server cannot honour must hear about it.
    pub fn parse(text: &str, default_degradation: Degradation) -> Result<Self, String> {
        let mut cfg = Self {
            tree: parda_tree::TreeKind::Splay,
            ranks: None,
            bound: None,
            engine: SessionEngine::Phased { chunk: 65_536 },
            encoding: Encoding::DeltaVarint,
            degradation: default_degradation,
            reply: ReplyFormat::Binary,
            approx: None,
        };
        let mut chunk: Option<usize> = None;
        let mut engine_name: Option<String> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("config line `{line}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("config {key}={value}: {e}");
            match key {
                "tree" => cfg.tree = value.parse().map_err(|e: String| bad(&e))?,
                "ranks" => cfg.ranks = Some(value.parse().map_err(|e| bad(&e))?),
                "bound" => cfg.bound = Some(value.parse().map_err(|e| bad(&e))?),
                "chunk" => chunk = Some(value.parse().map_err(|e| bad(&e))?),
                "engine" => engine_name = Some(value.to_string()),
                "degradation" => {
                    cfg.degradation = value.parse().map_err(|e: String| bad(&e))?;
                }
                "approx" => cfg.approx = Some(ApproxMode::parse(value).map_err(|e| bad(&e))?),
                "encoding" => {
                    cfg.encoding = match value {
                        "raw" => Encoding::Raw,
                        "delta" => Encoding::DeltaVarint,
                        other => return Err(format!("unknown encoding `{other}` (raw|delta)")),
                    }
                }
                "reply" => {
                    cfg.reply = match value {
                        "json" => ReplyFormat::Json,
                        "binary" => ReplyFormat::Binary,
                        other => {
                            return Err(format!("unknown reply format `{other}` (json|binary)"))
                        }
                    }
                }
                other => return Err(format!("unknown config key `{other}`")),
            }
        }
        cfg.engine = match engine_name.as_deref() {
            None | Some("phased") => SessionEngine::Phased {
                chunk: chunk.unwrap_or(65_536),
            },
            Some("threads") => SessionEngine::Threads,
            Some(other) => return Err(format!("unknown engine `{other}` (phased|threads)")),
        };
        Ok(cfg)
    }

    fn builder(&self, policy: parda_core::FaultPolicy, default_approx: ApproxMode) -> Analysis {
        let mut b = Analysis::new()
            .tree(self.tree)
            .bound(self.bound)
            .stats(true)
            .fault_policy(policy)
            .approx(self.approx.unwrap_or(default_approx));
        if let Some(ranks) = self.ranks {
            b = b.ranks(ranks);
        }
        b
    }
}

/// How a connection ended, for the supervisor's metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// STATS was delivered.
    Completed,
    /// The handshake was refused (bad HELLO/CONFIG or admission).
    Rejected,
    /// An admitted session failed.
    Failed,
}

/// A classified session failure plus the wire frame describing it.
struct SessionError(ErrorFrame);

impl SessionError {
    fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        Self(ErrorFrame::new(class, message))
    }

    fn from_parda(e: &PardaError) -> Self {
        Self(ErrorFrame::from_parda(e))
    }

    /// Classify a transport-level read failure: a timed-out read is the
    /// session watchdog firing (stall), EOF/garbage is a protocol breach.
    fn from_read(e: std::io::Error, idle: Option<std::time::Duration>) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Self(ErrorFrame {
                class: ErrorClass::Stall,
                a: 0,
                b: idle
                    .map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX))
                    .unwrap_or(0),
                message: "session idle past the read deadline".into(),
            }),
            std::io::ErrorKind::UnexpectedEof => {
                Self::new(ErrorClass::Protocol, "connection closed mid-session")
            }
            std::io::ErrorKind::InvalidData => Self::new(ErrorClass::Protocol, e.to_string()),
            _ => Self(ErrorFrame::new(ErrorClass::Io, e.to_string())),
        }
    }
}

/// Decrements the active-session count when the session ends (normally or
/// by unwind — the supervisor's `catch_unwind` runs this drop either way).
struct AdmissionGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn try_admit(active: &Arc<AtomicUsize>, max: usize) -> Option<AdmissionGuard> {
    let mut cur = active.load(Ordering::SeqCst);
    loop {
        if cur >= max {
            return None;
        }
        match active.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                return Some(AdmissionGuard {
                    active: Arc::clone(active),
                })
            }
            Err(now) => cur = now,
        }
    }
}

/// Mutable ingest state threaded through the DATA loop.
struct Ingest<'a> {
    cfg: &'a SessionConfig,
    counters: &'a ServerCounters,
    budget: Option<u64>,
    bytes_in: u64,
    frame_seq: u64,
    recovery: RecoveryMetrics,
}

impl Ingest<'_> {
    /// Decode one DATA payload under the session's degradation policy.
    /// `Ok(addrs)` may be empty when a lossy policy quarantined the frame.
    fn frame(&mut self, payload: &[u8]) -> Result<Vec<Addr>, SessionError> {
        self.frame_seq += 1;
        self.bytes_in += payload.len() as u64;
        if let Some(budget) = self.budget {
            if self.bytes_in > budget {
                return Err(SessionError::new(
                    ErrorClass::Budget,
                    format!("session exceeded its {budget}-byte budget"),
                ));
            }
        }
        self.counters.frames_in.incr();
        self.counters.bytes_in.add(payload.len() as u64);
        let decoded = decode_data_frame(payload, self.cfg.encoding);
        parda_failpoint::failpoint!("server::decode", {
            return self.quarantine(DataFrameError::Decode {
                count: 0,
                detail: "injected server decode failure".into(),
            });
        });
        match decoded {
            Ok(addrs) => {
                self.counters.refs_in.add(addrs.len() as u64);
                Ok(addrs)
            }
            Err(e) => self.quarantine(e),
        }
    }

    /// Strict: fail the session. Lossy: tally the quarantined frame
    /// (mirroring `FramedStream`'s per-frame recovery) and carry on.
    fn quarantine(&mut self, e: DataFrameError) -> Result<Vec<Addr>, SessionError> {
        if !self.cfg.degradation.is_lossy() {
            return Err(SessionError::from_parda(&PardaError::Corrupt(e.message())));
        }
        if matches!(e, DataFrameError::Crc { .. }) {
            self.recovery.crc_failures += 1;
        }
        self.recovery.skip_frame(self.frame_seq - 1, e.count());
        self.counters.frames_quarantined.incr();
        Ok(Vec::new())
    }
}

/// Drive one accepted connection through the whole session protocol.
/// Every counter update and reply happens in here; the return value only
/// tells the supervisor how to account the connection.
pub(crate) fn serve_connection(
    stream: TcpStream,
    id: u64,
    scfg: &ServerConfig,
    counters: &Arc<ServerCounters>,
    active: &Arc<AtomicUsize>,
) -> Outcome {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(scfg.idle_timeout);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return Outcome::Failed,
    });
    let mut writer = BufWriter::new(stream);

    // Handshake: HELLO then CONFIG, refused before admission is consumed.
    let session_cfg = match handshake(&mut reader, scfg) {
        Ok(cfg) => cfg,
        Err(err) => {
            counters.sessions_rejected.incr();
            send_error(&mut writer, &err);
            drain(&mut reader);
            return Outcome::Rejected;
        }
    };

    // Admission control: the session cap is enforced after a valid
    // handshake so the refusal is a structured protocol error, not a
    // dropped connection.
    let Some(_guard) = try_admit(active, scfg.max_sessions) else {
        counters.sessions_rejected.incr();
        send_error(
            &mut writer,
            &SessionError::new(
                ErrorClass::Admission,
                format!(
                    "admission rejected: {} sessions active (max {})",
                    scfg.max_sessions, scfg.max_sessions
                ),
            ),
        );
        drain(&mut reader);
        return Outcome::Rejected;
    };
    counters.sessions_opened.incr();
    if write_msg(&mut writer, MsgKind::Accept, &id.to_le_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        counters.sessions_failed.incr();
        return Outcome::Failed;
    }
    parda_failpoint::failpoint!("server::session");

    match run_admitted(&mut reader, &mut writer, &session_cfg, scfg, counters) {
        Ok(()) => {
            counters.sessions_completed.incr();
            Outcome::Completed
        }
        Err(err) => {
            counters.sessions_failed.incr();
            send_error(&mut writer, &err);
            drain(&mut reader);
            Outcome::Failed
        }
    }
}

fn handshake(reader: &mut impl Read, scfg: &ServerConfig) -> Result<SessionConfig, SessionError> {
    let idle = scfg.idle_timeout;
    let hello = read_msg(reader).map_err(|e| SessionError::from_read(e, idle))?;
    if hello.kind != MsgKind::Hello {
        return Err(SessionError::new(
            ErrorClass::Protocol,
            format!("expected HELLO, got {:?}", hello.kind),
        ));
    }
    crate::proto::check_hello(&hello.payload)
        .map_err(|e| SessionError::new(ErrorClass::Protocol, e))?;
    let config = read_msg(reader).map_err(|e| SessionError::from_read(e, idle))?;
    if config.kind != MsgKind::Config {
        return Err(SessionError::new(
            ErrorClass::Protocol,
            format!("expected CONFIG, got {:?}", config.kind),
        ));
    }
    let text = std::str::from_utf8(&config.payload)
        .map_err(|_| SessionError::new(ErrorClass::Protocol, "CONFIG is not UTF-8"))?;
    SessionConfig::parse(text, scfg.fault.degradation)
        .map_err(|e| SessionError::new(ErrorClass::Config, e))
}

/// The admitted phase: ingest DATA until FIN, run the analysis, reply.
fn run_admitted(
    reader: &mut impl Read,
    writer: &mut impl Write,
    cfg: &SessionConfig,
    scfg: &ServerConfig,
    counters: &Arc<ServerCounters>,
) -> Result<(), SessionError> {
    let mut ingest = Ingest {
        cfg,
        counters: counters.as_ref(),
        budget: scfg.max_session_bytes,
        bytes_in: 0,
        frame_seq: 0,
        recovery: RecoveryMetrics::default(),
    };
    let policy = parda_core::FaultPolicy {
        degradation: cfg.degradation,
        ..scfg.fault.clone()
    };

    let (hist, mut report) = match cfg.engine {
        SessionEngine::Threads => {
            let mut refs: Vec<Addr> = Vec::new();
            ingest_loop(reader, scfg, &mut ingest, |addrs| {
                refs.extend_from_slice(addrs);
                true
            })?;
            let builder = cfg.builder(policy, scfg.default_approx).mode(Mode::Threads);
            builder
                .run_faulted(&refs)
                .map_err(|e| SessionError::from_parda(&e))?
        }
        SessionEngine::Phased { chunk } => {
            let builder = cfg.builder(policy, scfg.default_approx).mode(Mode::Phased {
                chunk,
                reduction: Reduction::ShipToRankZero,
            });
            let (mut tx, rx) = pipe(PIPE_CAPACITY_WORDS, parda_comm::pipe::DEFAULT_BATCH);
            let analysis = std::thread::Builder::new()
                .name("parda-session-analysis".into())
                .spawn(move || catch_unwind(AssertUnwindSafe(move || builder.run_stream(rx))))
                .map_err(|e| SessionError::new(ErrorClass::Io, e.to_string()))?;
            let ingested = ingest_loop(reader, scfg, &mut ingest, |addrs| {
                tx.write_all(addrs);
                !tx.is_closed()
            });
            drop(tx);
            let joined = analysis.join().unwrap_or_else(Err).map_err(|_| {
                SessionError(ErrorFrame {
                    class: ErrorClass::WorkerPanic,
                    a: 0,
                    b: 1,
                    message: "streaming analysis panicked".into(),
                })
            });
            // An ingest error trumps a (secondary) analysis teardown error.
            ingested?;
            joined?
        }
    };

    let mut report = report.take().expect("stats were requested");
    attach_recovery(&mut report, ingest.recovery);
    if let Some(a) = report.approx.as_ref() {
        counters.approx_sessions.incr();
        counters.sketch_bytes_hwm.record_max(a.sketch_bytes);
    }
    send_stats(writer, cfg, &hist, &report)
}

/// Read DATA messages until FIN, handing decoded frames to `sink`. A
/// `false` from the sink means the downstream analyzer is gone — stop
/// reading and let the caller surface its fate.
fn ingest_loop(
    reader: &mut impl Read,
    scfg: &ServerConfig,
    ingest: &mut Ingest<'_>,
    mut sink: impl FnMut(&[Addr]) -> bool,
) -> Result<(), SessionError> {
    loop {
        let msg = read_msg(reader).map_err(|e| SessionError::from_read(e, scfg.idle_timeout))?;
        match msg.kind {
            MsgKind::Data => {
                let addrs = ingest.frame(&msg.payload)?;
                if !sink(&addrs) {
                    return Ok(());
                }
            }
            MsgKind::Fin => return Ok(()),
            other => {
                return Err(SessionError::new(
                    ErrorClass::Protocol,
                    format!("expected DATA or FIN, got {other:?}"),
                ))
            }
        }
    }
}

/// Fold the wire-level recovery tally into the analysis report.
fn attach_recovery(report: &mut Report, wire: RecoveryMetrics) {
    if wire.is_clean() && report.recovery.is_some() {
        return;
    }
    match report.recovery.as_mut() {
        Some(existing) => existing.merge(&wire),
        None => report.recovery = Some(wire),
    }
}

fn send_stats(
    writer: &mut impl Write,
    cfg: &SessionConfig,
    hist: &ReuseHistogram,
    report: &Report,
) -> Result<(), SessionError> {
    let io_fail = |e: &dyn std::fmt::Display| SessionError::new(ErrorClass::Io, e.to_string());
    let mut payload;
    match cfg.reply {
        ReplyFormat::Json => {
            let hist_json = serde_json::to_string(hist).map_err(|e| io_fail(&e))?;
            let report_json = serde_json::to_string(report).map_err(|e| io_fail(&e))?;
            payload = vec![STATS_FORMAT_JSON];
            payload.extend_from_slice(
                format!("{{\"histogram\":{hist_json},\"stats\":{report_json}}}").as_bytes(),
            );
        }
        ReplyFormat::Binary => {
            payload = vec![STATS_FORMAT_BINARY];
            payload.extend_from_slice(&encode_histogram_binary(hist));
        }
    }
    write_msg(writer, MsgKind::Stats, &payload)
        .and_then(|()| writer.flush())
        .map_err(|e| io_fail(&e))
}

/// Best-effort error reply; the connection is closing either way.
fn send_error(writer: &mut impl Write, err: &SessionError) {
    let _ = write_msg(writer, MsgKind::Error, &err.0.to_payload());
    let _ = writer.flush();
}

/// After a fatal reply, read and discard whatever the client was still
/// sending so it reaches our ERROR frame instead of a TCP reset. Bounded
/// by a message cap and the socket read timeout.
fn drain(reader: &mut impl Read) {
    for _ in 0..4096 {
        match read_msg(reader) {
            Ok(msg) if msg.kind == MsgKind::Fin => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_config_defaults_and_overrides() {
        let cfg = SessionConfig::parse("", Degradation::Strict).unwrap();
        assert_eq!(cfg.engine, SessionEngine::Phased { chunk: 65_536 });
        assert_eq!(cfg.encoding, Encoding::DeltaVarint);
        assert_eq!(cfg.degradation, Degradation::Strict);
        assert_eq!(cfg.reply, ReplyFormat::Binary);
        assert_eq!(cfg.ranks, None);
        assert_eq!(cfg.approx, None, "pre-approx CONFIG inherits the server");

        let cfg = SessionConfig::parse(
            "tree=avl\nranks=3\nbound=512\nengine=threads\nencoding=raw\n\
             degradation=best-effort\nreply=json\napprox=shards-smax:4096\n",
            Degradation::Strict,
        )
        .unwrap();
        assert_eq!(cfg.tree, parda_tree::TreeKind::Avl);
        assert_eq!(cfg.ranks, Some(3));
        assert_eq!(cfg.bound, Some(512));
        assert_eq!(cfg.engine, SessionEngine::Threads);
        assert_eq!(cfg.encoding, Encoding::Raw);
        assert_eq!(cfg.degradation, Degradation::BestEffort);
        assert_eq!(cfg.reply, ReplyFormat::Json);
        assert_eq!(
            cfg.approx,
            Some(ApproxMode::ShardsFixedSize { s_max: 4096 })
        );

        let cfg = SessionConfig::parse("approx=exact", Degradation::Strict).unwrap();
        assert_eq!(cfg.approx, Some(ApproxMode::Exact), "explicit exact wins");
    }

    #[test]
    fn session_config_inherits_server_degradation() {
        let cfg =
            SessionConfig::parse("engine=phased\nchunk=1000", Degradation::BestEffort).unwrap();
        assert_eq!(cfg.degradation, Degradation::BestEffort);
        assert_eq!(cfg.engine, SessionEngine::Phased { chunk: 1000 });
    }

    #[test]
    fn session_config_rejects_unknown_keys_and_values() {
        for bad in [
            "warp=9",
            "engine=warp",
            "tree=oak",
            "ranks=minus-two",
            "reply=yaml",
            "encoding=utf8",
            "degradation=yolo",
            "approx=warp",
            "approx=shards:0",
            "approx=shards:1.5",
            "not-a-pair",
        ] {
            assert!(
                SessionConfig::parse(bad, Degradation::Strict).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn admission_cas_caps_and_guard_releases() {
        let active = Arc::new(AtomicUsize::new(0));
        let a = try_admit(&active, 2).expect("first");
        let _b = try_admit(&active, 2).expect("second");
        assert!(try_admit(&active, 2).is_none(), "cap reached");
        drop(a);
        assert!(try_admit(&active, 2).is_some(), "slot released");
    }
}

//! One client session as a nonblocking state machine, driven by a shard.
//!
//! The session protocol is strict — HELLO, CONFIG, then DATA frames until
//! FIN — and every departure from it, every integrity violation, and every
//! analysis fault is converted into one typed ERROR frame before the
//! connection closes, so the client always learns *why* (and maps it onto
//! the CLI's exit-code classes).
//!
//! Unlike the original two-threads-per-session design, a `Session` owns
//! no thread and performs no I/O: the shard event loop reads bytes off the
//! socket, splits them into wire messages, and hands each one to
//! `Session::on_message`; replies are queued into the shard-owned outbox
//! and flushed under `poll(2)` write readiness. Analysis runs inline via
//! the resumable [`parda_core::SessionAnalysis`] driver — frames are fed
//! as they arrive (`feed → NeedMore | Pending`) and any deferred engine
//! (the parallel cascade) runs at FIN.
//!
//! Engines offered per session:
//!
//! * engine key absent (`Auto`): references are buffered and analyzed at
//!   FIN by the panic-isolated parallel cascade with a trace-length-scaled
//!   rank count and (unless the client picked a tree) the fused Fenwick
//!   `vector` tree — the fastest exact path on this hardware, bit-identical
//!   to every other exact engine.
//! * `engine=phased`: frames stream through the incremental sequential
//!   analyzer as they arrive — bounded memory regardless of trace length,
//!   with backpressure propagating to the client via TCP flow control
//!   because the shard stops reading a session whose replies are pending.
//! * `engine=threads`: collect, then [`parda_core::Analysis::run_faulted`]
//!   at FIN — rank panics are rescued by the scalar engine under the
//!   server's [`parda_core::FaultPolicy`], bit-identical on success.
//!
//! Approximate sessions (`approx=` other than `exact`) stream through the
//! constant-space sketch regardless of engine, so per-session memory is
//! O(sketch) — the shard records the high-water mark as proof.

use crate::proto::{
    decode_data_frame_into, decode_resume, decode_tagged_data_frame_into, encode_histogram_binary,
    write_msg, AcceptPayload, DataFrameError, ErrorClass, ErrorFrame, MsgKind, STATS_FORMAT_BINARY,
    STATS_FORMAT_JSON, TOKEN_LEN,
};
use crate::server::ServerConfig;
use parda_core::phased::Reduction;
use parda_core::{Analysis, ApproxMode, Mode, PardaError, SessionAnalysis};
use parda_hist::ReuseHistogram;
use parda_obs::{RecoveryMetrics, Report, ServerCounters};
use parda_trace::io::Encoding;
use parda_trace::{Addr, Degradation, ThreadedTrace, Tid};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Messages a failed session keeps absorbing (so the client reaches our
/// buffered ERROR frame instead of a TCP reset) before the socket closes.
const DRAIN_MSG_CAP: u32 = 4096;

/// Which analyzer a session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEngine {
    /// No `engine=`/`chunk=` key: buffer and run the parallel cascade at
    /// FIN with an auto-scaled rank count (fastest exact path).
    Auto,
    /// Streaming multi-phase analysis, incremental with ingest.
    Phased {
        /// References per rank per phase (`C`).
        chunk: usize,
    },
    /// Collect, then run the panic-isolated parallel driver at FIN.
    Threads,
}

/// How the STATS reply is encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyFormat {
    /// One JSON document `{"histogram":…,"stats":…}` — byte-identical to
    /// the CLI's `--stats=json` output for the same analysis.
    Json,
    /// Compact binary histogram (no stats report).
    Binary,
}

/// Per-session settings parsed from the CONFIG message.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Tree substrate for the analysis (`None`: engine-appropriate
    /// default — `vector` for the auto cascade, `splay` otherwise).
    pub tree: Option<parda_tree::TreeKind>,
    /// Rank count (`None`: hardware parallelism, or trace-scaled under
    /// [`SessionEngine::Auto`]).
    pub ranks: Option<usize>,
    /// Cache bound `B`.
    pub bound: Option<u64>,
    /// The analyzer to run.
    pub engine: SessionEngine,
    /// Frame payload encoding the client will send.
    pub encoding: Encoding,
    /// Corruption policy for DATA frames (defaults to the server's).
    pub degradation: Degradation,
    /// Reply encoding.
    pub reply: ReplyFormat,
    /// Approximation mode requested via `approx=<spec>`. `None` (the key
    /// absent — every pre-approx client) inherits the server's default;
    /// an explicit `approx=exact` forces exact analysis regardless.
    pub approx: Option<ApproxMode>,
    /// Thread-tagged session (`tagged=1`): DATA frames carry the v2.2
    /// tagged frame layout and FIN runs the concurrent shared-cache
    /// analyzer instead of a [`SessionAnalysis`] driver.
    pub tagged: bool,
    /// Partition recommendation request, `partition=<capacity>[/<gran>]`
    /// (granularity defaults through
    /// [`parda_core::concurrent::default_granularity`]). Requires
    /// `tagged=1` — the per-thread solo MRCs come from the tags.
    pub partition: Option<(u64, u64)>,
}

impl SessionConfig {
    /// Parse `key=value` lines, starting from the server's default
    /// degradation. Unknown keys are configuration errors — a client
    /// asking for something this server cannot honour must hear about it.
    pub fn parse(text: &str, default_degradation: Degradation) -> Result<Self, String> {
        let mut cfg = Self {
            tree: None,
            ranks: None,
            bound: None,
            engine: SessionEngine::Auto,
            encoding: Encoding::DeltaVarint,
            degradation: default_degradation,
            reply: ReplyFormat::Binary,
            approx: None,
            tagged: false,
            partition: None,
        };
        let mut chunk: Option<usize> = None;
        let mut engine_name: Option<String> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("config line `{line}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("config {key}={value}: {e}");
            match key {
                "tree" => cfg.tree = Some(value.parse().map_err(|e: String| bad(&e))?),
                "ranks" => cfg.ranks = Some(value.parse().map_err(|e| bad(&e))?),
                "bound" => cfg.bound = Some(value.parse().map_err(|e| bad(&e))?),
                "chunk" => chunk = Some(value.parse().map_err(|e| bad(&e))?),
                "engine" => engine_name = Some(value.to_string()),
                "degradation" => {
                    cfg.degradation = value.parse().map_err(|e: String| bad(&e))?;
                }
                "approx" => cfg.approx = Some(ApproxMode::parse(value).map_err(|e| bad(&e))?),
                "tagged" => {
                    cfg.tagged = match value {
                        "1" | "true" => true,
                        "0" | "false" => false,
                        other => return Err(format!("config tagged={other}: expected 0|1")),
                    }
                }
                "partition" => {
                    let (cap, gran) = match value.split_once('/') {
                        Some((c, g)) => (
                            c.parse::<u64>().map_err(|e| bad(&e))?,
                            g.parse::<u64>().map_err(|e| bad(&e))?,
                        ),
                        None => {
                            let cap = value.parse::<u64>().map_err(|e| bad(&e))?;
                            (cap, parda_core::concurrent::default_granularity(cap.max(1)))
                        }
                    };
                    if cap == 0 || gran == 0 {
                        return Err(format!(
                            "config partition={value}: capacity and granularity must be positive"
                        ));
                    }
                    cfg.partition = Some((cap, gran));
                }
                "encoding" => {
                    cfg.encoding = match value {
                        "raw" => Encoding::Raw,
                        "delta" => Encoding::DeltaVarint,
                        other => return Err(format!("unknown encoding `{other}` (raw|delta)")),
                    }
                }
                "reply" => {
                    cfg.reply = match value {
                        "json" => ReplyFormat::Json,
                        "binary" => ReplyFormat::Binary,
                        other => {
                            return Err(format!("unknown reply format `{other}` (json|binary)"))
                        }
                    }
                }
                other => return Err(format!("unknown config key `{other}`")),
            }
        }
        cfg.engine = match (engine_name.as_deref(), chunk) {
            // A bare `chunk=` keeps its historical meaning: phased with
            // that chunk. Only a CONFIG naming neither engine nor chunk
            // gets the auto cascade.
            (None, None) => SessionEngine::Auto,
            (None, Some(chunk)) | (Some("phased"), Some(chunk)) => SessionEngine::Phased { chunk },
            (Some("phased"), None) => SessionEngine::Phased { chunk: 65_536 },
            (Some("threads"), _) => SessionEngine::Threads,
            (Some(other), _) => return Err(format!("unknown engine `{other}` (phased|threads)")),
        };
        if cfg.partition.is_some() && !cfg.tagged {
            return Err("partition requires tagged=1 (per-thread MRCs come from the tags)".into());
        }
        if cfg.tagged {
            // The concurrent analyzer is its own engine: exact, unbounded,
            // single-rank. Refusing the incompatible keys beats silently
            // ignoring what the client asked for.
            if cfg.engine != SessionEngine::Auto {
                return Err("tagged sessions run the concurrent analyzer (no engine/chunk)".into());
            }
            if cfg.approx.is_some() {
                return Err("tagged sessions are exact (no approx)".into());
            }
            if cfg.bound.is_some() {
                return Err("tagged sessions are unbounded (no bound)".into());
            }
            if cfg.ranks.is_some() {
                return Err("tagged sessions are single-rank (no ranks)".into());
            }
        }
        Ok(cfg)
    }

    /// The analysis builder for this session plus whether `finish` should
    /// scale the cascade rank count to the trace length.
    fn builder(
        &self,
        policy: parda_core::FaultPolicy,
        default_approx: ApproxMode,
    ) -> (Analysis, bool) {
        let (tree, mode, auto_ranks) = match self.engine {
            SessionEngine::Auto => (
                self.tree.unwrap_or(parda_tree::TreeKind::Vector),
                Mode::Threads,
                true,
            ),
            SessionEngine::Threads => (
                self.tree.unwrap_or(parda_tree::TreeKind::Splay),
                Mode::Threads,
                false,
            ),
            SessionEngine::Phased { chunk } => (
                self.tree.unwrap_or(parda_tree::TreeKind::Splay),
                Mode::Phased {
                    chunk,
                    reduction: Reduction::ShipToRankZero,
                },
                false,
            ),
        };
        let mut b = Analysis::new()
            .tree(tree)
            .mode(mode)
            .bound(self.bound)
            .stats(true)
            .fault_policy(policy)
            .approx(self.approx.unwrap_or(default_approx));
        if let Some(ranks) = self.ranks {
            b = b.ranks(ranks);
        }
        (b, auto_ranks)
    }
}

/// A classified session failure plus the wire frame describing it.
struct SessionError(ErrorFrame);

impl SessionError {
    fn new(class: ErrorClass, message: impl Into<String>) -> Self {
        Self(ErrorFrame::new(class, message))
    }

    fn from_parda(e: &PardaError) -> Self {
        Self(ErrorFrame::from_parda(e))
    }

    /// The session watchdog firing: the peer sent nothing for the whole
    /// idle window.
    fn stall(idle: Option<std::time::Duration>) -> Self {
        Self(ErrorFrame {
            class: ErrorClass::Stall,
            a: 0,
            b: idle
                .map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX))
                .unwrap_or(0),
            message: "session idle past the read deadline".into(),
        })
    }
}

/// Decrements the active-session count when the session ends (normally or
/// by unwind — the shard drops the slot either way).
struct AdmissionGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn try_admit(active: &Arc<AtomicUsize>, max: usize) -> Option<AdmissionGuard> {
    let mut cur = active.load(Ordering::SeqCst);
    loop {
        if cur >= max {
            return None;
        }
        match active.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                return Some(AdmissionGuard {
                    active: Arc::clone(active),
                })
            }
            Err(now) => cur = now,
        }
    }
}

/// Everything a [`Session`] borrows from its shard for one step: server
/// config, shared counters, the admission gauge, the slot's reply outbox,
/// and the shard's reusable frame-decode arena.
pub(crate) struct SessionHost<'a> {
    pub scfg: &'a ServerConfig,
    pub counters: &'a ServerCounters,
    pub active: &'a Arc<AtomicUsize>,
    pub outbox: &'a mut Vec<u8>,
    pub arena: &'a mut Vec<Addr>,
}

/// Where a session is in its protocol lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    AwaitConfig,
    Streaming,
    /// A terminal reply is queued; keep absorbing the client's in-flight
    /// messages (bounded) so it can read the reply before we close.
    Draining,
    /// Flush the outbox, then close the socket.
    Closing,
}

/// The per-connection protocol state machine (see the module docs). All
/// counter updates and reply bytes happen in here; the shard only moves
/// bytes and readiness.
pub(crate) struct Session {
    id: u64,
    phase: Phase,
    cfg: Option<SessionConfig>,
    driver: Option<SessionAnalysis>,
    /// Accumulated thread-tagged stream for `tagged=1` sessions, which
    /// buffer and run the concurrent analyzer at FIN (no driver).
    tagged_trace: Option<ThreadedTrace>,
    /// Scratch TID arena for tagged frame decoding (pairs `host.arena`).
    tid_arena: Vec<Tid>,
    guard: Option<AdmissionGuard>,
    budget: Option<u64>,
    bytes_in: u64,
    frame_seq: u64,
    recovery: RecoveryMetrics,
    drained_msgs: u32,
    state_bytes_hwm: u64,
    sketch_bytes_hwm: u64,
    outcome_recorded: bool,
    completed: bool,
    /// Resume token issued in ACCEPT (id prefix + random nonce).
    token: [u8; TOKEN_LEN],
    /// Copy of the queued STATS message, kept until the slot is reaped so
    /// a session orphaned *after* completion can redeliver its reply.
    final_reply: Option<Vec<u8>>,
    /// A decoded RESUME token awaiting adoption by the shard (which owns
    /// the orphan pool handle; the session itself cannot reach it).
    pending_resume: Option<[u8; TOKEN_LEN]>,
}

impl Session {
    pub(crate) fn new(id: u64) -> Self {
        Session {
            id,
            phase: Phase::AwaitHello,
            cfg: None,
            driver: None,
            tagged_trace: None,
            tid_arena: Vec::new(),
            guard: None,
            budget: None,
            bytes_in: 0,
            frame_seq: 0,
            recovery: RecoveryMetrics::default(),
            drained_msgs: 0,
            state_bytes_hwm: 0,
            sketch_bytes_hwm: 0,
            outcome_recorded: false,
            completed: false,
            token: [0; TOKEN_LEN],
            final_reply: None,
            pending_resume: None,
        }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// A fresh session with its resume token already minted, as the
    /// orphan-pool tests need (production mints the token at admission).
    #[cfg(test)]
    pub(crate) fn tokened(id: u64) -> (Session, [u8; TOKEN_LEN]) {
        let mut s = Session::new(id);
        s.token = make_token(id);
        let token = s.token;
        (s, token)
    }

    /// Constant shape (not constant time — the token guards against
    /// stale handles, not adversaries; see the module docs in `orphan`).
    pub(crate) fn token_matches(&self, token: &[u8; TOKEN_LEN]) -> bool {
        self.token == *token
    }

    /// Whether the shard should keep reading (and parsing) this socket.
    pub(crate) fn wants_read(&self) -> bool {
        self.phase != Phase::Closing
    }

    /// Whether the slot can be reaped once its outbox is flushed.
    pub(crate) fn is_closing(&self) -> bool {
        self.phase == Phase::Closing
    }

    /// STATS was queued — the shard records the session latency.
    pub(crate) fn completed(&self) -> bool {
        self.completed
    }

    /// Largest per-session analysis state seen (any mode).
    pub(crate) fn state_bytes_hwm(&self) -> u64 {
        self.state_bytes_hwm
    }

    /// Largest sketch seen, for approx sessions only (0 otherwise).
    pub(crate) fn sketch_bytes_hwm(&self) -> u64 {
        self.sketch_bytes_hwm
    }

    /// One complete wire message from the shard's parser.
    pub(crate) fn on_message(&mut self, kind: MsgKind, payload: &[u8], host: &mut SessionHost) {
        match self.phase {
            Phase::AwaitHello => self.handle_hello(kind, payload, host),
            Phase::AwaitConfig => self.handle_config(kind, payload, host),
            Phase::Streaming => self.handle_streaming(kind, payload, host),
            Phase::Draining => {
                self.drained_msgs += 1;
                if kind == MsgKind::Fin || self.drained_msgs >= DRAIN_MSG_CAP {
                    self.phase = Phase::Closing;
                }
            }
            Phase::Closing => {}
        }
    }

    /// The byte stream stopped being parseable (bad kind byte, lying
    /// length prefix): reply if we still can, then close — resync is
    /// impossible once framing is lost.
    pub(crate) fn on_desync(&mut self, detail: String, host: &mut SessionHost) {
        match self.phase {
            Phase::Draining | Phase::Closing => {}
            _ => self.abort(SessionError::new(ErrorClass::Protocol, detail), host),
        }
        self.phase = Phase::Closing;
    }

    /// The peer closed its write side.
    pub(crate) fn on_eof(&mut self, host: &mut SessionHost) {
        match self.phase {
            Phase::AwaitHello | Phase::AwaitConfig | Phase::Streaming => self.abort(
                SessionError::new(ErrorClass::Protocol, "connection closed mid-session"),
                host,
            ),
            Phase::Draining | Phase::Closing => {}
        }
        self.phase = Phase::Closing;
    }

    /// A hard socket read error.
    pub(crate) fn on_read_error(&mut self, e: std::io::Error, host: &mut SessionHost) {
        match self.phase {
            Phase::Draining | Phase::Closing => {}
            _ => self.abort(SessionError::new(ErrorClass::Io, e.to_string()), host),
        }
        self.phase = Phase::Closing;
    }

    /// The idle deadline passed with no bytes pending on the socket.
    pub(crate) fn on_stall(&mut self, host: &mut SessionHost) {
        match self.phase {
            Phase::Draining | Phase::Closing => {}
            _ => self.abort(SessionError::stall(host.scfg.idle_timeout), host),
        }
        self.phase = Phase::Closing;
    }

    /// Flushing this session's reply failed: the peer is gone; make sure
    /// the connection is still accounted exactly once.
    pub(crate) fn on_transport_error(&mut self, host: &mut SessionHost) {
        if !self.outcome_recorded {
            self.outcome_recorded = true;
            if self.guard.is_some() {
                host.counters.sessions_failed.incr();
            } else {
                host.counters.sessions_rejected.incr();
            }
        }
        self.phase = Phase::Closing;
    }

    /// A panic unwound out of message processing (the `server::session`
    /// failpoint in tests, a bug in production): the session dies with a
    /// typed error frame, the daemon and its shard do not.
    pub(crate) fn on_panic(&mut self, host: &mut SessionHost) {
        if !self.outcome_recorded {
            self.outcome_recorded = true;
            host.counters.sessions_failed.incr();
        }
        let frame = ErrorFrame::new(ErrorClass::WorkerPanic, "session thread panicked");
        let _ = write_msg(host.outbox, MsgKind::Error, &frame.to_payload());
        // Keep absorbing whatever the client was still sending so it can
        // reach the error frame (closing with unread data would RST the
        // buffered reply away).
        self.phase = Phase::Draining;
    }

    /// Whether a lost transport should orphan this session instead of
    /// failing it: it must hold an admission slot and either still be
    /// streaming or have a completed-but-undelivered reply. Handshake
    /// phases and already-failed (draining/closing without a reply)
    /// sessions keep the legacy fail-fast path.
    pub(crate) fn is_orphanable(&self) -> bool {
        self.guard.is_some()
            && (self.phase == Phase::Streaming || (self.completed && self.final_reply.is_some()))
    }

    /// Whether the session is mid-stream (admitted, before FIN).
    pub(crate) fn is_streaming(&self) -> bool {
        self.phase == Phase::Streaming
    }

    /// Detach from a dead transport before parking in the orphan pool:
    /// stops the analysis wall clock and clears any half-processed
    /// resume request.
    pub(crate) fn detach(&mut self) {
        if let Some(driver) = self.driver.as_mut() {
            driver.detach();
        }
        self.pending_resume = None;
    }

    /// Reattach a parked session to a fresh connection. Queues the
    /// resume-ACCEPT carrying the authoritative ingest watermark; a
    /// completed session also requeues its undelivered STATS reply and
    /// drains (absorbing the client's re-sent FIN), while an in-flight
    /// one goes back to streaming so the client can retransmit frames
    /// past the watermark.
    pub(crate) fn resume_onto(&mut self, outbox: &mut Vec<u8>) {
        if let Some(driver) = self.driver.as_mut() {
            driver.reattach();
        }
        let accept = AcceptPayload {
            session: self.id,
            token: self.token,
            watermark: self.frame_seq,
        };
        let _ = write_msg(outbox, MsgKind::Accept, &accept.to_bytes());
        if self.completed {
            let reply = self.final_reply.clone().expect("orphanable completed");
            outbox.extend_from_slice(&reply);
            self.drained_msgs = 0;
            self.phase = Phase::Draining;
        } else {
            self.phase = Phase::Streaming;
        }
    }

    /// The token decoded from a RESUME message, if one is waiting for the
    /// shard to adopt.
    pub(crate) fn take_pending_resume(&mut self) -> Option<[u8; TOKEN_LEN]> {
        self.pending_resume.take()
    }

    /// A RESUME named a token that is not parked (expired, evicted,
    /// already resumed, or never ours): structured refusal, counted as a
    /// rejected connection like any other failed handshake.
    pub(crate) fn on_resume_missing(&mut self, host: &mut SessionHost) {
        self.refuse(
            SessionError::new(ErrorClass::Protocol, "unknown or expired session token"),
            host,
        );
    }

    /// Terminal accounting for an orphan that will never be resumed.
    /// Dropping the session afterwards releases its admission slot.
    pub(crate) fn expire(&mut self, counters: &ServerCounters) {
        if !self.outcome_recorded {
            self.outcome_recorded = true;
            counters.sessions_failed.incr();
        }
    }

    /// Bytes this session pins while parked: retained analysis state
    /// plus any undelivered reply (floored at 1 so even an empty session
    /// counts against the pool budget).
    pub(crate) fn orphan_bytes(&self) -> u64 {
        let state = self.driver.as_ref().map_or(0, |d| d.state_bytes())
            + self
                .tagged_trace
                .as_ref()
                .map_or(0, |t| t.len() as u64 * 12);
        let reply = self.final_reply.as_ref().map_or(0, |r| r.len() as u64);
        (state + reply).max(1)
    }

    fn handle_hello(&mut self, kind: MsgKind, payload: &[u8], host: &mut SessionHost) {
        if kind != MsgKind::Hello {
            return self.refuse(
                SessionError::new(
                    ErrorClass::Protocol,
                    format!("expected HELLO, got {kind:?}"),
                ),
                host,
            );
        }
        if let Err(e) = crate::proto::check_hello(payload) {
            return self.refuse(SessionError::new(ErrorClass::Protocol, e), host);
        }
        self.phase = Phase::AwaitConfig;
    }

    fn handle_config(&mut self, kind: MsgKind, payload: &[u8], host: &mut SessionHost) {
        if kind == MsgKind::Resume {
            // A reconnecting client instead of a fresh CONFIG. Decode the
            // token and leave it for the shard, which owns the orphan
            // pool and swaps the parked session into this slot.
            match decode_resume(payload) {
                Ok((token, _last_acked)) => self.pending_resume = Some(token),
                Err(e) => self.refuse(SessionError::new(ErrorClass::Protocol, e.to_string()), host),
            }
            return;
        }
        if kind != MsgKind::Config {
            return self.refuse(
                SessionError::new(
                    ErrorClass::Protocol,
                    format!("expected CONFIG, got {kind:?}"),
                ),
                host,
            );
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return self.refuse(
                SessionError::new(ErrorClass::Protocol, "CONFIG is not UTF-8"),
                host,
            );
        };
        let cfg = match SessionConfig::parse(text, host.scfg.fault.degradation) {
            Ok(cfg) => cfg,
            Err(e) => return self.refuse(SessionError::new(ErrorClass::Config, e), host),
        };

        // Admission control: the session cap is enforced after a valid
        // handshake so the refusal is a structured protocol error, not a
        // dropped connection.
        let Some(guard) = try_admit(host.active, host.scfg.max_sessions) else {
            return self.refuse(
                SessionError::new(
                    ErrorClass::Admission,
                    format!(
                        "admission rejected: {} sessions active (max {})",
                        host.scfg.max_sessions, host.scfg.max_sessions
                    ),
                ),
                host,
            );
        };
        self.guard = Some(guard);
        host.counters.sessions_opened.incr();
        self.token = make_token(self.id);
        let accept = AcceptPayload {
            session: self.id,
            token: self.token,
            watermark: 0,
        };
        let _ = write_msg(host.outbox, MsgKind::Accept, &accept.to_bytes());
        parda_failpoint::failpoint!("server::session");

        if cfg.tagged {
            self.tagged_trace = Some(ThreadedTrace::new());
        } else {
            let policy = parda_core::FaultPolicy {
                degradation: cfg.degradation,
                ..host.scfg.fault.clone()
            };
            let (builder, auto_ranks) = cfg.builder(policy, host.scfg.default_approx);
            self.driver = Some(builder.session().auto_ranks(auto_ranks));
        }
        self.budget = host.scfg.max_session_bytes;
        self.cfg = Some(cfg);
        self.phase = Phase::Streaming;
    }

    fn handle_streaming(&mut self, kind: MsgKind, payload: &[u8], host: &mut SessionHost) {
        match kind {
            MsgKind::Data => {
                if let Err(e) = self.ingest_frame(payload, host) {
                    self.abort(e, host);
                    self.phase = Phase::Draining;
                } else {
                    self.maybe_ack(host);
                }
            }
            MsgKind::Fin => self.finish(host),
            other => {
                self.abort(
                    SessionError::new(
                        ErrorClass::Protocol,
                        format!("expected DATA or FIN, got {other:?}"),
                    ),
                    host,
                );
                self.phase = Phase::Draining;
            }
        }
    }

    /// Decode one DATA payload under the session's degradation policy and
    /// feed it to the analysis driver. A lossy policy may quarantine the
    /// frame, which feeds nothing.
    fn ingest_frame(&mut self, payload: &[u8], host: &mut SessionHost) -> Result<(), SessionError> {
        self.frame_seq += 1;
        self.bytes_in += payload.len() as u64;
        if let Some(budget) = self.budget {
            if self.bytes_in > budget {
                return Err(SessionError::new(
                    ErrorClass::Budget,
                    format!("session exceeded its {budget}-byte budget"),
                ));
            }
        }
        host.counters.frames_in.incr();
        host.counters.bytes_in.add(payload.len() as u64);
        let cfg = self.cfg.as_ref().expect("streaming implies config");
        let (encoding, tagged) = (cfg.encoding, cfg.tagged);
        let decoded = if tagged {
            decode_tagged_data_frame_into(payload, encoding, host.arena, &mut self.tid_arena)
        } else {
            decode_data_frame_into(payload, encoding, host.arena)
        };
        parda_failpoint::failpoint!("server::decode", {
            return self.quarantine(
                DataFrameError::Decode {
                    count: 0,
                    detail: "injected server decode failure".into(),
                },
                host,
            );
        });
        match decoded {
            Ok(()) if tagged => {
                host.counters.refs_in.add(host.arena.len() as u64);
                let trace = self.tagged_trace.as_mut().expect("tagged implies trace");
                for (&tid, &addr) in self.tid_arena.iter().zip(host.arena.iter()) {
                    trace.push(tid, addr);
                }
                // The buffered stream is the session's analysis state:
                // 8 address bytes + 4 TID bytes per reference.
                self.state_bytes_hwm = self.state_bytes_hwm.max(trace.len() as u64 * 12);
                Ok(())
            }
            Ok(()) => {
                host.counters.refs_in.add(host.arena.len() as u64);
                let driver = self.driver.as_mut().expect("streaming implies driver");
                driver.feed(host.arena);
                self.state_bytes_hwm = self.state_bytes_hwm.max(driver.state_bytes());
                if driver.is_sketch() {
                    self.sketch_bytes_hwm = self.sketch_bytes_hwm.max(driver.state_bytes());
                }
                Ok(())
            }
            Err(e) => self.quarantine(e, host),
        }
    }

    /// Strict: fail the session. Lossy: tally the quarantined frame
    /// (mirroring `FramedStream`'s per-frame recovery) and carry on.
    fn quarantine(
        &mut self,
        e: DataFrameError,
        host: &mut SessionHost,
    ) -> Result<(), SessionError> {
        let cfg = self.cfg.as_ref().expect("streaming implies config");
        if !cfg.degradation.is_lossy() {
            return Err(SessionError::from_parda(&PardaError::Corrupt(e.message())));
        }
        if matches!(e, DataFrameError::Crc { .. }) {
            self.recovery.crc_failures += 1;
        }
        self.recovery.skip_frame(self.frame_seq - 1, e.count());
        host.counters.frames_quarantined.incr();
        Ok(())
    }

    /// FIN: run any deferred analysis, queue the STATS reply.
    fn finish(&mut self, host: &mut SessionHost) {
        if self.cfg.as_ref().is_some_and(|c| c.tagged) {
            return self.finish_tagged(host);
        }
        let driver = self.driver.take().expect("streaming implies driver");
        let (hist, report) = match driver.finish() {
            Ok(done) => done,
            Err(e) => {
                self.abort(SessionError::from_parda(&e), host);
                self.phase = Phase::Draining;
                return;
            }
        };
        let mut report = report.expect("stats were requested");
        attach_recovery(&mut report, std::mem::take(&mut self.recovery));
        if let Some(a) = report.approx.as_ref() {
            host.counters.approx_sessions.incr();
            host.counters.sketch_bytes_hwm.record_max(a.sketch_bytes);
            self.sketch_bytes_hwm = self.sketch_bytes_hwm.max(a.sketch_bytes);
        }
        let cfg = self.cfg.as_ref().expect("streaming implies config");
        // Build the STATS message off to the side so a copy survives in
        // `final_reply`: if the transport dies before the outbox drains,
        // the orphaned session can requeue the reply verbatim on resume.
        let mut reply = Vec::new();
        match send_stats(&mut reply, cfg, &hist, &report) {
            Ok(()) => {
                host.outbox.extend_from_slice(&reply);
                self.final_reply = Some(reply);
                self.outcome_recorded = true;
                self.completed = true;
                host.counters.sessions_completed.incr();
                self.phase = Phase::Closing;
            }
            Err(e) => {
                self.abort(e, host);
                self.phase = Phase::Draining;
            }
        }
    }

    /// FIN on a tagged session: run the concurrent shared-cache analyzer
    /// over the as-received interleaving (model label `as-recorded`),
    /// fold a partition recommendation in when one was requested, and
    /// queue the STATS reply. The shared histogram plays the role the
    /// exact histogram plays for plain sessions — binary replies carry
    /// it; JSON replies add the full report with `stats.shared`.
    fn finish_tagged(&mut self, host: &mut SessionHost) {
        let trace = self.tagged_trace.take().expect("tagged implies trace");
        let cfg = self.cfg.as_ref().expect("streaming implies config");
        let tree = cfg.tree.unwrap_or(parda_tree::TreeKind::Vector);
        let partition = cfg.partition;
        let started = std::time::Instant::now();
        let analysis = parda_core::concurrent::analyze_concurrent_kind(&trace, tree);
        let plan = match partition {
            Some((capacity, granularity)) => {
                let threads = analysis.thread_ids.len() as u64;
                if threads == 0 {
                    self.abort(
                        SessionError::new(
                            ErrorClass::Config,
                            "partition requested but no references were ingested",
                        ),
                        host,
                    );
                    self.phase = Phase::Draining;
                    return;
                }
                if capacity < granularity.saturating_mul(threads) {
                    self.abort(
                        SessionError::new(
                            ErrorClass::Config,
                            format!(
                                "partition capacity {capacity} cannot give {threads} \
                                 threads {granularity} lines each"
                            ),
                        ),
                        host,
                    );
                    self.phase = Phase::Draining;
                    return;
                }
                Some(parda_core::concurrent::recommend_partition(
                    &analysis.per_thread_solo,
                    capacity,
                    granularity,
                ))
            }
            None => None,
        };
        let mut report = Report {
            mode: "concurrent".into(),
            tree: tree.name().into(),
            ranks: 1,
            trace_refs: trace.len() as u64,
            total_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            shared: Some(parda_core::concurrent::shared_metrics(
                &analysis,
                "as-recorded",
                plan.as_ref(),
            )),
            ..Report::default()
        };
        attach_recovery(&mut report, std::mem::take(&mut self.recovery));
        let cfg = self.cfg.as_ref().expect("streaming implies config");
        let mut reply = Vec::new();
        match send_stats(&mut reply, cfg, &analysis.shared, &report) {
            Ok(()) => {
                host.outbox.extend_from_slice(&reply);
                self.final_reply = Some(reply);
                self.outcome_recorded = true;
                self.completed = true;
                host.counters.sessions_completed.incr();
                self.phase = Phase::Closing;
            }
            Err(e) => {
                self.abort(e, host);
                self.phase = Phase::Draining;
            }
        }
    }

    /// Queue a cumulative `ACK(frame_seq)` every `ack_every` ingested
    /// frames (0 disables, the legacy wire behaviour). ACKs are advisory:
    /// losing one only costs the client extra retransmission volume,
    /// because the watermark in a resume-ACCEPT is authoritative.
    fn maybe_ack(&mut self, host: &mut SessionHost) {
        let every = u64::from(host.scfg.ack_every);
        if every == 0 || !self.frame_seq.is_multiple_of(every) {
            return;
        }
        parda_failpoint::failpoint!("server::ack_drop", return);
        let _ = write_msg(host.outbox, MsgKind::Ack, &self.frame_seq.to_le_bytes());
        host.counters.acks_sent.incr();
    }

    /// Refuse an un-admitted connection (bad handshake or admission cap):
    /// `sessions_rejected`, an error frame, then a bounded drain.
    fn refuse(&mut self, err: SessionError, host: &mut SessionHost) {
        if !self.outcome_recorded {
            self.outcome_recorded = true;
            host.counters.sessions_rejected.incr();
        }
        let _ = write_msg(host.outbox, MsgKind::Error, &err.0.to_payload());
        self.phase = Phase::Draining;
    }

    /// Fail the session with a typed error frame, accounting it exactly
    /// once: `sessions_failed` when admitted, `sessions_rejected` during
    /// the handshake. The caller picks the follow-up phase.
    fn abort(&mut self, err: SessionError, host: &mut SessionHost) {
        if !self.outcome_recorded {
            self.outcome_recorded = true;
            if self.guard.is_some() {
                host.counters.sessions_failed.incr();
            } else {
                host.counters.sessions_rejected.incr();
            }
        }
        let _ = write_msg(host.outbox, MsgKind::Error, &err.0.to_payload());
    }
}

/// Build a resume token: the session id (little-endian) followed by a
/// splitmix64 nonce seeded from the wall clock and the id. The prefix
/// lets the orphan pool index by id; the nonce makes stale tokens from
/// recycled ids fail to match. Uniqueness, not cryptography — the daemon
/// trusts its transport exactly as much as it did before resumption.
fn make_token(id: u64) -> [u8; TOKEN_LEN] {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = now ^ id.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let mut token = [0u8; TOKEN_LEN];
    token[..8].copy_from_slice(&id.to_le_bytes());
    token[8..].copy_from_slice(&x.to_le_bytes());
    token
}

/// Fold the wire-level recovery tally into the analysis report.
fn attach_recovery(report: &mut Report, wire: RecoveryMetrics) {
    if wire.is_clean() && report.recovery.is_some() {
        return;
    }
    match report.recovery.as_mut() {
        Some(existing) => existing.merge(&wire),
        None => report.recovery = Some(wire),
    }
}

fn send_stats(
    outbox: &mut Vec<u8>,
    cfg: &SessionConfig,
    hist: &ReuseHistogram,
    report: &Report,
) -> Result<(), SessionError> {
    let io_fail = |e: &dyn std::fmt::Display| SessionError::new(ErrorClass::Io, e.to_string());
    let mut payload;
    match cfg.reply {
        ReplyFormat::Json => {
            let hist_json = serde_json::to_string(hist).map_err(|e| io_fail(&e))?;
            let report_json = serde_json::to_string(report).map_err(|e| io_fail(&e))?;
            payload = vec![STATS_FORMAT_JSON];
            payload.extend_from_slice(
                format!("{{\"histogram\":{hist_json},\"stats\":{report_json}}}").as_bytes(),
            );
        }
        ReplyFormat::Binary => {
            payload = vec![STATS_FORMAT_BINARY];
            payload.extend_from_slice(&encode_histogram_binary(hist));
        }
    }
    write_msg(outbox, MsgKind::Stats, &payload).map_err(|e| io_fail(&e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_config_defaults_and_overrides() {
        let cfg = SessionConfig::parse("", Degradation::Strict).unwrap();
        assert_eq!(cfg.engine, SessionEngine::Auto);
        assert_eq!(cfg.tree, None, "auto engine picks its own tree");
        assert_eq!(cfg.encoding, Encoding::DeltaVarint);
        assert_eq!(cfg.degradation, Degradation::Strict);
        assert_eq!(cfg.reply, ReplyFormat::Binary);
        assert_eq!(cfg.ranks, None);
        assert_eq!(cfg.approx, None, "pre-approx CONFIG inherits the server");

        let cfg = SessionConfig::parse(
            "tree=avl\nranks=3\nbound=512\nengine=threads\nencoding=raw\n\
             degradation=best-effort\nreply=json\napprox=shards-smax:4096\n",
            Degradation::Strict,
        )
        .unwrap();
        assert_eq!(cfg.tree, Some(parda_tree::TreeKind::Avl));
        assert_eq!(cfg.ranks, Some(3));
        assert_eq!(cfg.bound, Some(512));
        assert_eq!(cfg.engine, SessionEngine::Threads);
        assert_eq!(cfg.encoding, Encoding::Raw);
        assert_eq!(cfg.degradation, Degradation::BestEffort);
        assert_eq!(cfg.reply, ReplyFormat::Json);
        assert_eq!(
            cfg.approx,
            Some(ApproxMode::ShardsFixedSize { s_max: 4096 })
        );

        let cfg = SessionConfig::parse("approx=exact", Degradation::Strict).unwrap();
        assert_eq!(cfg.approx, Some(ApproxMode::Exact), "explicit exact wins");
    }

    #[test]
    fn session_config_engine_selection_is_backward_compatible() {
        // engine=phased keeps its default chunk.
        let cfg = SessionConfig::parse("engine=phased", Degradation::Strict).unwrap();
        assert_eq!(cfg.engine, SessionEngine::Phased { chunk: 65_536 });
        // A bare chunk= still means phased, as it always has.
        let cfg = SessionConfig::parse("chunk=1000", Degradation::Strict).unwrap();
        assert_eq!(cfg.engine, SessionEngine::Phased { chunk: 1000 });
    }

    #[test]
    fn session_config_inherits_server_degradation() {
        let cfg =
            SessionConfig::parse("engine=phased\nchunk=1000", Degradation::BestEffort).unwrap();
        assert_eq!(cfg.degradation, Degradation::BestEffort);
        assert_eq!(cfg.engine, SessionEngine::Phased { chunk: 1000 });
    }

    #[test]
    fn session_config_parses_tagged_and_partition() {
        let cfg = SessionConfig::parse("tagged=1", Degradation::Strict).unwrap();
        assert!(cfg.tagged);
        assert_eq!(cfg.partition, None);

        let cfg = SessionConfig::parse("tagged=1\npartition=4096/64", Degradation::Strict).unwrap();
        assert_eq!(cfg.partition, Some((4096, 64)));

        // Omitted granularity resolves through the shared default.
        let cfg = SessionConfig::parse("tagged=1\npartition=4096", Degradation::Strict).unwrap();
        assert_eq!(
            cfg.partition,
            Some((4096, parda_core::concurrent::default_granularity(4096)))
        );

        // Tagged sessions may still pick a tree and wire settings.
        let cfg = SessionConfig::parse(
            "tagged=1\npartition=1024/8\ntree=splay\nencoding=raw\nreply=json",
            Degradation::Strict,
        )
        .unwrap();
        assert_eq!(cfg.tree, Some(parda_tree::TreeKind::Splay));
        assert_eq!(cfg.reply, ReplyFormat::Json);

        for bad in [
            "tagged=maybe",
            "partition=0",
            "partition=4096/0",
            "partition=4096",           // partition without tagged
            "tagged=1\nengine=threads", // the concurrent analyzer is the engine
            "tagged=1\nchunk=100",
            "tagged=1\napprox=shards:256",
            "tagged=1\nbound=64",
            "tagged=1\nranks=4",
        ] {
            assert!(
                SessionConfig::parse(bad, Degradation::Strict).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn session_config_rejects_unknown_keys_and_values() {
        for bad in [
            "warp=9",
            "engine=warp",
            "tree=oak",
            "ranks=minus-two",
            "reply=yaml",
            "encoding=utf8",
            "degradation=yolo",
            "approx=warp",
            "approx=shards:0",
            "approx=shards:1.5",
            "not-a-pair",
        ] {
            assert!(
                SessionConfig::parse(bad, Degradation::Strict).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn resume_tokens_embed_the_id_and_differ_per_session() {
        let a = make_token(7);
        let b = make_token(7);
        assert_eq!(u64::from_le_bytes(a[..8].try_into().unwrap()), 7);
        assert_ne!(a[8..], b[8..], "nonces differ even for a recycled id");
        let mut s = Session::new(7);
        s.token = a;
        assert!(s.token_matches(&a));
        assert!(!s.token_matches(&b), "id match alone is not enough");
    }

    #[test]
    fn fresh_session_is_not_orphanable_until_admitted_and_streaming() {
        let s = Session::new(1);
        assert!(!s.is_orphanable(), "handshake phases fail fast");
    }

    #[test]
    fn admission_cas_caps_and_guard_releases() {
        let active = Arc::new(AtomicUsize::new(0));
        let a = try_admit(&active, 2).expect("first");
        let _b = try_admit(&active, 2).expect("second");
        assert!(try_admit(&active, 2).is_none(), "cap reached");
        drop(a);
        assert!(try_admit(&active, 2).is_some(), "slot released");
    }
}

//! Fault-injection suite for the daemon (`--features failpoints`).
//!
//! Exercises the server-specific sites (`server::accept`,
//! `server::session`, `server::decode`) plus the engine site
//! (`parallel::worker`) as hit *through* a live session, proving the
//! PR 4 isolation machinery composes with the network layer: a panicking
//! analysis rank is rescued bit-identically, a panicking session thread
//! is reported to its client without touching the daemon, and an
//! injected decode failure rides the same quarantine path as real wire
//! corruption.

#![cfg(feature = "failpoints")]

use parda_core::Analysis;
use parda_hist::ReuseHistogram;
use parda_server::proto::{
    encode_data_frame, hello_payload, read_msg, write_msg, ErrorClass, ErrorFrame, MsgKind,
    STATS_FORMAT_BINARY,
};
use parda_server::{submit, ReplyFormat, Server, ServerConfig, SubmitOptions};
use parda_trace::io::Encoding;
use parda_trace::Addr;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The failpoint registry is process-global; serialise every test.
static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parda_failpoint::clear();
    g
}

fn start_server() -> (
    String,
    parda_server::ShutdownHandle,
    std::thread::JoinHandle<parda_obs::ServerMetrics>,
) {
    let server = Server::bind(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    })
    .expect("bind failpoint test server");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn sample_trace(n: u64) -> Vec<Addr> {
    (0..n).map(|i| (i * 7919) % 1024).collect()
}

fn offline(trace: &[Addr]) -> ReuseHistogram {
    Analysis::new().ranks(4).run(trace).0
}

#[test]
fn worker_panic_inside_a_session_is_rescued_bit_identically() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();
    let trace = sample_trace(6000);

    parda_failpoint::configure("parallel::worker", "1*panic").unwrap();
    let reply = submit(
        &addr,
        &trace,
        &SubmitOptions {
            config: vec![
                ("engine".into(), "threads".into()),
                ("ranks".into(), "4".into()),
            ],
            reply: ReplyFormat::Json,
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    parda_failpoint::clear();

    assert_eq!(reply.histogram, offline(&trace), "rescue must be exact");
    let doc: serde::Value = serde_json::from_str(reply.stats_json.as_deref().unwrap()).unwrap();
    let recovery = doc.field("stats").unwrap().field("recovery").unwrap();
    let rescues =
        <u64 as serde::Deserialize>::from_value(recovery.field("rank_rescues").unwrap()).unwrap();
    assert_eq!(rescues, 1, "one rank rescued by the scalar engine");

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
}

#[test]
fn session_thread_panic_is_reported_to_the_client_and_contained() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::session", "1*panic").unwrap();
    let err = submit(&addr, &sample_trace(100), &SubmitOptions::default()).unwrap_err();
    assert_eq!(err.class(), "worker-panic", "got: {err}");
    parda_failpoint::clear();

    // The daemon survived the panicking session and keeps serving.
    let trace = sample_trace(2000);
    let reply = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn injected_accept_failure_drops_one_connection_not_the_daemon() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::accept", "1*error").unwrap();
    let dropped = submit(&addr, &sample_trace(50), &SubmitOptions::default());
    assert!(dropped.is_err(), "refused connection must surface an error");
    parda_failpoint::clear();

    let trace = sample_trace(1500);
    let reply = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_rejected, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn injected_decode_failure_rides_the_quarantine_path() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();
    let first = sample_trace(500);
    let second: Vec<Addr> = sample_trace(500).iter().map(|a| a + 4096).collect();

    // Best-effort session: the injected decode failure on the first DATA
    // frame is quarantined exactly like wire corruption would be.
    parda_failpoint::configure("server::decode", "1*error").unwrap();
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"degradation=best-effort\nreply=binary\nencoding=raw\n",
    )
    .unwrap();
    let accept = read_msg(&mut stream).unwrap();
    assert_eq!(accept.kind, MsgKind::Accept);
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&first, Encoding::Raw),
    )
    .unwrap();
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&second, Encoding::Raw),
    )
    .unwrap();
    write_msg(&mut stream, MsgKind::Fin, &[]).unwrap();
    let stats = read_msg(&mut stream).unwrap();
    parda_failpoint::clear();

    assert_eq!(stats.kind, MsgKind::Stats);
    assert_eq!(stats.payload[0], STATS_FORMAT_BINARY);
    let hist = parda_server::proto::decode_histogram_binary(&stats.payload[1..]).unwrap();
    assert_eq!(
        hist,
        offline(&second),
        "only the surviving frame is analyzed"
    );

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.frames_quarantined, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn injected_decode_failure_under_strict_is_a_corrupt_error() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::decode", "1*error").unwrap();
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"reply=binary\nencoding=raw\n",
    )
    .unwrap();
    let accept = read_msg(&mut stream).unwrap();
    assert_eq!(accept.kind, MsgKind::Accept);
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&sample_trace(100), Encoding::Raw),
    )
    .unwrap();
    let msg = read_msg(&mut stream).unwrap();
    parda_failpoint::clear();

    assert_eq!(msg.kind, MsgKind::Error);
    let frame = ErrorFrame::from_payload(&msg.payload).unwrap();
    assert_eq!(frame.class, ErrorClass::Corrupt);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
}

//! Fault-injection suite for the daemon (`--features failpoints`).
//!
//! Exercises the server-specific sites (`server::accept`,
//! `server::session`, `server::decode`) plus the engine site
//! (`parallel::worker`) as hit *through* a live session, proving the
//! PR 4 isolation machinery composes with the network layer: a panicking
//! analysis rank is rescued bit-identically, a panicking session thread
//! is reported to its client without touching the daemon, and an
//! injected decode failure rides the same quarantine path as real wire
//! corruption.

#![cfg(feature = "failpoints")]

use parda_core::Analysis;
use parda_hist::ReuseHistogram;
use parda_server::proto::{
    encode_data_frame, hello_payload, read_msg, write_msg, ErrorClass, ErrorFrame, MsgKind,
    STATS_FORMAT_BINARY,
};
use parda_server::{submit, ReplyFormat, Server, ServerConfig, SubmitOptions};
use parda_trace::io::Encoding;
use parda_trace::Addr;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The failpoint registry is process-global; serialise every test.
static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parda_failpoint::clear();
    g
}

fn start_server() -> (
    String,
    parda_server::ShutdownHandle,
    std::thread::JoinHandle<parda_obs::ServerMetrics>,
) {
    let server = Server::bind(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    })
    .expect("bind failpoint test server");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn sample_trace(n: u64) -> Vec<Addr> {
    (0..n).map(|i| (i * 7919) % 1024).collect()
}

fn offline(trace: &[Addr]) -> ReuseHistogram {
    Analysis::new().ranks(4).run(trace).0
}

#[test]
fn worker_panic_inside_a_session_is_rescued_bit_identically() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();
    let trace = sample_trace(6000);

    parda_failpoint::configure("parallel::worker", "1*panic").unwrap();
    let reply = submit(
        &addr,
        &trace,
        &SubmitOptions {
            config: vec![
                ("engine".into(), "threads".into()),
                ("ranks".into(), "4".into()),
            ],
            reply: ReplyFormat::Json,
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    parda_failpoint::clear();

    assert_eq!(reply.histogram, offline(&trace), "rescue must be exact");
    let doc: serde::Value = serde_json::from_str(reply.stats_json.as_deref().unwrap()).unwrap();
    let recovery = doc.field("stats").unwrap().field("recovery").unwrap();
    let rescues =
        <u64 as serde::Deserialize>::from_value(recovery.field("rank_rescues").unwrap()).unwrap();
    assert_eq!(rescues, 1, "one rank rescued by the scalar engine");

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
}

#[test]
fn session_thread_panic_is_reported_to_the_client_and_contained() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::session", "1*panic").unwrap();
    let err = submit(&addr, &sample_trace(100), &SubmitOptions::default()).unwrap_err();
    assert_eq!(err.class(), "worker-panic", "got: {err}");
    parda_failpoint::clear();

    // The daemon survived the panicking session and keeps serving.
    let trace = sample_trace(2000);
    let reply = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn injected_accept_failure_drops_one_connection_not_the_daemon() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::accept", "1*error").unwrap();
    let dropped = submit(&addr, &sample_trace(50), &SubmitOptions::default());
    assert!(dropped.is_err(), "refused connection must surface an error");
    parda_failpoint::clear();

    let trace = sample_trace(1500);
    let reply = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_rejected, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn injected_decode_failure_rides_the_quarantine_path() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();
    let first = sample_trace(500);
    let second: Vec<Addr> = sample_trace(500).iter().map(|a| a + 4096).collect();

    // Best-effort session: the injected decode failure on the first DATA
    // frame is quarantined exactly like wire corruption would be.
    parda_failpoint::configure("server::decode", "1*error").unwrap();
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"degradation=best-effort\nreply=binary\nencoding=raw\n",
    )
    .unwrap();
    let accept = read_msg(&mut stream).unwrap();
    assert_eq!(accept.kind, MsgKind::Accept);
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&first, Encoding::Raw),
    )
    .unwrap();
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&second, Encoding::Raw),
    )
    .unwrap();
    write_msg(&mut stream, MsgKind::Fin, &[]).unwrap();
    let stats = read_msg(&mut stream).unwrap();
    parda_failpoint::clear();

    assert_eq!(stats.kind, MsgKind::Stats);
    assert_eq!(stats.payload[0], STATS_FORMAT_BINARY);
    let hist = parda_server::proto::decode_histogram_binary(&stats.payload[1..]).unwrap();
    assert_eq!(
        hist,
        offline(&second),
        "only the surviving frame is analyzed"
    );

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.frames_quarantined, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

/// A daemon with resumption enabled, for the chaos-site tests.
fn start_resilient_server(
    ack_every: u32,
) -> (
    String,
    parda_server::ShutdownHandle,
    std::thread::JoinHandle<parda_obs::ServerMetrics>,
) {
    let server = Server::bind(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_secs(30),
        ack_every,
        ..ServerConfig::default()
    })
    .expect("bind resilient failpoint test server");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn eager_retry() -> parda_server::RetryPolicy {
    parda_server::RetryPolicy {
        max_attempts: 10,
        backoff: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        ..parda_server::RetryPolicy::default()
    }
}

#[test]
fn injected_connection_resets_are_resumed_bit_identically() {
    let _g = exclusive();
    let (addr, stop, join) = start_resilient_server(4);
    let trace = sample_trace(2000);

    // Sever the connection just before the 5th and 10th DATA dispatch.
    // The dropped frame is never ingested, so the resume-ACCEPT watermark
    // forces the client to retransmit it — correctness here proves the
    // watermark protocol, not just reconnection.
    parda_failpoint::configure("server::conn_reset", "2*every(5)*error").unwrap();
    let reply = submit(
        &addr,
        &trace,
        &SubmitOptions {
            frame_refs: 100, // 20 frames: both resets land mid-stream
            retry: eager_retry(),
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    parda_failpoint::clear();

    assert_eq!(reply.histogram, offline(&trace));
    assert_eq!(reply.retry.resumes, 2);
    assert!(reply.retry.retransmitted_frames >= 2, "severed frames owed");

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
    assert_eq!(metrics.sessions_orphaned, 2);
    assert_eq!(metrics.sessions_resumed, 2);
    assert_eq!(metrics.orphans_expired, 0);
}

#[test]
fn torn_reply_write_is_redelivered_to_the_resuming_client() {
    let _g = exclusive();
    let (addr, stop, join) = start_resilient_server(0);
    let trace = sample_trace(1200);
    let frames: Vec<Vec<u8>> = trace
        .chunks(300)
        .map(|c| encode_data_frame(c, Encoding::Raw))
        .collect();

    // Flush hit 1 is the ACCEPT (waited out below, so it drains alone);
    // hit 2 is the STATS reply, which tears after ≤3 bytes. The session
    // is then *complete* but undelivered — the orphan pool must retain
    // its final reply for the resume.
    parda_failpoint::configure("server::partial_write", "1*every(2)*error").unwrap();
    let mut s = TcpStream::connect(&addr).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
    let accept =
        parda_server::proto::AcceptPayload::from_bytes(&read_msg(&mut s).unwrap().payload).unwrap();
    for frame in &frames {
        write_msg(&mut s, MsgKind::Data, frame).unwrap();
    }
    write_msg(&mut s, MsgKind::Fin, &[]).unwrap();
    let torn = read_msg(&mut s);
    assert!(torn.is_err(), "reply must be truncated, got {torn:?}");
    drop(s);
    std::thread::sleep(Duration::from_millis(100));
    parda_failpoint::clear();

    // RESUME redelivers the buffered reply without re-running anything.
    let mut s = TcpStream::connect(&addr).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut s,
        MsgKind::Resume,
        &parda_server::proto::encode_resume(&accept.token, 0),
    )
    .unwrap();
    let resumed =
        parda_server::proto::AcceptPayload::from_bytes(&read_msg(&mut s).unwrap().payload).unwrap();
    assert_eq!(resumed.session, accept.session);
    assert_eq!(
        resumed.watermark,
        frames.len() as u64,
        "all frames ingested"
    );
    let stats = read_msg(&mut s).unwrap();
    assert_eq!(stats.kind, MsgKind::Stats);
    assert_eq!(stats.payload[0], STATS_FORMAT_BINARY);
    let hist = parda_server::proto::decode_histogram_binary(&stats.payload[1..]).unwrap();
    assert_eq!(hist, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
    assert_eq!(metrics.sessions_orphaned, 1);
    assert_eq!(metrics.sessions_resumed, 1);
}

#[test]
fn dropped_acks_cost_retransmission_volume_never_correctness() {
    let _g = exclusive();
    let (addr, stop, join) = start_resilient_server(1);
    let trace = sample_trace(3000);

    // Every second ACK vanishes before it is written. The client's view
    // of the watermark lags, but the resume-ACCEPT watermark is
    // authoritative, so a lost ACK can only cost retransmitted frames.
    parda_failpoint::configure("server::ack_drop", "every(2)*error").unwrap();
    let reply = submit(
        &addr,
        &trace,
        &SubmitOptions {
            frame_refs: 100, // 30 frames
            retry: eager_retry(),
            chaos_drop_points: vec![10],
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    parda_failpoint::clear();

    assert_eq!(reply.histogram, offline(&trace));
    assert_eq!(reply.retry.resumes, 1);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
    let frames = 30;
    assert!(
        metrics.acks_sent < frames,
        "some ACKs were dropped: sent {} of {frames}",
        metrics.acks_sent
    );
}

#[test]
fn dispatch_panic_fails_the_session_without_orphaning_or_killing_the_daemon() {
    let _g = exclusive();
    let (addr, stop, join) = start_resilient_server(0);

    // A panic out of message dispatch is a bug, not a network fault: it
    // must fail the session (even with orphaning enabled), and the shard
    // survives to serve the next session.
    parda_failpoint::configure("server::dispatch", "1*panic").unwrap();
    let err = submit(&addr, &sample_trace(100), &SubmitOptions::default()).unwrap_err();
    assert_eq!(err.class(), "worker-panic", "got: {err}");
    parda_failpoint::clear();

    let trace = sample_trace(1500);
    let reply = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&trace));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_orphaned, 0, "a panic is never resumable");
    assert_eq!(metrics.orphans_expired, 0);
}

#[test]
fn injected_decode_failure_under_strict_is_a_corrupt_error() {
    let _g = exclusive();
    let (addr, stop, join) = start_server();

    parda_failpoint::configure("server::decode", "1*error").unwrap();
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"reply=binary\nencoding=raw\n",
    )
    .unwrap();
    let accept = read_msg(&mut stream).unwrap();
    assert_eq!(accept.kind, MsgKind::Accept);
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&sample_trace(100), Encoding::Raw),
    )
    .unwrap();
    let msg = read_msg(&mut stream).unwrap();
    parda_failpoint::clear();

    assert_eq!(msg.kind, MsgKind::Error);
    let frame = ErrorFrame::from_payload(&msg.payload).unwrap();
    assert_eq!(frame.class, ErrorClass::Corrupt);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
}

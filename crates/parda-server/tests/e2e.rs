//! End-to-end loopback tests: a real daemon on an ephemeral port, real
//! sockets, and bit-identical equivalence with the offline analysis.

use parda_core::{Analysis, PardaError};
use parda_hist::ReuseHistogram;
use parda_server::proto::{
    decode_histogram_binary, encode_data_frame, hello_payload, read_msg, write_msg, AcceptPayload,
    ErrorClass, ErrorFrame, MsgKind, STATS_FORMAT_BINARY, STATS_FORMAT_JSON,
};
use parda_server::{submit, ReplyFormat, Server, ServerConfig, SubmitOptions};
use parda_trace::io::Encoding;
use parda_trace::Addr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

/// One daemon shared by every test that doesn't need special limits.
fn shared_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::bind(ServerConfig {
            max_sessions: 32,
            idle_timeout: Some(Duration::from_secs(10)),
            ..ServerConfig::default()
        })
        .expect("bind shared test server");
        let addr = server.local_addr().unwrap().to_string();
        std::thread::spawn(move || server.run().unwrap());
        addr
    })
}

/// Start a private daemon; returns its address, a stopper, and the join
/// handle delivering the final metrics.
fn private_server(
    cfg: ServerConfig,
) -> (
    String,
    parda_server::ShutdownHandle,
    std::thread::JoinHandle<parda_obs::ServerMetrics>,
) {
    let server = Server::bind(cfg).expect("bind private test server");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

fn offline(trace: &[Addr]) -> ReuseHistogram {
    Analysis::new().ranks(4).run(trace).0
}

fn zipfish(seed: u64, n: usize) -> Vec<Addr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let span = 1u64 << rng.gen_range(1..12);
            rng.gen_range(0..span)
        })
        .collect()
}

/// Build the full client→server byte stream for one session.
fn session_bytes(trace: &[Addr], config: &str, encoding: Encoding, frame_refs: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_msg(&mut bytes, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut bytes, MsgKind::Config, config.as_bytes()).unwrap();
    for chunk in trace.chunks(frame_refs.max(1)) {
        write_msg(
            &mut bytes,
            MsgKind::Data,
            &encode_data_frame(chunk, encoding),
        )
        .unwrap();
    }
    write_msg(&mut bytes, MsgKind::Fin, &[]).unwrap();
    bytes
}

/// Write `bytes` to the socket in random-sized flushed segments, so the
/// server's reads see every possible message-boundary misalignment.
fn write_segmented(stream: &mut TcpStream, bytes: &[u8], rng: &mut StdRng) {
    let mut at = 0;
    while at < bytes.len() {
        let take = rng.gen_range(1..64.min(bytes.len() - at + 1));
        stream.write_all(&bytes[at..at + take]).unwrap();
        stream.flush().unwrap();
        at += take;
    }
}

fn expect_accept(stream: &mut TcpStream) -> u64 {
    let msg = read_msg(stream).expect("read ACCEPT");
    assert_eq!(msg.kind, MsgKind::Accept, "payload: {:?}", msg.payload);
    let accept = AcceptPayload::from_bytes(&msg.payload).expect("decode ACCEPT");
    assert_eq!(
        accept.watermark, 0,
        "fresh session starts at watermark zero"
    );
    accept.session
}

fn expect_error(stream: &mut TcpStream) -> ErrorFrame {
    let msg = read_msg(stream).expect("read ERROR");
    assert_eq!(msg.kind, MsgKind::Error);
    ErrorFrame::from_payload(&msg.payload).unwrap()
}

fn expect_binary_stats(stream: &mut TcpStream) -> ReuseHistogram {
    let msg = read_msg(stream).expect("read STATS");
    if msg.kind == MsgKind::Error {
        panic!(
            "expected STATS, got ERROR: {:?}",
            ErrorFrame::from_payload(&msg.payload)
        );
    }
    assert_eq!(msg.kind, MsgKind::Stats);
    assert_eq!(msg.payload[0], STATS_FORMAT_BINARY);
    decode_histogram_binary(&msg.payload[1..]).unwrap()
}

proptest! {
    /// Arbitrary traces through a real loopback socket, written in
    /// arbitrary TCP segment sizes, under both encodings and both
    /// engines: the histogram coming back is bit-identical to the
    /// offline analysis.
    #[test]
    fn segmented_wire_sessions_match_offline_analysis(
        trace in proptest::collection::vec(0u64..512, 0..1500),
        frame_refs in 1usize..600,
        seed in 0u64..1 << 32,
        raw in any::<bool>(),
        threads in any::<bool>(),
    ) {
        let encoding = if raw { Encoding::Raw } else { Encoding::DeltaVarint };
        let engine = if threads { "threads" } else { "phased" };
        let enc_name = if raw { "raw" } else { "delta" };
        let config = format!("engine={engine}\nranks=3\nreply=binary\nencoding={enc_name}\n");
        let bytes = session_bytes(&trace, &config, encoding, frame_refs);

        let mut stream = TcpStream::connect(shared_addr()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        write_segmented(&mut stream, &bytes, &mut rng);
        expect_accept(&mut stream);
        let hist = expect_binary_stats(&mut stream);
        prop_assert_eq!(hist, offline(&trace));
    }
}

#[test]
fn client_submit_round_trips_both_reply_formats() {
    let trace = zipfish(11, 40_000);
    let expect = offline(&trace);

    let binary = submit(shared_addr(), &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(binary.histogram, expect);
    assert!(binary.stats_json.is_none());

    let json = submit(
        shared_addr(),
        &trace,
        &SubmitOptions {
            reply: ReplyFormat::Json,
            config: vec![("tree".into(), "avl".into()), ("ranks".into(), "2".into())],
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    assert_eq!(json.histogram, expect);
    let doc: serde::Value = serde_json::from_str(json.stats_json.as_deref().unwrap()).unwrap();
    doc.field("histogram").unwrap();
    doc.field("stats").unwrap();
}

#[test]
fn flipped_data_byte_strict_session_gets_typed_corrupt_error() {
    let trace = zipfish(23, 2000);
    let mut stream = TcpStream::connect(shared_addr()).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"reply=binary\nencoding=raw\n",
    )
    .unwrap();
    expect_accept(&mut stream);

    let mut frame = encode_data_frame(&trace, Encoding::DeltaVarint);
    frame[20] ^= 0x10; // flip one payload byte: CRC32C no longer matches
    write_msg(&mut stream, MsgKind::Data, &frame).unwrap();
    let err = expect_error(&mut stream);
    assert_eq!(err.class, ErrorClass::Corrupt);
    assert_eq!(err.to_parda().class(), "corrupt");
}

#[test]
fn flipped_data_byte_best_effort_session_quarantines_and_reports() {
    let a = zipfish(31, 3000);
    let b = zipfish(37, 1000);
    let c = zipfish(41, 3000);

    let mut stream = TcpStream::connect(shared_addr()).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"degradation=best-effort\nreply=json\nranks=3\nencoding=raw\n",
    )
    .unwrap();
    expect_accept(&mut stream);

    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&a, Encoding::Raw),
    )
    .unwrap();
    let mut bad = encode_data_frame(&b, Encoding::Raw);
    bad[40] ^= 0x01;
    write_msg(&mut stream, MsgKind::Data, &bad).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(&c, Encoding::Raw),
    )
    .unwrap();
    write_msg(&mut stream, MsgKind::Fin, &[]).unwrap();

    let msg = read_msg(&mut stream).unwrap();
    assert_eq!(msg.kind, MsgKind::Stats);
    assert_eq!(msg.payload[0], STATS_FORMAT_JSON);
    let text = std::str::from_utf8(&msg.payload[1..]).unwrap();
    let doc: serde::Value = serde_json::from_str(text).unwrap();

    // The histogram is exactly the offline analysis of the survivors.
    let survivors: Vec<Addr> = a.iter().chain(&c).copied().collect();
    let hist = <ReuseHistogram as serde::Deserialize>::from_value(doc.field("histogram").unwrap())
        .unwrap();
    assert_eq!(hist, offline(&survivors));

    // And the quarantine is tallied honestly in the recovery metrics.
    let recovery = doc.field("stats").unwrap().field("recovery").unwrap();
    let get = |name: &str| -> u64 {
        <u64 as serde::Deserialize>::from_value(recovery.field(name).unwrap()).unwrap()
    };
    assert_eq!(get("frames_skipped"), 1);
    assert_eq!(get("crc_failures"), 1);
    assert_eq!(get("refs_dropped"), b.len() as u64);
}

#[test]
fn eight_concurrent_sessions_all_complete_correctly() {
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let trace = zipfish(100 + i, 20_000 + 1000 * i as usize);
                let reply = submit(shared_addr(), &trace, &SubmitOptions::default()).unwrap();
                assert_eq!(reply.histogram, offline(&trace), "session {i}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn admission_rejects_the_session_over_the_cap_with_a_structured_error() {
    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 2,
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });

    // Two admitted sessions hold their slots by not sending FIN yet.
    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(&addr).unwrap();
            write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
            write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
            expect_accept(&mut s);
            s
        })
        .collect();

    // The third is refused with a typed admission error, not a hangup.
    let mut third = TcpStream::connect(&addr).unwrap();
    write_msg(&mut third, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut third, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
    let err = expect_error(&mut third);
    assert_eq!(err.class, ErrorClass::Admission);
    assert_eq!(err.to_parda().class(), "config");
    drop(third);

    // The held sessions still complete normally.
    for s in &mut held {
        write_msg(
            s,
            MsgKind::Data,
            &encode_data_frame(&[1, 2, 1, 2], Encoding::Raw),
        )
        .unwrap();
        write_msg(s, MsgKind::Fin, &[]).unwrap();
        let hist = expect_binary_stats(s);
        assert_eq!(hist, offline(&[1, 2, 1, 2]));
    }
    drop(held);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_rejected, 1);
    assert_eq!(metrics.sessions_completed, 2);
    assert_eq!(metrics.sessions_failed, 0);
}

#[test]
fn shutdown_drains_the_in_flight_session_without_losing_its_reply() {
    let (addr, stop, join) = private_server(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });
    let trace = zipfish(55, 30_000);

    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"reply=binary\nencoding=raw\n",
    )
    .unwrap();
    expect_accept(&mut stream);

    // Half the trace in flight, then the shutdown request lands.
    let (first, second) = trace.split_at(trace.len() / 2);
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(first, Encoding::Raw),
    )
    .unwrap();
    stop.shutdown();
    std::thread::sleep(Duration::from_millis(50));

    // The drain keeps the session alive to completion.
    write_msg(
        &mut stream,
        MsgKind::Data,
        &encode_data_frame(second, Encoding::Raw),
    )
    .unwrap();
    write_msg(&mut stream, MsgKind::Fin, &[]).unwrap();
    let hist = expect_binary_stats(&mut stream);
    assert_eq!(hist, offline(&trace));

    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_failed, 0);
}

#[test]
fn byte_budget_violation_is_a_typed_budget_error() {
    let (addr, stop, join) = private_server(ServerConfig {
        max_session_bytes: Some(1024),
        idle_timeout: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    });

    let trace = zipfish(77, 50_000); // far more than 1 KiB of payload
    let err = submit(&addr, &trace, &SubmitOptions::default()).unwrap_err();
    assert_eq!(err.class(), "config");
    assert!(err.to_string().contains("budget"), "got: {err}");

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
}

#[test]
fn bad_hello_and_unknown_config_keys_are_rejected_before_admission() {
    let mut stream = TcpStream::connect(shared_addr()).unwrap();
    write_msg(&mut stream, MsgKind::Hello, b"NOTPARDA!\x01").unwrap();
    let err = expect_error(&mut stream);
    assert_eq!(err.class, ErrorClass::Protocol);

    let err = submit(
        shared_addr(),
        &[1, 2, 3],
        &SubmitOptions {
            config: vec![("warp".into(), "9".into())],
            ..SubmitOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, PardaError::Config(_)), "got: {err}");
}

#[test]
fn idle_session_is_stalled_out_not_leaked() {
    let (addr, stop, join) = private_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });

    let mut stream = TcpStream::connect(&addr).unwrap();
    write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(
        &mut stream,
        MsgKind::Config,
        b"reply=binary\nencoding=raw\n",
    )
    .unwrap();
    expect_accept(&mut stream);
    // Send nothing: the session's read deadline fires.
    let err = expect_error(&mut stream);
    assert_eq!(err.class, ErrorClass::Stall);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_failed, 1);
}

#[test]
fn raw_socket_reads_see_a_clean_close_after_stats() {
    // After STATS the server closes; the client must see EOF, not junk.
    let trace = [5u64, 6, 5, 6];
    let bytes = session_bytes(&trace, "reply=binary\nencoding=raw\n", Encoding::Raw, 2);
    let mut stream = TcpStream::connect(shared_addr()).unwrap();
    stream.write_all(&bytes).unwrap();
    expect_accept(&mut stream);
    expect_binary_stats(&mut stream);
    let mut rest = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
}

#[test]
fn sixty_four_sessions_drain_through_shutdown_with_balanced_shards() {
    // The sharded-core stress: 64 concurrent sessions, alternating exact
    // and sketch, pinned across 4 forced shards. A shutdown request lands
    // while every session is mid-stream; the drain must still deliver all
    // 64 replies, each bit-identical to the offline analysis, with the
    // session load spread evenly over the shards and the sketch sessions
    // holding O(sketch) — not O(trace) — resident state.
    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 64,
        shards: 4,
        idle_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    });
    let approx_mode = parda_core::ApproxMode::ShardsFixedRate { rate: 0.1 };

    // Main thread joins the barrier too: shutdown fires only after every
    // session is admitted and has half its trace in flight.
    let barrier = Arc::new(Barrier::new(65));
    let clients: Vec<_> = (0..64usize)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let trace = zipfish(500 + i as u64, 3_000 + 16 * i);
                let sketched = i % 2 == 1;
                let config = if sketched {
                    format!(
                        "approx={}\nreply=binary\nencoding=raw\n",
                        approx_mode.spec()
                    )
                } else {
                    "reply=binary\nencoding=raw\n".to_string()
                };

                let mut stream = TcpStream::connect(&addr).unwrap();
                write_msg(&mut stream, MsgKind::Hello, &hello_payload()).unwrap();
                write_msg(&mut stream, MsgKind::Config, config.as_bytes()).unwrap();
                expect_accept(&mut stream);

                let (first, second) = trace.split_at(trace.len() / 2);
                write_msg(
                    &mut stream,
                    MsgKind::Data,
                    &encode_data_frame(first, Encoding::Raw),
                )
                .unwrap();
                barrier.wait();
                // Give the shutdown request time to latch before resuming,
                // so the second half genuinely streams through the drain.
                std::thread::sleep(Duration::from_millis(50));
                write_msg(
                    &mut stream,
                    MsgKind::Data,
                    &encode_data_frame(second, Encoding::Raw),
                )
                .unwrap();
                write_msg(&mut stream, MsgKind::Fin, &[]).unwrap();

                let hist = expect_binary_stats(&mut stream);
                let expect = if sketched {
                    parda_core::approx::analyze_approx(&trace, approx_mode).0
                } else {
                    offline(&trace)
                };
                assert_eq!(hist, expect, "session {i}");
            })
        })
        .collect();

    barrier.wait();
    stop.shutdown();
    for c in clients {
        c.join().unwrap();
    }

    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 64);
    assert_eq!(metrics.sessions_failed, 0);
    assert_eq!(metrics.sessions_rejected, 0);
    assert_eq!(metrics.approx_sessions, 32);

    // Least-loaded admission keeps the shards balanced: every shard hosts
    // sessions, and no shard carries more than 2x any other.
    assert_eq!(metrics.per_shard.len(), 4, "all four shards saw sessions");
    let counts: Vec<u64> = metrics.per_shard.iter().map(|s| s.sessions).collect();
    assert_eq!(counts.iter().sum::<u64>(), 64);
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    assert!(
        min > 0 && max <= 2 * min,
        "unbalanced shard pinning: {counts:?}"
    );

    // The sketch sessions stayed constant-space: their resident high-water
    // mark is bounded by the sketch, far below the exact sessions' state.
    assert!(metrics.sketch_bytes_hwm > 0);
    assert!(
        metrics.sketch_bytes_hwm <= 1 << 20,
        "sketch sessions should hold O(sketch) bytes, saw {}",
        metrics.sketch_bytes_hwm
    );
    for shard in &metrics.per_shard {
        assert!(
            shard.sketch_bytes_hwm <= 1 << 20,
            "shard {} sketch hwm {} exceeds the O(sketch) bound",
            shard.shard,
            shard.sketch_bytes_hwm
        );
    }
}

#[test]
fn approx_session_is_bit_identical_to_offline_approx_analysis() {
    // The sketch is order-deterministic, so the daemon's streamed run must
    // reproduce the offline `analyze --approx` histogram bit for bit.
    let trace = zipfish(23, 60_000);
    let mode = parda_core::ApproxMode::ShardsFixedRate { rate: 0.01 };
    let (expect, expect_metrics) = parda_core::approx::analyze_approx(&trace, mode);

    let reply = submit(
        shared_addr(),
        &trace,
        &SubmitOptions {
            config: vec![("approx".into(), mode.spec())],
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    assert_eq!(reply.histogram, expect);

    // The JSON stats document gains the approx block — same shape as the
    // offline `analyze --approx --stats=json`.
    let json = submit(
        shared_addr(),
        &trace,
        &SubmitOptions {
            reply: ReplyFormat::Json,
            config: vec![("approx".into(), mode.spec())],
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    assert_eq!(json.histogram, expect);
    let doc: serde::Value = serde_json::from_str(json.stats_json.as_deref().unwrap()).unwrap();
    let stats = doc.field("stats").unwrap();
    let approx = stats.field("approx").unwrap();
    let mode_name = <String as serde::Deserialize>::from_value(approx.field("mode").unwrap());
    assert_eq!(mode_name.unwrap(), "shards");
    let sampled =
        <u64 as serde::Deserialize>::from_value(approx.field("sampled_refs").unwrap()).unwrap();
    assert_eq!(sampled, expect_metrics.sampled_refs);
}

#[test]
fn server_default_approx_applies_only_when_the_client_is_silent() {
    // Version tolerance, both directions: a CONFIG without `approx=`
    // inherits the server default; an explicit `approx=exact` overrides it.
    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 4,
        idle_timeout: Some(Duration::from_secs(10)),
        default_approx: parda_core::ApproxMode::ShardsFixedRate { rate: 0.25 },
        ..ServerConfig::default()
    });
    let trace = zipfish(29, 30_000);
    let (approx_expect, _) = parda_core::approx::analyze_approx(
        &trace,
        parda_core::ApproxMode::ShardsFixedRate { rate: 0.25 },
    );

    let silent = submit(&addr, &trace, &SubmitOptions::default()).unwrap();
    assert_eq!(silent.histogram, approx_expect, "silent client inherits");

    let exact = submit(
        &addr,
        &trace,
        &SubmitOptions {
            config: vec![("approx".into(), "exact".into())],
            ..SubmitOptions::default()
        },
    )
    .unwrap();
    assert_eq!(exact.histogram, offline(&trace), "explicit exact wins");

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 2);
    assert_eq!(
        metrics.approx_sessions, 1,
        "only the silent session sketched"
    );
    assert!(metrics.sketch_bytes_hwm > 0);
}

#[test]
fn tagged_session_partitions_like_the_offline_analyzer() {
    use parda_core::concurrent::{
        analyze_concurrent, interleave_threads, recommend_partition, InterleaveModel,
    };
    use parda_tree::VectorTree;

    // Thread 0 loops over 64 lines, thread 1 over 1024 — the partition
    // should hand each exactly its working set.
    let t0: Vec<Addr> = (0..6400).map(|i| i % 64).collect();
    let t1: Vec<Addr> = (0..10_240).map(|i| 100_000 + i % 1024).collect();
    let trace = interleave_threads(&[&t0, &t1], &InterleaveModel::round_robin());

    let opts = SubmitOptions {
        config: vec![("partition".into(), "1088/64".into())],
        reply: ReplyFormat::Json,
        frame_refs: 1000,
        ..SubmitOptions::default()
    };
    let reply = parda_server::submit_tagged(shared_addr(), &trace, &opts).expect("tagged submit");

    let offline = analyze_concurrent::<VectorTree>(&trace);
    assert_eq!(
        reply.histogram, offline.shared,
        "server shared histogram is bit-identical to the offline pass"
    );

    let plan = recommend_partition(&offline.per_thread_solo, 1088, 64);
    assert_eq!(plan.allocation, vec![64, 1024]);
    let json = reply.stats_json.expect("json reply");
    assert!(json.contains("\"shared\":{"), "{json}");
    assert!(json.contains("\"model\":\"as-recorded\""), "{json}");
    let alloc: Vec<String> = plan.allocation.iter().map(|a| a.to_string()).collect();
    assert!(
        json.contains(&format!("\"allocation\":[{}]", alloc.join(","))),
        "{json}"
    );
    assert!(
        json.contains(&format!("\"predicted_misses\":{}", plan.predicted_misses)),
        "{json}"
    );
}

#[test]
fn tagged_session_survives_disconnects_bit_identically() {
    use parda_core::concurrent::{analyze_concurrent, interleave_threads, InterleaveModel};
    use parda_tree::SplayTree;

    let t0: Vec<Addr> = zipfish(21, 4000);
    let t1: Vec<Addr> = zipfish(22, 4000);
    let trace = interleave_threads(
        &[&t0, &t1],
        &InterleaveModel::Probabilistic {
            weights: vec![2, 1],
            seed: 5,
        },
    );

    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 8,
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_secs(30),
        ack_every: 3,
        ..ServerConfig::default()
    });
    let mut opts = SubmitOptions {
        frame_refs: 512,
        ..SubmitOptions::default()
    };
    opts.retry = parda_server::RetryPolicy::with_attempts(5);
    opts.chaos_drop_points = vec![4, 9];
    let reply = parda_server::submit_tagged(&addr, &trace, &opts).expect("tagged resume");
    assert_eq!(
        reply.histogram,
        analyze_concurrent::<SplayTree>(&trace).shared,
        "resumed tagged session matches an unbroken offline run"
    );
    assert!(reply.retry.resumes >= 1, "the drops actually fired");
    stop.shutdown();
    join.join().unwrap();
}

#[test]
fn tagged_session_rejects_bad_partition_configs() {
    // partition without tagged is a structured config refusal.
    let trace: Vec<Addr> = (0..100).collect();
    let opts = SubmitOptions {
        config: vec![("partition".into(), "1024".into())],
        ..SubmitOptions::default()
    };
    match submit(shared_addr(), &trace, &opts) {
        Err(PardaError::Config(msg)) => assert!(msg.contains("tagged"), "{msg}"),
        other => panic!("expected config refusal, got {other:?}"),
    }

    // A capacity too small for one granule per thread fails at FIN.
    use parda_core::concurrent::{interleave_threads, InterleaveModel};
    let t0: Vec<Addr> = (0..50).collect();
    let t1: Vec<Addr> = (1000..1050).collect();
    let tagged = interleave_threads(&[&t0, &t1], &InterleaveModel::round_robin());
    let opts = SubmitOptions {
        config: vec![("partition".into(), "64/64".into())],
        ..SubmitOptions::default()
    };
    match parda_server::submit_tagged(shared_addr(), &tagged, &opts) {
        Err(PardaError::Config(msg)) => assert!(msg.contains("capacity"), "{msg}"),
        other => panic!("expected capacity refusal, got {other:?}"),
    }
}

//! Network-chaos end-to-end tests: connections die mid-stream (injected
//! client-side, so no fault-injection feature is needed) and the
//! reconnect + RESUME protocol must deliver a histogram bit-identical to
//! the offline analysis — across exact, phased/threads, and approximate
//! sketch sessions — with the server's orphan accounting reconciling
//! exactly: `sessions_resumed + orphans_expired == sessions_orphaned`.

use parda_core::Analysis;
use parda_hist::ReuseHistogram;
use parda_server::proto::{
    encode_data_frame, encode_resume, hello_payload, read_msg, write_msg, AcceptPayload,
    ErrorClass, ErrorFrame, MsgKind,
};
use parda_server::{submit, RetryPolicy, Server, ServerConfig, SubmitOptions};
use parda_trace::io::Encoding;
use parda_trace::Addr;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

fn offline(trace: &[Addr]) -> ReuseHistogram {
    Analysis::new().ranks(4).run(trace).0
}

fn zipfish(seed: u64, n: usize) -> Vec<Addr> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let span = 1u64 << rng.gen_range(1..12);
            rng.gen_range(0..span)
        })
        .collect()
}

/// A resumption-enabled daemon shared by the tests that only assert on
/// per-session results (the private-server tests check final metrics).
fn chaos_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::bind(ServerConfig {
            max_sessions: 32,
            idle_timeout: Some(Duration::from_secs(10)),
            orphan_retention: Duration::from_secs(30),
            ack_every: 3,
            ..ServerConfig::default()
        })
        .expect("bind chaos test server");
        let addr = server.local_addr().unwrap().to_string();
        std::thread::spawn(move || server.run().unwrap());
        addr
    })
}

fn private_server(
    cfg: ServerConfig,
) -> (
    String,
    parda_server::ShutdownHandle,
    std::thread::JoinHandle<parda_obs::ServerMetrics>,
) {
    let server = Server::bind(cfg).expect("bind private test server");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

/// A retry policy tuned for tests: plenty of attempts, short backoff.
fn eager_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        backoff: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        ..RetryPolicy::default()
    }
}

#[test]
fn injected_disconnects_resume_bit_identically_across_engines() {
    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 8,
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_secs(30),
        ack_every: 4,
        ..ServerConfig::default()
    });
    let trace = zipfish(404, 6_000);
    let approx_mode = parda_core::ApproxMode::ShardsFixedRate { rate: 0.1 };
    let engines: [&[(&str, String)]; 3] = [
        &[],
        &[
            ("engine", "threads".to_string()),
            ("ranks", "3".to_string()),
        ],
        &[("approx", approx_mode.spec())],
    ];

    for (i, pairs) in engines.iter().enumerate() {
        let opts = SubmitOptions {
            config: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            frame_refs: 64, // ~94 frames, so every drop point lands mid-stream
            retry: eager_retry(),
            chaos_drop_points: vec![9, 33, 61],
            ..SubmitOptions::default()
        };
        let reply = submit(&addr, &trace, &opts).unwrap_or_else(|e| {
            panic!("engine variant {i} failed after chaos: {e}");
        });
        let expect = if pairs.iter().any(|(k, _)| *k == "approx") {
            parda_core::approx::analyze_approx(&trace, approx_mode).0
        } else {
            offline(&trace)
        };
        assert_eq!(reply.histogram, expect, "engine variant {i}");
        assert_eq!(
            reply.retry.resumes, 3,
            "all three injected drops resumed (variant {i})"
        );
        assert!(reply.retry.attempts >= 4, "variant {i}");
        assert!(
            reply.retry.acks_seen > 0,
            "the server ACKed ingest progress (variant {i})"
        );
        assert!(
            reply.retry.resume_latency_ns > 0,
            "first-loss-to-resume latency is recorded (variant {i})"
        );
    }

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 3);
    assert_eq!(metrics.sessions_failed, 0, "chaos lost no sessions");
    assert_eq!(metrics.sessions_orphaned, 9, "3 sessions x 3 drops");
    assert_eq!(
        metrics.sessions_resumed + metrics.orphans_expired,
        metrics.sessions_orphaned,
        "orphan accounting reconciles"
    );
    assert_eq!(metrics.orphans_expired, 0, "every orphan was adopted");
    assert!(metrics.acks_sent > 0);
}

proptest! {
    /// Random traces, random frame sizes, random drop points, both exact
    /// engines: however the connection dies, the delivered histogram is
    /// the offline one, bit for bit.
    #[test]
    fn random_disconnects_never_change_the_histogram(
        trace in proptest::collection::vec(0u64..256, 0..800),
        frame_refs in 4usize..64,
        drops in proptest::collection::vec(1u64..60, 3),
        threads in any::<bool>(),
    ) {
        let mut opts = SubmitOptions {
            frame_refs,
            retry: eager_retry(),
            chaos_drop_points: drops,
            ..SubmitOptions::default()
        };
        if threads {
            opts.config.push(("engine".into(), "threads".into()));
            opts.config.push(("ranks".into(), "3".into()));
        }
        let reply = submit(chaos_addr(), &trace, &opts).unwrap();
        prop_assert_eq!(reply.histogram, offline(&trace));
    }
}

#[test]
fn every_frame_is_acked_at_cadence_one() {
    let (addr, stop, join) = private_server(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_secs(30),
        ack_every: 1,
        ..ServerConfig::default()
    });
    let trace = zipfish(7, 3_000);
    let opts = SubmitOptions {
        frame_refs: 32,
        retry: eager_retry(),
        ..SubmitOptions::default()
    };
    let reply = submit(&addr, &trace, &opts).unwrap();
    assert_eq!(reply.histogram, offline(&trace));
    let frames = trace.chunks(32).len() as u64;
    assert_eq!(reply.retry.acks_seen, frames, "one ACK per DATA frame");
    assert_eq!(reply.retry.attempts, 1);
    assert_eq!(reply.retry.resumes, 0);
    assert_eq!(reply.retry.retransmitted_frames, 0);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.acks_sent, frames);
    assert_eq!(metrics.sessions_orphaned, 0);
}

#[test]
fn orphaned_session_holds_its_slot_until_retention_expires_it() {
    let (addr, stop, join) = private_server(ServerConfig {
        max_sessions: 1,
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_millis(500),
        ..ServerConfig::default()
    });

    // Stream half a session, then vanish: the session is orphaned and
    // keeps holding the only admission slot.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
        write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
        let accept = read_msg(&mut s).unwrap();
        assert_eq!(accept.kind, MsgKind::Accept);
        write_msg(
            &mut s,
            MsgKind::Data,
            &encode_data_frame(&[1, 2, 3, 1], Encoding::Raw),
        )
        .unwrap();
        s.shutdown(std::net::Shutdown::Both).unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));

    // While parked, the orphan's slot is real: admission refuses.
    let refused = submit(&addr, &[1, 2], &SubmitOptions::default()).unwrap_err();
    assert_eq!(refused.class(), "config", "admission refusal: {refused}");

    // After the retention deadline the sweep expires it and the slot
    // frees up again.
    std::thread::sleep(Duration::from_millis(900));
    let reply = submit(&addr, &[5, 6, 5, 6], &SubmitOptions::default()).unwrap();
    assert_eq!(reply.histogram, offline(&[5, 6, 5, 6]));

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_orphaned, 1);
    assert_eq!(metrics.orphans_expired, 1);
    assert_eq!(metrics.sessions_resumed, 0);
    assert_eq!(
        metrics.sessions_failed, 1,
        "the expired orphan is the one failure"
    );
    assert_eq!(metrics.sessions_rejected, 1);
    assert_eq!(metrics.sessions_completed, 1);
}

#[test]
fn zero_budget_expires_orphans_immediately() {
    let (addr, stop, join) = private_server(ServerConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        orphan_retention: Duration::from_secs(30),
        orphan_budget: 0,
        ..ServerConfig::default()
    });

    let mut s = TcpStream::connect(&addr).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
    let accept = read_msg(&mut s).unwrap();
    let token = AcceptPayload::from_bytes(&accept.payload).unwrap().token;
    write_msg(
        &mut s,
        MsgKind::Data,
        &encode_data_frame(&[9, 9, 9], Encoding::Raw),
    )
    .unwrap();
    s.shutdown(std::net::Shutdown::Both).unwrap();
    drop(s);
    std::thread::sleep(Duration::from_millis(100));

    // The park was over budget, so the RESUME finds nothing.
    let mut s = TcpStream::connect(&addr).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Resume, &encode_resume(&token, 0)).unwrap();
    let msg = read_msg(&mut s).unwrap();
    assert_eq!(msg.kind, MsgKind::Error);
    let err = ErrorFrame::from_payload(&msg.payload).unwrap();
    assert_eq!(err.class, ErrorClass::Protocol);
    assert!(
        err.message.contains("unknown or expired"),
        "{}",
        err.message
    );

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_orphaned, 1);
    assert_eq!(metrics.orphans_expired, 1);
    assert_eq!(metrics.sessions_resumed, 0);
}

#[test]
fn resume_with_an_unknown_token_is_a_typed_protocol_refusal() {
    let mut s = TcpStream::connect(chaos_addr()).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Resume, &encode_resume(&[0xAB; 16], 0)).unwrap();
    let msg = read_msg(&mut s).unwrap();
    assert_eq!(msg.kind, MsgKind::Error);
    let err = ErrorFrame::from_payload(&msg.payload).unwrap();
    assert_eq!(err.class, ErrorClass::Protocol);
    assert!(
        err.message.contains("unknown or expired"),
        "{}",
        err.message
    );
}

#[test]
fn manual_resume_retransmits_only_past_the_accepted_watermark() {
    // Drive the wire protocol by hand to pin down RESUME semantics: the
    // resume-ACCEPT watermark is authoritative, and the client owes
    // exactly the frames past it.
    let trace = zipfish(88, 1_000);
    let frames: Vec<Vec<u8>> = trace
        .chunks(100)
        .map(|c| encode_data_frame(c, Encoding::Raw))
        .collect();

    let mut s = TcpStream::connect(chaos_addr()).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
    let accept = AcceptPayload::from_bytes(&read_msg(&mut s).unwrap().payload).unwrap();
    assert_eq!(accept.watermark, 0);
    for frame in &frames[..4] {
        write_msg(&mut s, MsgKind::Data, frame).unwrap();
    }
    s.shutdown(std::net::Shutdown::Both).unwrap();
    drop(s);
    std::thread::sleep(Duration::from_millis(100));

    let mut s = TcpStream::connect(chaos_addr()).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Resume, &encode_resume(&accept.token, 0)).unwrap();
    let resumed = AcceptPayload::from_bytes(&read_msg(&mut s).unwrap().payload).unwrap();
    assert_eq!(resumed.session, accept.session, "same session, new socket");
    assert_eq!(
        resumed.watermark, 4,
        "the server ingested all four frames before the drop"
    );
    for frame in &frames[resumed.watermark as usize..] {
        write_msg(&mut s, MsgKind::Data, frame).unwrap();
    }
    write_msg(&mut s, MsgKind::Fin, &[]).unwrap();
    // Skip interleaved ACKs (the chaos server ACKs every 3 frames).
    let hist = loop {
        let msg = read_msg(&mut s).unwrap();
        match msg.kind {
            MsgKind::Ack => continue,
            MsgKind::Stats => {
                assert_eq!(msg.payload[0], parda_server::proto::STATS_FORMAT_BINARY);
                break parda_server::proto::decode_histogram_binary(&msg.payload[1..]).unwrap();
            }
            other => panic!("expected STATS, got {other:?}"),
        }
    };
    assert_eq!(hist, offline(&trace));
}

#[test]
fn fallback_poller_serves_sessions_and_stalls_idle_ones() {
    // The portable bounded-sleep poller must behave identically: normal
    // round trips, resumption, and stall-sweep timing all still work.
    let (addr, stop, join) = private_server(ServerConfig {
        fallback_poller: true,
        idle_timeout: Some(Duration::from_millis(300)),
        orphan_retention: Duration::from_secs(30),
        ack_every: 2,
        ..ServerConfig::default()
    });

    let trace = zipfish(19, 2_000);
    let opts = SubmitOptions {
        frame_refs: 50,
        retry: eager_retry(),
        chaos_drop_points: vec![7, 21],
        ..SubmitOptions::default()
    };
    let reply = submit(&addr, &trace, &opts).unwrap();
    assert_eq!(reply.histogram, offline(&trace));
    assert_eq!(reply.retry.resumes, 2);

    // An idle session still stalls out on the fallback poller's clock.
    let mut s = TcpStream::connect(&addr).unwrap();
    write_msg(&mut s, MsgKind::Hello, &hello_payload()).unwrap();
    write_msg(&mut s, MsgKind::Config, b"reply=binary\nencoding=raw\n").unwrap();
    let accept = read_msg(&mut s).unwrap();
    assert_eq!(accept.kind, MsgKind::Accept);
    let msg = read_msg(&mut s).unwrap();
    assert_eq!(msg.kind, MsgKind::Error);
    let err = ErrorFrame::from_payload(&msg.payload).unwrap();
    assert_eq!(err.class, ErrorClass::Stall);

    stop.shutdown();
    let metrics = join.join().unwrap();
    assert_eq!(metrics.sessions_completed, 1);
    assert_eq!(metrics.sessions_resumed, 2);
    assert_eq!(
        metrics.sessions_resumed + metrics.orphans_expired,
        metrics.sessions_orphaned
    );
}

//! Thread-aware shared-cache analysis.
//!
//! [`crate::shared`] models *co-running programs*: separate address spaces,
//! disambiguated by tagging. This module models *threads of one program*:
//! a single address space where the same location touched by two threads is
//! true sharing — tagging would destroy exactly the effect under study, so
//! thread identity travels in a side array ([`ThreadedTrace`]) instead of
//! in the address bits.
//!
//! The pipeline:
//!
//! 1. Take per-thread reference streams (from a thread-tagged v2.2 trace or
//!    from the multi-threaded kernels in `parda-pinsim`) and interleave
//!    them under an explicit [`InterleaveModel`] — or analyze an
//!    as-recorded interleaving directly.
//! 2. [`analyze_concurrent`] runs one reuse-distance pass over the shared
//!    stream, attributing every distance to the issuing thread, and solo
//!    passes over each thread's private stream.
//! 3. [`recommend_partition`] feeds the solo MRCs into
//!    [`crate::shared::optimal_partition`] to recommend a static partition
//!    of the shared cache.
//!
//! The shared histogram is exact: its hit count at capacity `C` equals a
//! fully-associative LRU simulation of the interleaved trace (validated in
//! the tests against `parda-cachesim`).

use crate::seq::{analyze_sequential, analyze_with};
use crate::shared::optimal_partition;
use parda_hash::{FxHashMap, FxHashSet};
use parda_hist::ReuseHistogram;
use parda_trace::{Addr, ThreadedTrace, Tid};
use parda_tree::ReuseTree;
use std::fmt;
use std::str::FromStr;

/// How per-thread streams are merged into the shared reference stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterleaveModel {
    /// Threads issue `burst` consecutive references each in fixed rotation
    /// (thread 0, 1, …, 0, 1, …). Exhausted threads drop out of the round.
    RoundRobin {
        /// References issued per thread per turn.
        burst: usize,
    },
    /// Each step picks the issuing thread at random, weighted by relative
    /// issue rate. Deterministic for a given `seed` (splitmix64).
    Probabilistic {
        /// Relative issue rate per thread; must match the thread count.
        /// Empty means uniform.
        weights: Vec<u32>,
        /// PRNG seed.
        seed: u64,
    },
}

impl InterleaveModel {
    /// Round-robin with a one-reference burst — the default lockstep model.
    pub fn round_robin() -> Self {
        InterleaveModel::RoundRobin { burst: 1 }
    }
}

impl fmt::Display for InterleaveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterleaveModel::RoundRobin { burst } => write!(f, "rr:{burst}"),
            InterleaveModel::Probabilistic { weights, seed } => {
                write!(f, "prob")?;
                if !weights.is_empty() {
                    let w: Vec<String> = weights.iter().map(|w| w.to_string()).collect();
                    write!(f, ":{}", w.join(","))?;
                }
                write!(f, "@{seed}")
            }
        }
    }
}

impl FromStr for InterleaveModel {
    type Err = String;

    /// Parse `rr`, `rr:<burst>`, `prob`, `prob:<w1,w2,..>`, with an
    /// optional `@<seed>` suffix on `prob`.
    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("rr") {
            let burst = match rest.strip_prefix(':') {
                None if rest.is_empty() => 1,
                Some(b) => b
                    .parse::<usize>()
                    .ok()
                    .filter(|&b| b > 0)
                    .ok_or_else(|| format!("bad round-robin burst {b:?}"))?,
                _ => return Err(format!("bad interleave model {s:?}")),
            };
            return Ok(InterleaveModel::RoundRobin { burst });
        }
        if let Some(rest) = s.strip_prefix("prob") {
            let (spec, seed) = match rest.split_once('@') {
                Some((spec, seed)) => (
                    spec,
                    seed.parse::<u64>()
                        .map_err(|_| format!("bad seed {seed:?}"))?,
                ),
                None => (rest, 0),
            };
            let weights = match spec.strip_prefix(':') {
                None if spec.is_empty() => Vec::new(),
                Some(list) => list
                    .split(',')
                    .map(|w| {
                        w.parse::<u32>()
                            .ok()
                            .filter(|&w| w > 0)
                            .ok_or_else(|| format!("bad weight {w:?}"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err(format!("bad interleave model {s:?}")),
            };
            return Ok(InterleaveModel::Probabilistic { weights, seed });
        }
        Err(format!(
            "unknown interleave model {s:?} (expected rr[:burst] or prob[:w,..][@seed])"
        ))
    }
}

/// splitmix64: tiny, deterministic, good enough to draw issuing threads.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Merge per-thread streams into one thread-tagged shared stream under the
/// given model. Thread `i` of `traces` becomes TID `i`. Unlike
/// [`crate::shared::interleave`], addresses are **not** tagged: the streams
/// share one address space, and cross-thread reuse is the point.
pub fn interleave_threads(traces: &[&[Addr]], model: &InterleaveModel) -> ThreadedTrace {
    assert!(!traces.is_empty(), "need at least one thread");
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = ThreadedTrace::new();
    let mut cursors = vec![0usize; traces.len()];
    match model {
        InterleaveModel::RoundRobin { burst } => {
            assert!(*burst > 0, "burst must be positive");
            while out.len() < total {
                for (t, trace) in traces.iter().enumerate() {
                    for _ in 0..*burst {
                        if cursors[t] < trace.len() {
                            out.push(t as Tid, trace[cursors[t]]);
                            cursors[t] += 1;
                        }
                    }
                }
            }
        }
        InterleaveModel::Probabilistic { weights, seed } => {
            let weights: Vec<u64> = if weights.is_empty() {
                vec![1; traces.len()]
            } else {
                assert_eq!(weights.len(), traces.len(), "one weight per thread");
                weights.iter().map(|&w| u64::from(w)).collect()
            };
            assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
            let mut state = *seed;
            let mut live_weight: u64 = weights
                .iter()
                .zip(traces)
                .filter(|(_, t)| !t.is_empty())
                .map(|(&w, _)| w)
                .sum();
            while out.len() < total {
                // Draw a thread proportionally to weight among the
                // not-yet-exhausted streams.
                let mut pick = splitmix64(&mut state) % live_weight;
                for (t, trace) in traces.iter().enumerate() {
                    if cursors[t] >= trace.len() {
                        continue;
                    }
                    if pick < weights[t] {
                        out.push(t as Tid, trace[cursors[t]]);
                        cursors[t] += 1;
                        if cursors[t] == trace.len() {
                            live_weight -= weights[t];
                        }
                        break;
                    }
                    pick -= weights[t];
                }
            }
        }
    }
    out
}

/// Result of [`analyze_concurrent`]: reuse-distance histograms for the
/// shared cache and per thread, plus sharing metrics. Thread order follows
/// [`ThreadedTrace::thread_ids`] (sorted by TID).
#[derive(Clone, Debug)]
pub struct ConcurrentAnalysis {
    /// Thread IDs present, sorted; index `i` everywhere below is thread
    /// `thread_ids[i]`.
    pub thread_ids: Vec<Tid>,
    /// Shared-stream histogram over the full interleaved trace — exact
    /// fully-associative LRU behaviour of the shared cache.
    pub shared: ReuseHistogram,
    /// Shared-stream distances attributed to the issuing thread
    /// (sums to `shared`).
    pub per_thread_shared: Vec<ReuseHistogram>,
    /// Each thread's solo histogram over its private stream — what the
    /// thread would see with the cache to itself.
    pub per_thread_solo: Vec<ReuseHistogram>,
    /// References issued per thread.
    pub refs_per_thread: Vec<u64>,
    /// Distinct addresses touched by two or more threads (true sharing).
    pub shared_addrs: u64,
    /// Distinct addresses in the whole trace.
    pub distinct_addrs: u64,
}

impl ConcurrentAnalysis {
    /// Fraction of distinct addresses touched by more than one thread.
    pub fn sharing_ratio(&self) -> f64 {
        if self.distinct_addrs == 0 {
            0.0
        } else {
            self.shared_addrs as f64 / self.distinct_addrs as f64
        }
    }
}

/// Analyze a thread-tagged shared reference stream: one exact
/// reuse-distance pass over the interleaving with per-thread attribution,
/// plus a solo pass per thread.
pub fn analyze_concurrent<T: ReuseTree + Default>(trace: &ThreadedTrace) -> ConcurrentAnalysis {
    let thread_ids = trace.thread_ids();
    let mut slot: FxHashMap<Tid, usize> = FxHashMap::default();
    for (i, &tid) in thread_ids.iter().enumerate() {
        slot.insert(tid, i);
    }
    let tids = trace.tids();
    let mut per_thread_shared = vec![ReuseHistogram::new(); thread_ids.len()];
    let shared = analyze_with::<T, _>(trace.addrs(), |i, _, distance| {
        per_thread_shared[slot[&tids[i]]].record(distance);
    });

    let mut per_thread_solo = Vec::with_capacity(thread_ids.len());
    let mut refs_per_thread = Vec::with_capacity(thread_ids.len());
    for (_, solo) in trace.per_thread() {
        refs_per_thread.push(solo.len() as u64);
        per_thread_solo.push(analyze_sequential::<T>(solo.as_slice(), None));
    }

    let mut owner: FxHashMap<Addr, Tid> = FxHashMap::default();
    let mut shared_set: FxHashSet<Addr> = FxHashSet::default();
    for (&tid, &addr) in tids.iter().zip(trace.addrs()) {
        match owner.get(&addr) {
            Some(&first) if first != tid => {
                shared_set.insert(addr);
            }
            Some(_) => {}
            None => {
                owner.insert(addr, tid);
            }
        }
    }

    ConcurrentAnalysis {
        thread_ids,
        shared,
        per_thread_shared,
        per_thread_solo,
        refs_per_thread,
        shared_addrs: shared_set.len() as u64,
        distinct_addrs: owner.len() as u64,
    }
}

/// A recommended static partition of a shared cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Total shared-cache capacity (lines).
    pub capacity: u64,
    /// Allocation granularity (lines).
    pub granularity: u64,
    /// Lines allocated to each thread, in `thread_ids` order.
    pub allocation: Vec<u64>,
    /// Total predicted misses under the recommended partition.
    pub predicted_misses: u64,
}

/// Recommend a static partition of `capacity` cache lines among the
/// threads, minimizing total predicted misses from their solo MRCs
/// (the Soft-OLP/UCP decision from [`crate::shared::optimal_partition`]).
pub fn recommend_partition(
    per_thread_solo: &[ReuseHistogram],
    capacity: u64,
    granularity: u64,
) -> PartitionPlan {
    let refs: Vec<&ReuseHistogram> = per_thread_solo.iter().collect();
    let (allocation, predicted_misses) = optimal_partition(&refs, capacity, granularity);
    PartitionPlan {
        capacity,
        granularity,
        allocation,
        predicted_misses,
    }
}

/// Default partition granularity for a capacity: 1/64th of the cache,
/// floored at one line. The CLI and the server both resolve an omitted
/// granularity through here, so their recommendations agree.
pub fn default_granularity(capacity: u64) -> u64 {
    (capacity / 64).max(1)
}

/// [`analyze_concurrent`] dispatched over a runtime [`parda_tree::TreeKind`].
pub fn analyze_concurrent_kind(
    trace: &ThreadedTrace,
    kind: parda_tree::TreeKind,
) -> ConcurrentAnalysis {
    match kind {
        parda_tree::TreeKind::Splay => analyze_concurrent::<parda_tree::SplayTree>(trace),
        parda_tree::TreeKind::Avl => analyze_concurrent::<parda_tree::AvlTree>(trace),
        parda_tree::TreeKind::Treap => analyze_concurrent::<parda_tree::Treap>(trace),
        parda_tree::TreeKind::Vector => analyze_concurrent::<parda_tree::VectorTree>(trace),
    }
}

/// Fold an analysis (and optionally a partition plan) into the
/// observability summary carried by [`parda_obs::Report::shared`]. Both
/// the offline `parda partition` path and the server's tagged sessions
/// build their reply through here, which is what makes the two
/// recommendations byte-comparable.
pub fn shared_metrics(
    analysis: &ConcurrentAnalysis,
    model: &str,
    plan: Option<&PartitionPlan>,
) -> parda_obs::SharedMetrics {
    parda_obs::SharedMetrics {
        threads: analysis.thread_ids.len(),
        per_thread_refs: analysis.refs_per_thread.clone(),
        shared_addrs: analysis.shared_addrs,
        sharing_ratio: analysis.sharing_ratio(),
        model: model.to_string(),
        capacity: plan.map_or(0, |p| p.capacity),
        granularity: plan.map_or(0, |p| p.granularity),
        allocation: plan.map_or_else(Vec::new, |p| p.allocation.clone()),
        predicted_misses: plan.map_or(0, |p| p.predicted_misses),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_cachesim::LruCache;
    use parda_tree::SplayTree;
    use proptest::prelude::*;

    fn lru_hits(trace: &[Addr], capacity: usize) -> u64 {
        LruCache::new(capacity).run_trace(trace).hits
    }

    fn assert_matches_cachesim(trace: &ThreadedTrace, capacities: &[u64]) {
        let analysis = analyze_concurrent::<SplayTree>(trace);
        for &c in capacities {
            assert_eq!(
                analysis.shared.hit_count(c),
                lru_hits(trace.addrs(), c as usize),
                "capacity {c}"
            );
        }
        // Attribution partitions the shared histogram.
        let mut sum = ReuseHistogram::new();
        for h in &analysis.per_thread_shared {
            sum.merge(h);
        }
        assert_eq!(sum, analysis.shared);
    }

    #[test]
    fn model_strings_round_trip() {
        for s in ["rr:1", "rr:8", "prob@0", "prob:3,1@42"] {
            let m: InterleaveModel = s.parse().unwrap();
            assert_eq!(m.to_string(), s);
        }
        assert_eq!(
            "rr".parse::<InterleaveModel>().unwrap(),
            InterleaveModel::round_robin()
        );
        assert_eq!(
            "prob".parse::<InterleaveModel>().unwrap(),
            InterleaveModel::Probabilistic {
                weights: vec![],
                seed: 0
            }
        );
        for bad in ["", "rr:0", "rr:x", "prob:0", "prob:1,@2", "zipper"] {
            assert!(bad.parse::<InterleaveModel>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn round_robin_interleaves_in_rotation() {
        let a = [1u64, 2, 3];
        let b = [10u64, 20];
        let t = interleave_threads(&[&a, &b], &InterleaveModel::round_robin());
        assert_eq!(t.addrs(), &[1, 10, 2, 20, 3]);
        assert_eq!(t.tids(), &[0, 1, 0, 1, 0]);
    }

    #[test]
    fn probabilistic_is_deterministic_and_rate_weighted() {
        let a: Vec<u64> = (0..3000).collect();
        let b: Vec<u64> = (10_000..13_000).collect();
        let model = InterleaveModel::Probabilistic {
            weights: vec![3, 1],
            seed: 7,
        };
        let x = interleave_threads(&[&a, &b], &model);
        let y = interleave_threads(&[&a, &b], &model);
        assert_eq!(x, y);
        assert_eq!(x.len(), 6000);
        // Thread 0 issues ~3× as fast, so it dominates the prefix.
        let head = &x.tids()[..1000];
        let t0 = head.iter().filter(|&&t| t == 0).count();
        assert!(
            (650..=850).contains(&t0),
            "expected ~750 thread-0 refs in the first 1000, got {t0}"
        );
    }

    #[test]
    fn concurrent_matches_cachesim_on_mt_kernels() {
        for false_sharing in [false, true] {
            let stencil = parda_pinsim::collect_mt_trace(parda_pinsim::MtStencil2D::new(
                16,
                2,
                3,
                false_sharing,
            ));
            assert_matches_cachesim(&stencil.interleaved, &[64, 512, 2048]);

            let matmul =
                parda_pinsim::collect_mt_trace(parda_pinsim::MtMatMul::new(10, 2, false_sharing));
            assert_matches_cachesim(&matmul.interleaved, &[64, 512, 2048]);
        }
    }

    #[test]
    fn concurrent_matches_cachesim_on_modeled_interleavings() {
        let mt = parda_pinsim::collect_mt_trace(parda_pinsim::MtStencil2D::new(14, 2, 2, true));
        let streams: Vec<&[Addr]> = mt.per_thread.iter().map(|(_, t)| t.as_slice()).collect();
        for model in [
            InterleaveModel::RoundRobin { burst: 4 },
            InterleaveModel::Probabilistic {
                weights: vec![2, 1],
                seed: 11,
            },
        ] {
            let t = interleave_threads(&streams, &model);
            assert_matches_cachesim(&t, &[64, 512, 2048]);
        }
    }

    #[test]
    fn sharing_metrics_tell_kernels_apart() {
        let shared = parda_pinsim::collect_mt_trace(parda_pinsim::MtMatMul::new(8, 2, false));
        let a = analyze_concurrent::<SplayTree>(&shared.interleaved);
        assert!(a.shared_addrs >= 64, "B operand is fully shared");
        assert!(a.sharing_ratio() > 0.0);

        // Two disjoint solo streams: nothing shared.
        let a0: Vec<u64> = (0..500).collect();
        let a1: Vec<u64> = (10_000..10_500).collect();
        let t = interleave_threads(&[&a0, &a1], &InterleaveModel::round_robin());
        let a = analyze_concurrent::<SplayTree>(&t);
        assert_eq!(a.shared_addrs, 0);
        assert_eq!(a.sharing_ratio(), 0.0);
        assert_eq!(a.refs_per_thread, vec![500, 500]);
    }

    #[test]
    fn recommend_partition_wraps_optimal_partition() {
        // Thread 0 loops over 64 lines, thread 1 over 1024: the plan gives
        // each its working set.
        let t0: Vec<u64> = (0..6400).map(|i| i % 64).collect();
        let t1: Vec<u64> = (0..10_240).map(|i| 100_000 + i % 1024).collect();
        let interleaved = interleave_threads(&[&t0, &t1], &InterleaveModel::round_robin());
        let analysis = analyze_concurrent::<SplayTree>(&interleaved);
        let plan = recommend_partition(&analysis.per_thread_solo, 1088, 64);
        assert_eq!(plan.allocation, vec![64, 1024]);
        assert_eq!(plan.predicted_misses, 64 + 1024);
        assert_eq!(plan.capacity, 1088);
    }

    proptest! {
        #[test]
        fn concurrent_matches_cachesim_on_random_threads(
            streams in collection::vec(collection::vec(0u64..200, 1..120), 1..5),
            burst in 1usize..4,
            capacity in prop_oneof![Just(4u64), Just(16), Just(64), Just(256)],
        ) {
            let refs: Vec<&[Addr]> = streams.iter().map(|s| s.as_slice()).collect();
            let t = interleave_threads(&refs, &InterleaveModel::RoundRobin { burst });
            let analysis = analyze_concurrent::<SplayTree>(&t);
            prop_assert_eq!(
                analysis.shared.hit_count(capacity),
                lru_hits(t.addrs(), capacity as usize)
            );
            let total: u64 = analysis.refs_per_thread.iter().sum();
            prop_assert_eq!(total, t.len() as u64);
        }
    }
}

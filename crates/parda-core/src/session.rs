//! Resumable per-session analysis: [`SessionAnalysis`].
//!
//! Daemon-style hosts (the `parda-server` shards) feed decoded frames into
//! a session as they arrive off the wire and collect the result at FIN —
//! no parked analysis thread, no bounded pipe. The driver is a small state
//! machine:
//!
//! * [`SessionAnalysis::feed`] absorbs one frame and answers
//!   [`SessionStep::NeedMore`] (the frame was analyzed or sketched
//!   immediately; per-session state stays bounded) or
//!   [`SessionStep::Pending`] (the frame was buffered for a finish-time
//!   engine such as the parallel cascade).
//! * [`SessionAnalysis::finish`] runs any deferred work and returns the
//!   `Done` payload: the histogram plus the optional [`Report`].
//!
//! Which internal engine drives the session follows the builder:
//!
//! * Approximate modes ([`crate::approx::ApproxMode`] other than `Exact`)
//!   stream through the constant-space [`ApproxSketch`] — `feed` is O(1)
//!   amortized and per-session memory is O(sketch) regardless of
//!   footprint.
//! * [`Mode::Seq`] and [`Mode::Phased`] stream through the incremental
//!   [`SequentialAnalyzer`] (Algorithm 1 driven frame by frame).
//! * Everything else (notably [`Mode::Threads`], the parallel cascade)
//!   buffers references and runs the builder's engine at `finish` via
//!   [`Analysis::run_faulted`], so panic isolation and rank rescue apply
//!   unchanged.
//!
//! Every path is bit-identical to the equivalent one-shot
//! [`Analysis::run`] / [`Analysis::run_stream`] regardless of how the
//! trace is split into frames (unit-tested below).

use crate::analysis::{Analysis, Mode};
use crate::approx::ApproxSketch;
use crate::error::PardaError;
use crate::seq::SequentialAnalyzer;
use parda_hist::ReuseHistogram;
use parda_obs::{RankMetrics, Report, Stopwatch};
use parda_trace::Addr;
use parda_tree::{AvlTree, SplayTree, Treap, TreeKind, VectorTree};

/// What [`SessionAnalysis::feed`] did with a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStep {
    /// The frame was consumed by an incremental engine (sequential tree or
    /// sketch); per-session state stays bounded. Feed more or `finish`.
    NeedMore,
    /// The frame was buffered for a finish-time engine (parallel cascade);
    /// the analysis itself is pending until `finish`.
    Pending,
}

/// Target references per rank when [`SessionAnalysis::auto_ranks`] picks
/// the cascade width at `finish` (measured sweet spot for the batched
/// infinity-absorb cascade: small, cache-resident per-rank trees).
const AUTO_RANK_CHUNK: u64 = 32_768;

/// Rank-count ceiling for [`SessionAnalysis::auto_ranks`].
const AUTO_RANK_MAX: u64 = 64;

/// A [`SequentialAnalyzer`] erased over the runtime [`TreeKind`].
enum ErasedSeq {
    Splay(SequentialAnalyzer<SplayTree>),
    Avl(SequentialAnalyzer<AvlTree>),
    Treap(SequentialAnalyzer<Treap>),
    Vector(SequentialAnalyzer<VectorTree>),
}

impl ErasedSeq {
    fn new(kind: TreeKind, bound: Option<u64>) -> Self {
        match kind {
            TreeKind::Splay => ErasedSeq::Splay(SequentialAnalyzer::new(bound)),
            TreeKind::Avl => ErasedSeq::Avl(SequentialAnalyzer::new(bound)),
            TreeKind::Treap => ErasedSeq::Treap(SequentialAnalyzer::new(bound)),
            TreeKind::Vector => ErasedSeq::Vector(SequentialAnalyzer::new(bound)),
        }
    }

    fn process_all(&mut self, addrs: &[Addr]) {
        match self {
            ErasedSeq::Splay(a) => a.process_all(addrs),
            ErasedSeq::Avl(a) => a.process_all(addrs),
            ErasedSeq::Treap(a) => a.process_all(addrs),
            ErasedSeq::Vector(a) => a.process_all(addrs),
        }
    }

    fn metrics(&self) -> parda_obs::EngineMetrics {
        match self {
            ErasedSeq::Splay(a) => a.metrics().clone(),
            ErasedSeq::Avl(a) => a.metrics().clone(),
            ErasedSeq::Treap(a) => a.metrics().clone(),
            ErasedSeq::Vector(a) => a.metrics().clone(),
        }
    }

    fn finish(self) -> ReuseHistogram {
        match self {
            ErasedSeq::Splay(a) => a.finish(),
            ErasedSeq::Avl(a) => a.finish(),
            ErasedSeq::Treap(a) => a.finish(),
            ErasedSeq::Vector(a) => a.finish(),
        }
    }
}

enum State {
    Sketch(ApproxSketch),
    Incremental(ErasedSeq),
    Collect(Vec<Addr>),
}

/// Resumable analysis session (see the module docs).
pub struct SessionAnalysis {
    builder: Analysis,
    state: State,
    refs: u64,
    auto_ranks: bool,
    sw: Stopwatch,
    /// Wall time spent detached from any transport (parked in a host's
    /// orphan pool between a disconnect and a resume); excluded from the
    /// report's `total_ns` so session timing reflects analysis, not the
    /// client's reconnect latency.
    detached_ns: u64,
    detached_at: Option<std::time::Instant>,
    resumes: u32,
}

impl Analysis {
    /// Begin a resumable session driven by this builder's configuration.
    pub fn session(&self) -> SessionAnalysis {
        let state = if !self.approx_mode().is_exact() {
            State::Sketch(ApproxSketch::new(self.approx_mode()))
        } else {
            match self.mode_kind() {
                Mode::Seq | Mode::Phased { .. } => {
                    State::Incremental(ErasedSeq::new(self.tree_kind(), self.bound_opt()))
                }
                _ => State::Collect(Vec::new()),
            }
        };
        SessionAnalysis {
            builder: self.clone(),
            state,
            refs: 0,
            auto_ranks: false,
            sw: Stopwatch::start(),
            detached_ns: 0,
            detached_at: None,
            resumes: 0,
        }
    }
}

impl SessionAnalysis {
    /// Let `finish` pick the cascade rank count from the trace length
    /// (≈ one rank per 32768 references, capped at
    /// 64) when the builder left ranks unset. Only affects
    /// the buffered finish-time engines; histograms are rank-count
    /// invariant (property-tested), so this is purely a speed knob.
    pub fn auto_ranks(mut self, on: bool) -> Self {
        self.auto_ranks = on;
        self
    }

    /// Absorb one frame of decoded references.
    pub fn feed(&mut self, addrs: &[Addr]) -> SessionStep {
        self.refs += addrs.len() as u64;
        match &mut self.state {
            State::Sketch(sketch) => {
                sketch.update(addrs);
                SessionStep::NeedMore
            }
            State::Incremental(seq) => {
                seq.process_all(addrs);
                SessionStep::NeedMore
            }
            State::Collect(buf) => {
                buf.extend_from_slice(addrs);
                SessionStep::Pending
            }
        }
    }

    /// References fed so far.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Mark the session as detached from its transport: the clock on
    /// "time spent analyzing" pauses until [`Self::reattach`]. Idempotent
    /// — a second detach without a reattach keeps the earlier mark.
    pub fn detach(&mut self) {
        if self.detached_at.is_none() {
            self.detached_at = Some(std::time::Instant::now());
        }
    }

    /// Reattach a detached session to a new transport, folding the time
    /// spent parked into the excluded-detached tally. No-op if the
    /// session was never detached.
    pub fn reattach(&mut self) {
        if let Some(at) = self.detached_at.take() {
            self.detached_ns += at.elapsed().as_nanos() as u64;
            self.resumes += 1;
        }
    }

    /// Times this session was reattached after a disconnect.
    pub fn resumes(&self) -> u32 {
        self.resumes
    }

    /// Wall time the session's stopwatch owes to analysis, not to sitting
    /// detached waiting for a reconnect.
    fn attached_ns(&self) -> u64 {
        let mut detached = self.detached_ns;
        if let Some(at) = &self.detached_at {
            detached += at.elapsed().as_nanos() as u64;
        }
        self.sw.ns().saturating_sub(detached)
    }

    /// Whether the session streams through a constant-space sketch.
    pub fn is_sketch(&self) -> bool {
        matches!(self.state, State::Sketch(_))
    }

    /// Estimated bytes of per-session analysis state held right now:
    /// exact sketch accounting for approximate sessions, buffer capacity
    /// for the collect path, and a per-live-address estimate (hash entry +
    /// tree node) for the incremental tree path.
    pub fn state_bytes(&self) -> u64 {
        match &self.state {
            State::Sketch(sketch) => sketch.memory_bytes(),
            State::Collect(buf) => (buf.capacity() * std::mem::size_of::<Addr>()) as u64,
            State::Incremental(seq) => seq.metrics().live_hwm * 64,
        }
    }

    /// Run any deferred work and return the result — the `Done` step of
    /// the `feed → Pending | NeedMore` state machine.
    ///
    /// Errors only surface from the buffered [`Analysis::run_faulted`]
    /// path (an unrescued rank panic or watchdog stall under the
    /// builder's [`crate::FaultPolicy`]).
    pub fn finish(self) -> Result<(ReuseHistogram, Option<Report>), PardaError> {
        let attached_ns = self.attached_ns();
        match self.state {
            State::Sketch(sketch) => {
                Ok(self.builder.finish_approx(&sketch, self.refs, attached_ns))
            }
            State::Incremental(seq) => {
                let total_ns = attached_ns;
                let refs = self.refs;
                let metrics = seq.metrics();
                let hist = seq.finish();
                if !self.builder.stats_on() {
                    return Ok((hist, None));
                }
                let report = Report {
                    mode: "session-stream".into(),
                    tree: self.builder.tree_kind().name().into(),
                    ranks: 1,
                    bound: self.builder.bound_opt(),
                    trace_refs: refs,
                    total_ns,
                    per_rank: vec![RankMetrics {
                        rank: 0,
                        refs,
                        chunk_ns: total_ns,
                        engine: metrics,
                        ..Default::default()
                    }],
                    stream: None,
                    phased: None,
                    recovery: None,
                    approx: None,
                    shared: None,
                };
                Ok((hist, Some(report)))
            }
            State::Collect(buf) => {
                let mut builder = self.builder;
                if self.auto_ranks && builder.ranks_opt().is_none() {
                    let ranks =
                        (buf.len() as u64 / AUTO_RANK_CHUNK).clamp(1, AUTO_RANK_MAX) as usize;
                    builder = builder.ranks(ranks);
                }
                builder.run_faulted(&buf)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::ApproxMode;
    use proptest::prelude::*;

    fn zipfish(n: usize) -> Vec<Addr> {
        (0..n as u64).map(|i| (i * 131) % 977).collect()
    }

    /// Feed a trace in ragged frames.
    fn feed_frames(session: &mut SessionAnalysis, trace: &[Addr]) {
        for chunk in trace.chunks(237) {
            session.feed(chunk);
        }
    }

    #[test]
    fn incremental_matches_one_shot_for_every_tree() {
        let trace = zipfish(5_000);
        for kind in [
            TreeKind::Splay,
            TreeKind::Avl,
            TreeKind::Treap,
            TreeKind::Vector,
        ] {
            let builder = Analysis::new().tree(kind).mode(Mode::Seq).stats(true);
            let (expect, _) = builder.run(&trace);
            let mut session = builder.session();
            feed_frames(&mut session, &trace);
            assert_eq!(session.refs(), 5_000);
            assert!(!session.is_sketch());
            let (hist, report) = session.finish().unwrap();
            assert_eq!(hist, expect, "{kind:?}");
            let report = report.unwrap();
            assert_eq!(report.mode, "session-stream");
            assert_eq!(report.trace_refs, 5_000);
        }
    }

    #[test]
    fn phased_mode_streams_incrementally() {
        let trace = zipfish(3_000);
        let builder = Analysis::new().mode(Mode::Phased {
            chunk: 64,
            reduction: crate::phased::Reduction::ShipToRankZero,
        });
        let (expect, _) = builder.run(&trace);
        let mut session = builder.session();
        assert_eq!(session.feed(&trace[..100]), SessionStep::NeedMore);
        feed_frames(&mut session, &trace[100..]);
        let (hist, _) = session.finish().unwrap();
        assert_eq!(hist, expect);
    }

    #[test]
    fn collect_path_runs_the_cascade_at_finish() {
        let trace = zipfish(4_000);
        let builder = Analysis::new().ranks(4).mode(Mode::Threads).stats(true);
        let (expect, _) = builder.run(&trace);
        let mut session = builder.session();
        assert_eq!(session.feed(&trace[..1_000]), SessionStep::Pending);
        feed_frames(&mut session, &trace[1_000..]);
        let (hist, report) = session.finish().unwrap();
        assert_eq!(hist, expect);
        let report = report.unwrap();
        assert_eq!(report.mode, "parda-threads");
        assert!(report
            .recovery
            .expect("faulted run attaches recovery")
            .is_clean());
    }

    #[test]
    fn auto_ranks_is_bit_identical_and_bounded() {
        let trace = zipfish(100_000);
        let builder = Analysis::new().mode(Mode::Threads);
        let (expect, _) = builder.run(&trace);
        let mut session = builder.session().auto_ranks(true);
        feed_frames(&mut session, &trace);
        let (hist, _) = session.finish().unwrap();
        assert_eq!(hist, expect, "rank count never changes the histogram");

        // Tiny sessions collapse to a single rank.
        let builder = Analysis::new().mode(Mode::Threads);
        let mut small = builder.session().auto_ranks(true);
        small.feed(&trace[..100]);
        let (hist, _) = small.finish().unwrap();
        assert_eq!(
            hist,
            Analysis::new().mode(Mode::Threads).run(&trace[..100]).0
        );
    }

    #[test]
    fn sketch_sessions_are_constant_space() {
        let trace = zipfish(50_000);
        for mode in [
            ApproxMode::ShardsFixedRate { rate: 0.25 },
            ApproxMode::ShardsFixedSize { s_max: 512 },
            ApproxMode::Aet { rate: 0.5 },
        ] {
            let builder = Analysis::new().approx(mode).stats(true);
            let (expect, _) = builder.run(&trace);
            let mut session = builder.session();
            assert!(session.is_sketch());
            feed_frames(&mut session, &trace);
            let bytes = session.state_bytes();
            assert!(bytes > 0, "{mode}: sketch accounting is live");
            assert!(
                bytes < 4 << 20,
                "{mode}: sketch stays small ({bytes} bytes)"
            );
            let (hist, report) = session.finish().unwrap();
            assert_eq!(hist, expect, "{mode}: frame boundaries never matter");
            assert!(report.unwrap().approx.is_some());
        }
    }

    #[test]
    fn detached_time_is_excluded_from_the_report_clock() {
        let trace = zipfish(2_000);
        let builder = Analysis::new().mode(Mode::Seq).stats(true);
        let mut session = builder.session();
        session.feed(&trace[..1_000]);
        session.detach();
        std::thread::sleep(std::time::Duration::from_millis(50));
        session.reattach();
        assert_eq!(session.resumes(), 1);
        session.feed(&trace[1_000..]);
        let (hist, report) = session.finish().unwrap();
        assert_eq!(hist, builder.run(&trace).0, "detach never changes the math");
        let total_ns = report.unwrap().total_ns;
        assert!(
            total_ns < 40_000_000,
            "50ms parked must not count as analysis time (got {total_ns}ns)"
        );

        // detach is idempotent; reattach without detach is a no-op.
        let mut s = builder.session();
        s.reattach();
        assert_eq!(s.resumes(), 0);
        s.detach();
        s.detach();
        s.reattach();
        assert_eq!(s.resumes(), 1);
    }

    #[test]
    fn state_bytes_tracks_collect_buffer() {
        let trace = zipfish(10_000);
        let mut session = Analysis::new().mode(Mode::Threads).session();
        session.feed(&trace);
        assert!(session.state_bytes() >= (10_000 * std::mem::size_of::<Addr>()) as u64);
    }

    proptest! {
        /// Frame boundaries never change any engine's histogram.
        #[test]
        fn framing_invariance(
            trace in proptest::collection::vec(0u64..128, 0..600),
            cut in 1usize..600,
        ) {
            for builder in [
                Analysis::new().mode(Mode::Seq),
                Analysis::new().ranks(3).mode(Mode::Threads),
                Analysis::new().approx(ApproxMode::ShardsFixedRate { rate: 0.5 }),
            ] {
                let (expect, _) = builder.run(&trace);
                let mut session = builder.session();
                let cut = cut.min(trace.len());
                session.feed(&trace[..cut]);
                session.feed(&trace[cut..]);
                let (hist, _) = session.finish().unwrap();
                prop_assert_eq!(hist, expect);
            }
        }
    }
}

//! Shared-cache analysis: co-running programs and cache partitioning.
//!
//! The paper motivates online reuse-distance analysis with "cache sharing
//! and partitioning" (Petoumenos et al.; Lu et al.). Two primitives cover
//! those applications:
//!
//! * [`analyze_corun`] — interleave the traces of co-running programs into
//!   one shared reference stream (each program in its own address space)
//!   and attribute the shared-cache reuse distances back per program. This
//!   answers "what does sharing do to each program?" — distances inflate
//!   because the co-runners' distinct addresses intervene.
//! * [`optimal_partition`] — given per-program *solo* miss-ratio curves,
//!   find the way-partition of a shared cache that minimizes total misses
//!   (dynamic program over allocations, the Soft-OLP/UCP decision).

use crate::seq::analyze_with;
use parda_hist::ReuseHistogram;
use parda_trace::Addr;
use parda_tree::ReuseTree;

/// Result of [`analyze_corun`].
#[derive(Clone, Debug)]
pub struct CorunAnalysis {
    /// Shared-stream histogram per program (distances measured over the
    /// interleaved trace).
    pub per_program: Vec<ReuseHistogram>,
    /// The combined shared-stream histogram.
    pub combined: ReuseHistogram,
}

/// Interleave program traces round-robin with the given per-program burst
/// weights (program `i` issues `weights[i]` references per round, matching
/// relative issue rates). Address spaces are disambiguated by tagging the
/// top byte with the program index, mirroring distinct processes.
pub fn interleave(traces: &[&[Addr]], weights: &[usize]) -> Vec<Addr> {
    assert_eq!(traces.len(), weights.len(), "one weight per trace");
    assert!(traces.len() < 256, "tag byte limits co-runners to 255");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    while out.len() < total {
        let mut progressed = false;
        for (i, trace) in traces.iter().enumerate() {
            for _ in 0..weights[i] {
                if cursors[i] < trace.len() {
                    out.push(tag(trace[cursors[i]], i));
                    cursors[i] += 1;
                    progressed = true;
                }
            }
        }
        debug_assert!(progressed, "round made no progress");
    }
    out
}

#[inline]
fn tag(addr: Addr, program: usize) -> Addr {
    // Addresses carrying a non-zero top byte would collide after masking:
    // two distinct input addresses could map to the same tagged address and
    // silently deflate reuse distances. Real (≤ 56-bit virtual) addresses
    // never hit this; catch synthetic ones in debug builds.
    debug_assert!(
        addr >> 56 == 0,
        "address {addr:#x} uses the tag byte; interleave requires < 2^56"
    );
    (addr & 0x00ff_ffff_ffff_ffff) | ((program as u64 + 1) << 56)
}

#[inline]
fn program_of(tagged: Addr) -> usize {
    (tagged >> 56) as usize - 1
}

/// Analyze co-running programs sharing one cache: interleave, run one
/// reuse-distance pass over the shared stream, and split the histogram by
/// issuing program.
pub fn analyze_corun<T: ReuseTree + Default>(
    traces: &[&[Addr]],
    weights: &[usize],
) -> CorunAnalysis {
    let shared = interleave(traces, weights);
    let mut per_program = vec![ReuseHistogram::new(); traces.len()];
    let combined = analyze_with::<T, _>(&shared, |_, addr, distance| {
        per_program[program_of(addr)].record(distance);
    });
    CorunAnalysis {
        per_program,
        combined,
    }
}

/// Optimal static partition of `capacity` cache lines among programs with
/// the given solo MRCs, at `granularity`-line steps. Every program receives
/// at least one granule. Returns `(allocation, total_misses)`.
///
/// Dynamic program over programs × granules: O(k · (C/g)²).
pub fn optimal_partition(
    histograms: &[&ReuseHistogram],
    capacity: u64,
    granularity: u64,
) -> (Vec<u64>, u64) {
    let k = histograms.len();
    assert!(k > 0, "need at least one program");
    assert!(
        granularity > 0 && capacity >= granularity * k as u64,
        "capacity too small"
    );
    let granules = (capacity / granularity) as usize;

    // dp[i][g] = min total misses using programs 0..=i over g granules,
    // each program ≥ 1 granule.
    const INF: u64 = u64::MAX;
    let miss = |i: usize, g: usize| histograms[i].miss_count(g as u64 * granularity);
    let mut dp = vec![vec![INF; granules + 1]; k];
    let mut choice = vec![vec![0usize; granules + 1]; k];
    for g in 1..=granules {
        dp[0][g] = miss(0, g);
        choice[0][g] = g;
    }
    for i in 1..k {
        for g in (i + 1)..=granules {
            for own in 1..=(g - i) {
                let rest = dp[i - 1][g - own];
                if rest == INF {
                    continue;
                }
                let total = rest.saturating_add(miss(i, own));
                if total < dp[i][g] {
                    dp[i][g] = total;
                    choice[i][g] = own;
                }
            }
        }
    }
    // Backtrack.
    let mut alloc = vec![0u64; k];
    let mut g = granules;
    for i in (0..k).rev() {
        let own = choice[i][g];
        alloc[i] = own as u64 * granularity;
        g -= own;
    }
    (alloc, dp[k - 1][granules])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_tree::SplayTree;

    #[test]
    fn interleave_respects_weights_and_order() {
        let a = [1u64, 2, 3, 4];
        let b = [10u64, 20];
        let mixed = interleave(&[&a, &b], &[2, 1]);
        assert_eq!(mixed.len(), 6);
        // Round 1: a a b, round 2: a a b... with tags stripped:
        let untagged: Vec<u64> = mixed.iter().map(|&x| x & 0xffff).collect();
        assert_eq!(untagged, vec![1, 2, 10, 3, 4, 20]);
        // Tags place the streams in distinct address spaces.
        assert_ne!(mixed[0] >> 56, mixed[2] >> 56);
    }

    #[test]
    fn tagging_preserves_distinctness_within_56_bits() {
        // Regression: identical low bits under different programs must stay
        // distinct, and distinct addresses of one program must never merge.
        let a = [0x00ff_ffff_ffff_fff0u64, 0x0000_0000_0000_fff0];
        let b = [0x00ff_ffff_ffff_fff0u64];
        let mixed = interleave(&[&a, &b], &[1, 1]);
        let distinct: std::collections::HashSet<u64> = mixed.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "no tag-byte collisions: {mixed:#x?}");
    }

    #[test]
    #[should_panic(expected = "uses the tag byte")]
    #[cfg(debug_assertions)]
    fn tagging_rejects_top_byte_addresses_in_debug() {
        let a = [0x0100_0000_0000_0000u64];
        let b = [1u64];
        interleave(&[&a, &b], &[1, 1]);
    }

    #[test]
    fn interleave_drains_unequal_lengths() {
        let a = [1u64];
        let b = [10u64, 20, 30, 40];
        let mixed = interleave(&[&a, &b], &[1, 1]);
        assert_eq!(mixed.len(), 5);
    }

    #[test]
    fn corun_inflates_reuse_distances() {
        // Solo: a tight loop over 8 addresses → distances ≤ 7.
        // Co-run with a streaming partner: distances inflate past 8.
        let loop8: Vec<u64> = (0..400).map(|i| i % 8).collect();
        let stream: Vec<u64> = (0..400).map(|i| 1000 + i).collect();
        let solo = analyze_sequential::<SplayTree>(&loop8, None);
        assert_eq!(solo.max_distance(), Some(7));

        let corun = analyze_corun::<SplayTree>(&[&loop8, &stream], &[1, 1]);
        assert_eq!(corun.per_program[0].total(), 400);
        assert!(
            corun.per_program[0].max_distance().unwrap() > 7,
            "sharing must inflate the loop's distances"
        );
        // Combined = sum of parts.
        let mut sum = corun.per_program[0].clone();
        sum.merge(&corun.per_program[1]);
        assert_eq!(sum, corun.combined);
    }

    #[test]
    fn corun_weights_shift_interference() {
        // The more slowly the streaming partner issues, the less it inflates
        // the loop's distances.
        let loop8: Vec<u64> = (0..800).map(|i| i % 8).collect();
        let stream: Vec<u64> = (0..800).map(|i| 1000 + i).collect();
        let fast = analyze_corun::<SplayTree>(&[&loop8, &stream], &[1, 4]);
        let slow = analyze_corun::<SplayTree>(&[&loop8, &stream], &[4, 1]);
        let fast_mean = fast.per_program[0].mean_finite_distance().unwrap();
        let slow_mean = slow.per_program[0].mean_finite_distance().unwrap();
        assert!(
            slow_mean < fast_mean,
            "slower partner must interfere less: {slow_mean} vs {fast_mean}"
        );
    }

    #[test]
    fn optimal_partition_prefers_the_cacheable_program() {
        // Program A: loop over 64 lines (cliff at 64). Program B: loop over
        // 1024 lines (cliff at 1024). With 1088 lines total, the optimum
        // gives each exactly its working set.
        let a_trace: Vec<u64> = (0..6400).map(|i| i % 64).collect();
        let b_trace: Vec<u64> = (0..10240).map(|i| 5000 + i % 1024).collect();
        let ha = analyze_sequential::<SplayTree>(&a_trace, None);
        let hb = analyze_sequential::<SplayTree>(&b_trace, None);
        let (alloc, misses) = optimal_partition(&[&ha, &hb], 1088, 64);
        assert_eq!(alloc, vec![64, 1024]);
        assert_eq!(misses, 64 + 1024, "only cold misses remain");
    }

    #[test]
    fn optimal_partition_matches_exhaustive_for_two() {
        let a_trace: Vec<u64> = (0..3000).map(|i| i % 37).collect();
        let b_trace: Vec<u64> = (0..3000).map(|i| 500 + (i * 7) % 211).collect();
        let ha = analyze_sequential::<SplayTree>(&a_trace, None);
        let hb = analyze_sequential::<SplayTree>(&b_trace, None);
        let capacity = 256u64;
        let gran = 16u64;
        let (_, dp_misses) = optimal_partition(&[&ha, &hb], capacity, gran);
        let mut best = u64::MAX;
        let mut c = gran;
        while c < capacity {
            best = best.min(ha.miss_count(c) + hb.miss_count(capacity - c));
            c += gran;
        }
        assert_eq!(dp_misses, best);
    }

    #[test]
    fn three_way_partition_allocates_everything() {
        let t: Vec<Vec<u64>> = (0..3)
            .map(|p| {
                (0..2000u64)
                    .map(|i| p * 10_000 + i % (50 * (p + 1)))
                    .collect()
            })
            .collect();
        let hists: Vec<ReuseHistogram> = t
            .iter()
            .map(|tr| analyze_sequential::<SplayTree>(tr, None))
            .collect();
        let refs: Vec<&ReuseHistogram> = hists.iter().collect();
        let (alloc, _) = optimal_partition(&refs, 512, 32);
        assert_eq!(alloc.iter().sum::<u64>(), 512);
        assert!(alloc.iter().all(|&a| a >= 32));
    }
}

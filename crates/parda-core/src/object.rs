//! Object-level (per-region) reuse distance analysis.
//!
//! The paper's Section VII surveys applications that attribute locality to
//! *data objects* rather than whole programs: Zhong et al. use per-object
//! reuse to drive array regrouping; Lu et al. (Soft-OLP) partition the
//! last-level cache between objects based on their individual reuse
//! profiles. Both need the same primitive: the global reuse-distance
//! histogram *split by which object each reference touches*, where
//! distances are still measured over the full interleaved trace.
//!
//! [`RegionMap`] describes the address layout (objects = address ranges);
//! [`analyze_by_region`] produces one histogram per region plus one for
//! unmapped addresses. The per-region histograms sum exactly to the
//! whole-trace histogram (tested), so everything derived from them
//! (per-object MRCs, partitioning decisions) is consistent with the global
//! analysis.

use crate::seq::analyze_with;
use parda_hist::ReuseHistogram;
use parda_trace::Addr;
use parda_tree::ReuseTree;

/// An address-range → region-id mapping (the "objects" of object-level
/// analysis).
///
/// Ranges are half-open `[start, end)`, must not overlap, and are looked up
/// by binary search.
///
/// # Examples
///
/// ```
/// use parda_core::object::RegionMap;
///
/// let mut map = RegionMap::new();
/// let a = map.add_region("matrix-a", 0x1000, 0x2000);
/// let b = map.add_region("matrix-b", 0x2000, 0x3000);
/// assert_eq!(map.region_of(0x1800), Some(a));
/// assert_eq!(map.region_of(0x2000), Some(b));
/// assert_eq!(map.region_of(0x9999), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegionMap {
    /// Sorted by start address.
    regions: Vec<Region>,
}

#[derive(Clone, Debug)]
struct Region {
    name: String,
    start: Addr,
    end: Addr,
}

/// Identifier of a region within its [`RegionMap`] (insertion order).
pub type RegionId = usize;

impl RegionMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `[start, end)` under `name`, returning its id. Panics on an
    /// empty or overlapping range.
    pub fn add_region(&mut self, name: &str, start: Addr, end: Addr) -> RegionId {
        assert!(start < end, "empty region {name}");
        assert!(
            !self.regions.iter().any(|r| start < r.end && r.start < end),
            "region {name} [{start:#x},{end:#x}) overlaps an existing region"
        );
        let id = self.regions.len();
        self.regions.push(Region {
            name: name.to_string(),
            start,
            end,
        });
        id
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when no region is registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Region name by id.
    pub fn name(&self, id: RegionId) -> &str {
        &self.regions[id].name
    }

    /// The region containing `addr`, if any.
    ///
    /// Convenience lookup that sorts per call — fine for spot queries and
    /// tests. The analysis hot loop uses the pre-sorted index built once by
    /// [`analyze_by_region`].
    pub fn region_of(&self, addr: Addr) -> Option<RegionId> {
        let sorted = self.sorted_index();
        let idx = sorted.partition_point(|&(start, _, _)| start <= addr);
        if idx == 0 {
            return None;
        }
        let (_, end, id) = sorted[idx - 1];
        (addr < end).then_some(id)
    }

    /// Pre-sorted lookup table for hot loops: `(start, end, id)` ascending.
    fn sorted_index(&self) -> Vec<(Addr, Addr, RegionId)> {
        let mut sorted: Vec<(Addr, Addr, RegionId)> = self
            .regions
            .iter()
            .enumerate()
            .map(|(id, r)| (r.start, r.end, id))
            .collect();
        sorted.sort_unstable();
        sorted
    }
}

/// Result of [`analyze_by_region`].
#[derive(Clone, Debug)]
pub struct RegionAnalysis {
    /// One histogram per region, indexed by [`RegionId`].
    pub per_region: Vec<ReuseHistogram>,
    /// References to addresses outside every region.
    pub unmapped: ReuseHistogram,
    /// The whole-trace histogram (equals the sum of the others).
    pub total: ReuseHistogram,
}

impl RegionAnalysis {
    /// Per-region miss counts for a shared fully associative LRU cache of
    /// `capacity` lines — the quantity object-level partitioning papers
    /// start from.
    pub fn miss_counts(&self, capacity: u64) -> Vec<u64> {
        self.per_region
            .iter()
            .map(|h| h.miss_count(capacity))
            .collect()
    }
}

/// Object-level reuse distance analysis: distances over the full trace,
/// histograms split by the referenced object.
pub fn analyze_by_region<T: ReuseTree + Default>(
    trace: &[Addr],
    regions: &RegionMap,
) -> RegionAnalysis {
    let index = regions.sorted_index();
    let lookup = |addr: Addr| -> Option<RegionId> {
        let idx = index.partition_point(|&(start, _, _)| start <= addr);
        if idx == 0 {
            return None;
        }
        let (_, end, id) = index[idx - 1];
        (addr < end).then_some(id)
    };

    let mut per_region = vec![ReuseHistogram::new(); regions.len()];
    let mut unmapped = ReuseHistogram::new();
    let total = analyze_with::<T, _>(trace, |_, addr, distance| match lookup(addr) {
        Some(id) => per_region[id].record(distance),
        None => unmapped.record(distance),
    });
    RegionAnalysis {
        per_region,
        unmapped,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_tree::SplayTree;

    #[test]
    fn region_lookup_boundaries() {
        let mut map = RegionMap::new();
        let a = map.add_region("a", 100, 200);
        let b = map.add_region("b", 300, 400);
        assert_eq!(map.region_of(100), Some(a));
        assert_eq!(map.region_of(199), Some(a));
        assert_eq!(map.region_of(200), None);
        assert_eq!(map.region_of(299), None);
        assert_eq!(map.region_of(300), Some(b));
        assert_eq!(map.region_of(99), None);
        assert_eq!(map.name(a), "a");
        assert_eq!(map.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_rejected() {
        let mut map = RegionMap::new();
        map.add_region("a", 100, 200);
        map.add_region("b", 150, 250);
    }

    #[test]
    fn per_region_histograms_sum_to_total() {
        // Two interleaved objects plus noise outside both.
        let mut trace = Vec::new();
        for i in 0..500u64 {
            trace.push(0x1000 + (i % 16) * 8); // object A: 16 hot words
            trace.push(0x2000 + (i % 64) * 8); // object B: 64 warm words
            if i % 10 == 0 {
                trace.push(0x9000 + i); // unmapped cold stream
            }
        }
        let mut map = RegionMap::new();
        let a = map.add_region("A", 0x1000, 0x1000 + 16 * 8);
        let b = map.add_region("B", 0x2000, 0x2000 + 64 * 8);

        let analysis = analyze_by_region::<SplayTree>(&trace, &map);
        let mut sum = analysis.per_region[a].clone();
        sum.merge(&analysis.per_region[b]);
        sum.merge(&analysis.unmapped);
        assert_eq!(sum, analysis.total);
        assert_eq!(analysis.total.total(), trace.len() as u64);

        // Object A is hotter: at a shared 64-line cache it must miss less.
        let misses = analysis.miss_counts(64);
        assert!(misses[a] < misses[b], "A {} vs B {}", misses[a], misses[b]);
    }

    #[test]
    fn distances_are_global_not_per_object() {
        // a x b x a: object {a} reuse distance is 2 (b and x intervene),
        // not 1 — distances must be measured over the full trace.
        let trace = [10u64, 99, 20, 98, 10];
        let mut map = RegionMap::new();
        let obj = map.add_region("obj", 10, 30);
        let analysis = analyze_by_region::<SplayTree>(&trace, &map);
        assert_eq!(
            analysis.per_region[obj].count(3),
            1,
            "a reused over x,20,98"
        );
        assert_eq!(analysis.per_region[obj].infinite(), 2);
        assert_eq!(analysis.unmapped.infinite(), 2);
    }

    #[test]
    fn empty_region_map_routes_everything_to_unmapped() {
        let trace = [1u64, 2, 1];
        let analysis = analyze_by_region::<SplayTree>(&trace, &RegionMap::new());
        assert_eq!(analysis.unmapped.total(), 3);
        assert_eq!(analysis.total, analysis.unmapped);
        assert!(analysis.per_region.is_empty());
    }
}

//! The per-rank analysis engine: paper Algorithms 1 (tree-based sequential),
//! 4 (space-optimized local-infinity processing) and 7 (bounded analysis)
//! unified over one state struct.
//!
//! An [`Engine`] owns the three data structures the paper threads through
//! its pseudocode — the timestamp tree `T`, the last-access table `H`, and
//! the histogram `hist` — plus the two counters of the optimized/bounded
//! variants: `l` (local infinities forwarded, Algorithm 7) and `count`
//! (incoming infinities seen, Algorithm 4). The sequential, parallel, and
//! multi-phase analyzers are all thin drivers over this type.

use parda_hash::LastAccessTable;
use parda_hist::ReuseHistogram;
use parda_obs::{CascadeRoundStats, EngineMetrics, Stopwatch};
use parda_trace::Addr;
use parda_tree::{Fenwick, ReuseTree};

/// Width of the prefetch-batched hot path (one `u64` hit mask per batch) —
/// see [`Engine::process_chunk`]. Module-level so the generic impl can size
/// arrays with it.
const BATCH: usize = 64;

/// What to do with a reference that misses the last-access table.
#[derive(Debug)]
pub enum MissSink<'a> {
    /// Count it as an infinite distance immediately. This is rank 0's
    /// behaviour (its local infinities are authoritative global infinities)
    /// and the behaviour of the standalone sequential analyzer.
    Infinite,
    /// Append it to a local-infinities queue to be forwarded to the left
    /// neighbour (subject to the bound `l < B` in bounded mode).
    Forward(&'a mut Vec<Addr>),
}

/// Reuse-distance analysis state for one rank (or the whole trace when run
/// sequentially).
///
/// # Examples
///
/// Running paper Algorithm 1 over the Table I trace:
///
/// ```
/// use parda_core::{Engine, MissSink};
/// use parda_tree::SplayTree;
///
/// let trace: Vec<u64> = "dacbccgefa".bytes().map(u64::from).collect();
/// let mut engine: Engine<SplayTree> = Engine::new(None, 0);
/// engine.process_chunk(&trace, 0, MissSink::Infinite);
///
/// let hist = engine.into_histogram();
/// assert_eq!(hist.infinite(), 7);
/// assert_eq!(hist.count(0), 1); // the c→c reuse at time 5
/// assert_eq!(hist.count(1), 1); // c at time 4 over b
/// assert_eq!(hist.count(5), 1); // a at time 9
/// ```
#[derive(Clone, Debug)]
pub struct Engine<T: ReuseTree> {
    tree: T,
    table: LastAccessTable,
    hist: ReuseHistogram,
    /// `B`: cap on tree/table size and on forwarded infinities
    /// (paper Algorithm 7). `None` = unbounded (full accuracy).
    bound: Option<u64>,
    /// `l`: local infinities forwarded so far.
    forwarded: u64,
    /// `count`: incoming local infinities processed so far (Algorithm 4).
    stream_count: u64,
    /// Cumulative operation counters (never reset at phase boundaries).
    metrics: EngineMetrics,
}

impl<T: ReuseTree + Default> Engine<T> {
    /// Ceiling on up-front pre-sizing: a hint above 2^20 entries (tens of
    /// MB of table + arena) stops paying for itself — growth from there is
    /// a handful of amortized doublings, not a per-chunk rehash storm.
    const MAX_PRESIZE: usize = 1 << 20;

    /// Create an engine with the given cache bound (`None` = unbounded) and
    /// a capacity hint — typically the length of the chunk this engine will
    /// analyze (0 = no hint).
    ///
    /// The hint pre-sizes the last-access table and the tree arena so the
    /// hot loop avoids rehash/realloc pauses mid-chunk. It is clamped by
    /// the bound (a bounded engine holds at most `B` live elements) and by
    /// a 2^20-entry ceiling (`MAX_PRESIZE`).
    pub fn new(bound: Option<u64>, capacity_hint: usize) -> Self {
        assert!(bound != Some(0), "a zero bound would admit no state at all");
        let hint = capacity_hint
            .min(Self::MAX_PRESIZE)
            .min(bound.map_or(usize::MAX, |b| usize::try_from(b).unwrap_or(usize::MAX)));
        let mut tree = T::default();
        tree.reserve(hint);
        Self {
            tree,
            table: LastAccessTable::with_capacity(hint),
            hist: ReuseHistogram::new(),
            bound,
            forwarded: 0,
            stream_count: 0,
            metrics: EngineMetrics::default(),
        }
    }
}

impl<T: ReuseTree> Engine<T> {
    /// The configured bound, if any.
    pub fn bound(&self) -> Option<u64> {
        self.bound
    }

    /// Number of live elements tracked (`|H|` = `|T|`).
    pub fn live(&self) -> usize {
        debug_assert_eq!(self.table.len(), self.tree.len());
        self.table.len()
    }

    /// Local infinities forwarded so far (`l`).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Incoming infinities processed so far (`count`).
    pub fn stream_count(&self) -> u64 {
        self.stream_count
    }

    /// Read access to the histogram accumulated so far.
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.hist
    }

    /// Cumulative operation counters (tree ops, live-set high-water mark,
    /// cascade hit/forward tallies). Unlike [`Engine::forwarded`] and
    /// [`Engine::stream_count`], these survive phase-counter resets.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Consume the engine, returning its histogram.
    pub fn into_histogram(self) -> ReuseHistogram {
        self.hist
    }

    /// Width of the prefetch-batched hot path: one `u64` hit mask per batch.
    pub const BATCH: usize = BATCH;

    /// Process a contiguous chunk of the trace whose first reference has
    /// global index `start_ts` (Algorithm 1 body, with the Algorithm 7
    /// bound when configured).
    ///
    /// Misses go to `miss_sink`; in bounded mode, only the first `B` misses
    /// are forwarded — the rest are provably at distance ≥ B and recorded
    /// as infinite (capacity misses).
    ///
    /// In unbounded mode this runs the prefetch-batched hot path: the chunk
    /// is consumed in batches of [`Self::BATCH`] references whose
    /// last-access-table slots are software-prefetched and probed *before*
    /// any tree work, turning a per-reference chain of dependent cache
    /// misses (hash probe → splay descent → next hash probe) into
    /// overlapped ones. Bit-identical to [`Self::process_chunk_scalar`]:
    /// table upserts are independent of tree state when no eviction can
    /// occur, so probing a batch ahead observes exactly the timestamps the
    /// scalar interleaving would, and tree ops replay in trace order.
    /// Bounded mode (where Algorithm 7's LRU eviction couples the table to
    /// the tree per reference) and tiny chunks take the scalar path.
    pub fn process_chunk(&mut self, chunk: &[Addr], start_ts: u64, miss_sink: MissSink<'_>) {
        parda_failpoint::failpoint!("engine::process_chunk");
        if self.bound.is_some() || chunk.len() < Self::BATCH {
            return self.process_chunk_scalar(chunk, start_ts, miss_sink);
        }
        let mut sink = miss_sink;
        self.metrics.refs += chunk.len() as u64;
        let mut prev = [0u64; BATCH];
        for (batch_idx, batch) in chunk.chunks(BATCH).enumerate() {
            let base_ts = start_ts + (batch_idx * BATCH) as u64;
            // Pass 1: hint every probe slot the batch will touch.
            for &z in batch {
                self.table.prefetch(z);
            }
            // Pass 2: probe/upsert the table, recording each reference's
            // previous timestamp. Within-batch repeats behave exactly like
            // the scalar loop: the upsert returns the timestamp the earlier
            // occurrence just recorded.
            let mut hits: u64 = 0;
            for (i, &z) in batch.iter().enumerate() {
                if let Some(t0) = self.table.record(z, base_ts + i as u64) {
                    prev[i] = t0;
                    hits |= 1 << i;
                }
            }
            // Pass 3: tree ops and histogram updates, replayed in trace
            // order so the result is bit-identical to the scalar path.
            for (i, &z) in batch.iter().enumerate() {
                let ts = base_ts + i as u64;
                if hits & (1 << i) != 0 {
                    let (d, _) = self
                        .tree
                        .distance_and_remove(prev[i])
                        .expect("table and tree are kept in sync");
                    self.hist.record_finite(d);
                    self.metrics.finite_hits += 1;
                    self.metrics.tree_ops += 1;
                } else {
                    match &mut sink {
                        MissSink::Forward(out) => {
                            out.push(z);
                            self.forwarded += 1;
                            self.metrics.forwarded += 1;
                        }
                        MissSink::Infinite => {
                            self.hist.record_infinite();
                            self.metrics.cold_misses += 1;
                        }
                    }
                }
                self.tree.insert(ts, z);
                self.metrics.tree_ops += 1;
            }
            self.metrics.batches += 1;
            // The live set only grows in unbounded chunk processing, so the
            // per-batch reading equals the scalar per-reference maximum.
            let live = self.table.len() as u64;
            if live > self.metrics.live_hwm {
                self.metrics.live_hwm = live;
            }
        }
    }

    /// Scalar (one reference at a time) chunk processing — the literal
    /// Algorithm 1/7 loop and the reference implementation the batched
    /// [`Self::process_chunk`] must match bit-for-bit. Public so the
    /// equivalence test suite and ablation benchmarks can drive it
    /// directly.
    pub fn process_chunk_scalar(&mut self, chunk: &[Addr], start_ts: u64, miss_sink: MissSink<'_>) {
        parda_failpoint::failpoint!("engine::process_chunk_scalar");
        let mut sink = miss_sink;
        self.metrics.refs += chunk.len() as u64;
        for (i, &z) in chunk.iter().enumerate() {
            let ts = start_ts + i as u64;
            // One hash probe per reference: the upsert returns the previous
            // timestamp, which is all Algorithm 1 needs (`H(z)` then
            // `H(z) ← t` in the paper).
            if let Some(t0) = self.table.record(z, ts) {
                let (d, _) = self
                    .tree
                    .distance_and_remove(t0)
                    .expect("table and tree are kept in sync");
                self.hist.record_finite(d);
                self.metrics.finite_hits += 1;
                self.metrics.tree_ops += 1;
            } else {
                let forward_ok = match self.bound {
                    Some(b) => self.forwarded < b,
                    None => true,
                };
                match (&mut sink, forward_ok) {
                    (MissSink::Forward(out), true) => {
                        out.push(z);
                        self.forwarded += 1;
                        self.metrics.forwarded += 1;
                    }
                    _ => {
                        self.hist.record_infinite();
                        self.metrics.cold_misses += 1;
                    }
                }
                // LRU eviction keeps |H| ≤ B: the leftmost (oldest) tree
                // node is the victim (paper `find_oldest`). `z` is already
                // in the table (not yet in the tree), hence the `> b`.
                if let Some(b) = self.bound {
                    if self.table.len() as u64 > b {
                        let (old_ts, old_addr) =
                            self.tree.oldest().expect("bounded full tree is non-empty");
                        self.tree.remove(old_ts);
                        self.table.forget(old_addr);
                        self.metrics.tree_ops += 1;
                    }
                }
            }
            self.tree.insert(ts, z);
            self.metrics.tree_ops += 1;
            let live = self.table.len() as u64;
            if live > self.metrics.live_hwm {
                self.metrics.live_hwm = live;
            }
        }
    }

    /// Space-optimized processing of a neighbour's local-infinities sequence
    /// (paper Algorithm 4).
    ///
    /// Hits measure their distance as `tree_distance + count` — `count`
    /// accounts for the distinct elements of the incoming stream that are
    /// deliberately *not* stored — and then delete the node (Property 4.3:
    /// the stream never repeats an element, so the node is dead weight).
    /// Misses are forwarded to `out` (bounded by `l < B` in bounded mode).
    ///
    /// Unbounded streams of at least [`Self::BATCH`] elements take the
    /// batched sorted-slab path (one bulk `rank_delete_batch` sweep instead
    /// of per-element descents); bounded mode and short streams run the
    /// scalar reference loop. Both produce bit-identical histograms and
    /// forward streams — see [`Self::process_infinities_scalar`].
    pub fn process_infinities(
        &mut self,
        incoming: &[Addr],
        out: &mut Vec<Addr>,
    ) -> CascadeRoundStats {
        if self.bound.is_some() || incoming.len() < Self::BATCH {
            return self.process_infinities_scalar(incoming, out);
        }
        debug_assert!(incoming.len() <= u32::MAX as usize);
        self.metrics.stream_refs += incoming.len() as u64;
        let base = self.stream_count;
        let merge_sw = Stopwatch::start();
        // Pass 1: prefetch-batched table probes, partitioning the stream
        // into hits `(t0, stream index)` and misses (forwarded in stream
        // order, exactly as the scalar interleaving would).
        let mut hits: Vec<(u64, u32)> = Vec::new();
        for (batch_idx, batch) in incoming.chunks(Self::BATCH).enumerate() {
            for &z in batch {
                self.table.prefetch(z);
            }
            for (i, &z) in batch.iter().enumerate() {
                if let Some(t0) = self.table.last_access(z) {
                    self.table.forget(z);
                    hits.push((t0, (batch_idx * Self::BATCH + i) as u32));
                } else {
                    out.push(z);
                    self.forwarded += 1;
                    self.metrics.forwarded += 1;
                }
            }
        }
        self.stream_count += incoming.len() as u64;
        let merge_ns = merge_sw.ns();
        if hits.is_empty() {
            return CascadeRoundStats {
                resolved: 0,
                merge_ns,
                batch_ns: 0,
            };
        }
        let (order_ns, batch_ns) = self.resolve_hit_batch(&hits, base);
        CascadeRoundStats {
            resolved: hits.len() as u64,
            merge_ns: merge_ns + order_ns,
            batch_ns,
        }
    }

    /// In-place variant for the fold cascade: `slab` is both the incoming
    /// stream and, on return, the surviving (unresolved) suffix — misses are
    /// compacted leftward during the probe pass (Kuszmaul-style in-place
    /// partition), so the cascade never copies survivors into an auxiliary
    /// array. Semantically identical to [`Self::process_infinities`] with
    /// `slab` as input and survivors as output.
    pub fn process_infinities_in_place(&mut self, slab: &mut Vec<Addr>) -> CascadeRoundStats {
        if self.bound.is_some() || slab.len() < Self::BATCH {
            let incoming = std::mem::take(slab);
            return self.process_infinities_scalar(&incoming, slab);
        }
        let n = slab.len();
        debug_assert!(n <= u32::MAX as usize);
        self.metrics.stream_refs += n as u64;
        let base = self.stream_count;
        let merge_sw = Stopwatch::start();
        let mut hits: Vec<(u64, u32)> = Vec::new();
        let mut write = 0usize;
        let mut read = 0usize;
        while read < n {
            let end = (read + Self::BATCH).min(n);
            for &z in &slab[read..end] {
                self.table.prefetch(z);
            }
            for i in read..end {
                let z = slab[i];
                if let Some(t0) = self.table.last_access(z) {
                    self.table.forget(z);
                    hits.push((t0, i as u32));
                } else {
                    slab[write] = z;
                    write += 1;
                    self.forwarded += 1;
                    self.metrics.forwarded += 1;
                }
            }
            read = end;
        }
        slab.truncate(write);
        self.stream_count += n as u64;
        let merge_ns = merge_sw.ns();
        if hits.is_empty() {
            return CascadeRoundStats {
                resolved: 0,
                merge_ns,
                batch_ns: 0,
            };
        }
        let (order_ns, batch_ns) = self.resolve_hit_batch(&hits, base);
        CascadeRoundStats {
            resolved: hits.len() as u64,
            merge_ns: merge_ns + order_ns,
            batch_ns,
        }
    }

    /// Resolve a round's hit set in one bulk tree sweep.
    ///
    /// `hits` holds `(t0, stream index)` in stream order; `base` is the
    /// engine's `count` at the round's start. The scalar loop computes, for
    /// the hit at stream index `i`, `distance_now(t0) + base + i`, where
    /// `distance_now` reflects the deletions of all *earlier* hits. This
    /// sweep instead asks the tree once for every hit's **initial** rank
    /// (count of live ts > t0 at round start, via `rank_delete_batch` on the
    /// ascending t0 sequence) and subtracts the inversion count — the number
    /// of earlier-in-stream hits whose t0 is *greater* (each such deletion
    /// lowered the strictly-greater count by one). The inversion count comes
    /// from a Fenwick tree over sorted-t0 positions, replayed in stream
    /// order. Returns `(ordering_ns, sweep_ns)`.
    fn resolve_hit_batch(&mut self, hits: &[(u64, u32)], base: u64) -> (u64, u64) {
        let k = hits.len();
        let order_sw = Stopwatch::start();
        // Order the distinct t0 values ascending and learn each hit's sorted
        // position. Cascade hits cluster inside one chunk's timestamp span,
        // so a bitmap counting sort over [min_t0, max_t0] usually beats a
        // comparison sort; fall back to sorting when the span is too wide
        // (imported multi-phase state can scatter timestamps arbitrarily).
        let mut min_t0 = u64::MAX;
        let mut max_t0 = 0u64;
        for &(t0, _) in hits {
            min_t0 = min_t0.min(t0);
            max_t0 = max_t0.max(t0);
        }
        let range = max_t0 - min_t0 + 1;
        let mut sorted_ts = Vec::with_capacity(k);
        let mut pos = vec![0u32; k];
        if range <= 64 * k as u64 {
            let words = (range as usize).div_ceil(64);
            let mut bits = vec![0u64; words];
            for &(t0, _) in hits {
                let off = (t0 - min_t0) as usize;
                bits[off >> 6] |= 1 << (off & 63);
            }
            let mut cum = vec![0u32; words];
            let mut acc = 0u32;
            for (w, &b) in bits.iter().enumerate() {
                cum[w] = acc;
                acc += b.count_ones();
                let mut rest = b;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as u64;
                    sorted_ts.push(min_t0 + (w as u64) * 64 + bit);
                    rest &= rest - 1;
                }
            }
            debug_assert_eq!(acc as usize, k);
            for (j, &(t0, _)) in hits.iter().enumerate() {
                let off = (t0 - min_t0) as usize;
                let below = (bits[off >> 6] & ((1u64 << (off & 63)) - 1)).count_ones();
                pos[j] = cum[off >> 6] + below;
            }
        } else {
            let mut order: Vec<u32> = (0..k as u32).collect();
            order.sort_unstable_by_key(|&j| hits[j as usize].0);
            for (s, &j) in order.iter().enumerate() {
                sorted_ts.push(hits[j as usize].0);
                pos[j as usize] = s as u32;
            }
        }
        let order_ns = order_sw.ns();

        let sweep_sw = Stopwatch::start();
        let mut ranks = Vec::with_capacity(k);
        self.tree.rank_delete_batch(&sorted_ts, &mut ranks);
        // Replay in stream order: j hits processed so far, of which
        // `prefix_sum(s + 1)` sit at sorted positions ≤ s, so the rest are
        // inversions (earlier hits with greater t0).
        let mut fen = Fenwick::new(k);
        for (j, &(_, idx)) in hits.iter().enumerate() {
            let s = pos[j] as usize;
            let inv = j as u64 - fen.prefix_sum(s + 1);
            let d = ranks[s] - inv + base + idx as u64;
            self.hist.record_finite(d);
            fen.add(s, 1);
        }
        self.metrics.stream_hits += k as u64;
        self.metrics.tree_ops += k as u64;
        (order_ns, sweep_sw.ns())
    }

    /// Scalar (one element at a time) infinity processing — the literal
    /// Algorithm 4 loop and the reference implementation the batched
    /// [`Self::process_infinities`] must match bit-for-bit. Public so the
    /// equivalence tests can drive it directly; always taken in bounded
    /// mode (the forwarding cap couples `l` to the element order).
    pub fn process_infinities_scalar(
        &mut self,
        incoming: &[Addr],
        out: &mut Vec<Addr>,
    ) -> CascadeRoundStats {
        self.metrics.stream_refs += incoming.len() as u64;
        let mut resolved = 0u64;
        for &z in incoming {
            if let Some(t0) = self.table.last_access(z) {
                let (d, _) = self
                    .tree
                    .distance_and_remove(t0)
                    .expect("table and tree are kept in sync");
                self.hist.record_finite(d + self.stream_count);
                self.table.forget(z);
                self.metrics.stream_hits += 1;
                self.metrics.tree_ops += 1;
                resolved += 1;
            } else {
                let forward_ok = match self.bound {
                    Some(b) => self.forwarded < b,
                    None => true,
                };
                if forward_ok {
                    out.push(z);
                    self.forwarded += 1;
                    self.metrics.forwarded += 1;
                } else {
                    self.hist.record_infinite();
                    self.metrics.cold_misses += 1;
                }
            }
            self.stream_count += 1;
        }
        CascadeRoundStats {
            resolved,
            merge_ns: 0,
            batch_ns: 0,
        }
    }

    /// Non-optimized infinity processing (plain Algorithm 3): run the
    /// incoming sequence through the regular reference path, continuing
    /// from `start_ts`, inserting every element into `T`/`H`.
    ///
    /// Functionally equivalent to [`Engine::process_infinities`] for the
    /// final histogram but keeps replicas alive — aggregate space grows to
    /// O(np·M). Retained for the D2 space-optimization ablation.
    pub fn process_infinities_unoptimized(
        &mut self,
        incoming: &[Addr],
        start_ts: u64,
        out: &mut Vec<Addr>,
    ) {
        self.process_chunk(incoming, start_ts, MissSink::Forward(out));
        // Account the stream under `stream_refs`, like the optimized path,
        // so `Σ per-rank refs == trace length` holds in every mode.
        self.metrics.refs -= incoming.len() as u64;
        self.metrics.stream_refs += incoming.len() as u64;
    }

    /// Record `n` surviving local infinities as authoritative global
    /// infinities (rank 0 in Algorithm 3).
    pub fn record_global_infinities(&mut self, n: u64) {
        self.hist.record_infinite_n(n);
        self.metrics.cold_misses += n;
    }

    /// Read the live `(timestamp, addr)` state in timestamp order without
    /// disturbing the engine — an inspection accessor (used by tests and
    /// debugging tooling).
    pub fn export_state(&self) -> Vec<(u64, Addr)> {
        self.tree.to_sorted_vec()
    }

    /// Export the live `(timestamp, addr)` state in timestamp order and
    /// clear the engine's tree/table (phase reduction, Algorithm 6 sender
    /// side). The histogram and counters are retained.
    pub fn drain_state(&mut self) -> Vec<(u64, Addr)> {
        let pairs = self.tree.to_sorted_vec();
        self.tree.clear();
        self.table.clear();
        pairs
    }

    /// Import live state pairs (Algorithm 6 receiver side).
    ///
    /// In unbounded mode the space-optimized cascade guarantees addresses
    /// are disjoint across ranks (every stale replica is deleted when the
    /// infinity stream hits it), so duplicates indicate a bug and are
    /// asserted against in debug builds. In bounded mode a replica can
    /// survive — a first touch beyond the forwarding bound `l ≥ B` is
    /// counted locally and never travels left to delete the older copy —
    /// so duplicates are resolved by keeping the newest timestamp (the true
    /// last access).
    pub fn import_state(&mut self, pairs: &[(u64, Addr)]) {
        for &(ts, addr) in pairs {
            if let Some(prev) = self.table.last_access(addr) {
                debug_assert!(
                    self.bound.is_some(),
                    "duplicate address {addr:#x} during unbounded state merge"
                );
                if prev >= ts {
                    continue;
                }
                self.tree.remove(prev);
                self.table.forget(addr);
                self.metrics.tree_ops += 1;
            }
            self.tree.insert(ts, addr);
            self.table.record(addr, ts);
            self.metrics.tree_ops += 1;
        }
        let live = self.table.len() as u64;
        if live > self.metrics.live_hwm {
            self.metrics.live_hwm = live;
        }
    }

    /// Reset the per-phase Algorithm 4/7 counters (`count`, `l`). Called at
    /// phase boundaries by the multi-phase driver.
    pub fn reset_phase_counters(&mut self) {
        self.stream_count = 0;
        self.forwarded = 0;
    }

    /// Merge another engine's histogram into this one (`reduce_sum`).
    pub fn merge_histogram(&mut self, other: &ReuseHistogram) {
        self.hist.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_tree::{AvlTree, SplayTree, Treap};

    fn labels(s: &str) -> Vec<Addr> {
        s.bytes().map(u64::from).collect()
    }

    fn run_table1<T: ReuseTree + Default>() -> ReuseHistogram {
        let mut engine: Engine<T> = Engine::new(None, 0);
        engine.process_chunk(&labels("dacbccgefa"), 0, MissSink::Infinite);
        engine.into_histogram()
    }

    #[test]
    fn table1_distances_all_trees() {
        for hist in [
            run_table1::<SplayTree>(),
            run_table1::<AvlTree>(),
            run_table1::<Treap>(),
        ] {
            assert_eq!(hist.total(), 10);
            assert_eq!(hist.infinite(), 7);
            assert_eq!(hist.count(0), 1);
            assert_eq!(hist.count(1), 1);
            assert_eq!(hist.count(5), 1);
        }
    }

    #[test]
    fn forward_sink_collects_first_touches_in_order() {
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf = Vec::new();
        engine.process_chunk(&labels("dacbccgef"), 0, MissSink::Forward(&mut inf));
        // Property 4.2: one entry per distinct element, in first-touch order.
        assert_eq!(inf, labels("dacbgef"));
        assert_eq!(engine.histogram().infinite(), 0);
        assert_eq!(engine.histogram().total(), 2); // the two c reuses
    }

    #[test]
    fn bounded_engine_caps_live_state() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        let trace: Vec<Addr> = (0..100).collect();
        engine.process_chunk(&trace, 0, MissSink::Infinite);
        assert_eq!(engine.live(), 4);
        assert_eq!(engine.histogram().infinite(), 100);
    }

    #[test]
    fn bounded_forwarding_stops_at_b() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(3), 0);
        let mut inf = Vec::new();
        let trace: Vec<Addr> = (0..10).collect();
        engine.process_chunk(&trace, 0, MissSink::Forward(&mut inf));
        assert_eq!(inf, vec![0, 1, 2], "only the first B misses forward");
        assert_eq!(engine.histogram().infinite(), 7);
        assert_eq!(engine.forwarded(), 3);
    }

    #[test]
    fn bounded_distances_below_bound_stay_exact() {
        // 8-element cyclic trace with bound 16: all reuse distances are 7,
        // well under the bound — must match unbounded exactly.
        let mut cyc = Vec::new();
        for lap in 0..10u64 {
            let _ = lap;
            cyc.extend(0..8u64);
        }
        let mut bounded: Engine<SplayTree> = Engine::new(Some(16), 0);
        bounded.process_chunk(&cyc, 0, MissSink::Infinite);
        let mut full: Engine<SplayTree> = Engine::new(None, 0);
        full.process_chunk(&cyc, 0, MissSink::Infinite);
        assert_eq!(bounded.into_histogram(), full.into_histogram());
    }

    #[test]
    fn bounded_lumps_large_distances_into_infinite() {
        // Cyclic sweep of 8 with bound 4: every reuse has distance 7 ≥ B.
        let mut cyc = Vec::new();
        for _ in 0..5 {
            cyc.extend(0..8u64);
        }
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        engine.process_chunk(&cyc, 0, MissSink::Infinite);
        let hist = engine.into_histogram();
        assert_eq!(hist.infinite(), 40, "every reference must be ∞ under B=4");
        assert_eq!(hist.finite_total(), 0);
    }

    #[test]
    fn process_infinities_table2_right_chunk() {
        // Table II: trace split as `dacbccg | efafbc` — wait, the paper's
        // split is at reference 6/7 of the 13-long trace; model the left
        // rank processing right-chunk infinities. Left chunk `d a c b c c`,
        // right chunk `g e f a f b c` produces local infinities g e f a b c
        // with global distances for a=5, b=5, c=5 (Table II).
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);

        let mut right: Engine<SplayTree> = Engine::new(None, 0);
        let mut right_inf = Vec::new();
        right.process_chunk(&labels("gefafbc"), 6, MissSink::Forward(&mut right_inf));
        assert_eq!(right_inf, labels("gefabc"));

        let mut survivors = Vec::new();
        left.process_infinities(&right_inf, &mut survivors);
        assert_eq!(
            survivors,
            labels("gef"),
            "d-a-c-b seen on the left except d"
        );

        let hist = left.histogram();
        // a, b, c all measure global distance 5 per Table II.
        assert_eq!(hist.count(5), 3);
    }

    #[test]
    fn stream_count_offsets_later_hits() {
        // Left chunk sees {a, b}. Incoming stream: [x, y, a]. x and y are
        // unknown (forwarded), so a's distance must include them: tree
        // distance (b after a = 1) + count (2) = 3.
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&[b'a' as u64, b'b' as u64], 0, MissSink::Infinite);
        let mut out = Vec::new();
        left.process_infinities(&[b'x' as u64, b'y' as u64, b'a' as u64], &mut out);
        assert_eq!(out, labels("xy"));
        assert_eq!(left.histogram().count(3), 1);
        assert_eq!(left.stream_count(), 3);
        assert_eq!(left.live(), 1, "a's node must be deleted after the hit");
    }

    #[test]
    fn export_import_round_trips_state() {
        let mut a: Engine<SplayTree> = Engine::new(None, 0);
        a.process_chunk(&labels("dacb"), 0, MissSink::Infinite);
        // Read-only export leaves the engine untouched…
        assert_eq!(a.export_state().len(), 4);
        assert_eq!(a.live(), 4);
        // …while drain_state hands the pairs over and clears.
        let state = a.drain_state();
        assert_eq!(a.live(), 0);
        assert_eq!(state.len(), 4);
        assert!(state.windows(2).all(|w| w[0].0 < w[1].0), "ts-ordered");

        let mut b: Engine<AvlTree> = Engine::new(None, 0);
        b.import_state(&state);
        assert_eq!(b.live(), 4);
        // Continuing the trace on the importing engine gives the right
        // distances: `a` was at ts 1 with c, b after it → distance 2.
        b.process_chunk(&labels("a"), 4, MissSink::Infinite);
        assert_eq!(b.histogram().count(2), 1);
    }

    #[test]
    fn unoptimized_infinity_processing_matches_optimized_histogram() {
        let left_chunk = labels("dacbcc");
        let incoming = labels("gefabc");

        let mut opt: Engine<SplayTree> = Engine::new(None, 0);
        opt.process_chunk(&left_chunk, 0, MissSink::Infinite);
        let mut opt_out = Vec::new();
        opt.process_infinities(&incoming, &mut opt_out);

        let mut plain: Engine<SplayTree> = Engine::new(None, 0);
        plain.process_chunk(&left_chunk, 0, MissSink::Infinite);
        let mut plain_out = Vec::new();
        plain.process_infinities_unoptimized(&incoming, 6, &mut plain_out);

        assert_eq!(opt_out, plain_out);
        assert_eq!(opt.histogram(), plain.histogram());
        // The whole point of Algorithm 4: optimized keeps less state.
        assert!(opt.live() < plain.live());
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn zero_bound_is_rejected() {
        let _: Engine<SplayTree> = Engine::new(Some(0), 0);
    }

    #[test]
    fn metrics_count_chunk_operations_exactly() {
        // Table I trace: 10 refs, 7 first touches, 3 reuses.
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        engine.process_chunk(&labels("dacbccgefa"), 0, MissSink::Infinite);
        let m = engine.metrics();
        assert_eq!(m.refs, 10);
        assert_eq!(m.finite_hits, 3);
        assert_eq!(m.cold_misses, 7);
        assert_eq!(m.forwarded, 0);
        assert_eq!(m.stream_refs, 0);
        // One insert per reference plus one distance query per reuse.
        assert_eq!(m.tree_ops, 10 + 3);
        // All 7 distinct addresses live at once at the end.
        assert_eq!(m.live_hwm, 7);
    }

    #[test]
    fn metrics_count_cascade_operations_exactly() {
        // Left chunk `dacbcc` then the Table II incoming stream `gefabc`:
        // 3 stream hits (a, b, c), 3 forwards (g, e, f).
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut out = Vec::new();
        left.process_infinities(&labels("gefabc"), &mut out);
        let m = left.metrics();
        assert_eq!(m.stream_refs, 6);
        assert_eq!(m.stream_hits, 3);
        assert_eq!(m.forwarded, 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn metrics_forwarded_survives_phase_reset() {
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        let mut out = Vec::new();
        engine.process_chunk(&labels("abc"), 0, MissSink::Forward(&mut out));
        engine.reset_phase_counters();
        assert_eq!(engine.forwarded(), 0, "phase counter resets");
        assert_eq!(engine.metrics().forwarded, 3, "metrics are cumulative");
    }

    #[test]
    fn metrics_live_hwm_tracks_bounded_cap() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        let trace: Vec<Addr> = (0..100).collect();
        engine.process_chunk(&trace, 0, MissSink::Infinite);
        // The bound caps the live set; the high-water mark can overshoot by
        // at most one (the new entry is recorded before the eviction).
        assert!(engine.metrics().live_hwm <= 5);
        assert_eq!(engine.metrics().cold_misses, 100);
    }

    /// Build two identical engines over `chunk`, run the same incoming
    /// stream through the batched dispatcher on one and the scalar loop on
    /// the other, and demand bit-identical histograms, forward streams,
    /// counters, and live state.
    fn assert_batched_stream_matches_scalar<T: ReuseTree + Default + Clone>(
        chunk: &[Addr],
        incoming: &[Addr],
    ) {
        let mut batched: Engine<T> = Engine::new(None, 0);
        batched.process_chunk(chunk, 0, MissSink::Infinite);
        let mut scalar = batched.clone();

        let mut batched_out = Vec::new();
        let stats = batched.process_infinities(incoming, &mut batched_out);
        let mut scalar_out = Vec::new();
        let scalar_stats = scalar.process_infinities_scalar(incoming, &mut scalar_out);

        assert_eq!(batched_out, scalar_out, "forward streams");
        assert_eq!(batched.histogram(), scalar.histogram(), "histograms");
        assert_eq!(batched.forwarded(), scalar.forwarded());
        assert_eq!(batched.stream_count(), scalar.stream_count());
        assert_eq!(batched.metrics(), scalar.metrics());
        assert_eq!(batched.export_state(), scalar.export_state(), "live state");
        assert_eq!(stats.resolved, scalar_stats.resolved);

        // The in-place variant must agree too, leaving survivors in the slab.
        let mut in_place: Engine<T> = Engine::new(None, 0);
        in_place.process_chunk(chunk, 0, MissSink::Infinite);
        let mut slab = incoming.to_vec();
        let ip_stats = in_place.process_infinities_in_place(&mut slab);
        assert_eq!(slab, scalar_out, "in-place survivors");
        assert_eq!(in_place.histogram(), scalar.histogram());
        assert_eq!(in_place.metrics(), scalar.metrics());
        assert_eq!(ip_stats.resolved, scalar_stats.resolved);
    }

    #[test]
    fn batched_infinity_stream_matches_scalar() {
        // Chunk over 200 addresses, then a 256-long incoming stream hitting
        // about half of them with inversions (stride walk reverses relative
        // t0 order): ≥ BATCH so the batched path engages.
        let chunk: Vec<Addr> = (0..200u64).map(|i| (i * 37) % 200).collect();
        let incoming: Vec<Addr> = (0..256u64).map(|i| 400 - ((i * 13) % 350)).collect();
        let mut seen = std::collections::HashSet::new();
        let incoming: Vec<Addr> = incoming.into_iter().filter(|&z| seen.insert(z)).collect();
        assert!(incoming.len() >= Engine::<SplayTree>::BATCH);
        assert_batched_stream_matches_scalar::<SplayTree>(&chunk, &incoming);
        assert_batched_stream_matches_scalar::<AvlTree>(&chunk, &incoming);
        assert_batched_stream_matches_scalar::<Treap>(&chunk, &incoming);
        assert_batched_stream_matches_scalar::<parda_tree::VectorTree>(&chunk, &incoming);
    }

    #[test]
    fn batched_stream_with_sparse_scattered_timestamps() {
        // Tiny hit density and a wide t0 span per hit: exercises both the
        // comparison-sort ordering fallback and the sparse fused-descent
        // side of rank_delete_batch.
        let chunk: Vec<Addr> = (0..4096u64).collect();
        let incoming: Vec<Addr> = (0..128u64)
            .map(|i| {
                if i % 16 == 0 {
                    i * 31 % 4096
                } else {
                    100_000 + i
                }
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        let incoming: Vec<Addr> = incoming.into_iter().filter(|&z| seen.insert(z)).collect();
        assert_batched_stream_matches_scalar::<SplayTree>(&chunk, &incoming);
        assert_batched_stream_matches_scalar::<parda_tree::VectorTree>(&chunk, &incoming);
    }

    #[test]
    fn batched_stream_all_hits_and_all_misses() {
        let chunk: Vec<Addr> = (0..128u64).collect();
        // Every element hits (dense rank_delete_batch sweep, zero survivors).
        let all_hits: Vec<Addr> = (0..128u64).rev().collect();
        assert_batched_stream_matches_scalar::<SplayTree>(&chunk, &all_hits);
        // Every element misses (pure forward, no tree sweep).
        let all_misses: Vec<Addr> = (1000..1128u64).collect();
        assert_batched_stream_matches_scalar::<Treap>(&chunk, &all_misses);
    }

    #[test]
    fn unoptimized_stream_accounting_matches_optimized() {
        let mut opt: Engine<SplayTree> = Engine::new(None, 0);
        opt.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut o1 = Vec::new();
        opt.process_infinities(&labels("gefabc"), &mut o1);

        let mut plain: Engine<SplayTree> = Engine::new(None, 0);
        plain.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut o2 = Vec::new();
        plain.process_infinities_unoptimized(&labels("gefabc"), 6, &mut o2);

        assert_eq!(opt.metrics().refs, plain.metrics().refs);
        assert_eq!(opt.metrics().stream_refs, plain.metrics().stream_refs);
    }
}

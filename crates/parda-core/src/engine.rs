//! The per-rank analysis engine: paper Algorithms 1 (tree-based sequential),
//! 4 (space-optimized local-infinity processing) and 7 (bounded analysis)
//! unified over one state struct.
//!
//! An [`Engine`] owns the three data structures the paper threads through
//! its pseudocode — the timestamp tree `T`, the last-access table `H`, and
//! the histogram `hist` — plus the two counters of the optimized/bounded
//! variants: `l` (local infinities forwarded, Algorithm 7) and `count`
//! (incoming infinities seen, Algorithm 4). The sequential, parallel, and
//! multi-phase analyzers are all thin drivers over this type.

use parda_hash::LastAccessTable;
use parda_hist::ReuseHistogram;
use parda_obs::EngineMetrics;
use parda_trace::Addr;
use parda_tree::ReuseTree;

/// Width of the prefetch-batched hot path (one `u64` hit mask per batch) —
/// see [`Engine::process_chunk`]. Module-level so the generic impl can size
/// arrays with it.
const BATCH: usize = 64;

/// What to do with a reference that misses the last-access table.
#[derive(Debug)]
pub enum MissSink<'a> {
    /// Count it as an infinite distance immediately. This is rank 0's
    /// behaviour (its local infinities are authoritative global infinities)
    /// and the behaviour of the standalone sequential analyzer.
    Infinite,
    /// Append it to a local-infinities queue to be forwarded to the left
    /// neighbour (subject to the bound `l < B` in bounded mode).
    Forward(&'a mut Vec<Addr>),
}

/// Reuse-distance analysis state for one rank (or the whole trace when run
/// sequentially).
///
/// # Examples
///
/// Running paper Algorithm 1 over the Table I trace:
///
/// ```
/// use parda_core::{Engine, MissSink};
/// use parda_tree::SplayTree;
///
/// let trace: Vec<u64> = "dacbccgefa".bytes().map(u64::from).collect();
/// let mut engine: Engine<SplayTree> = Engine::new(None, 0);
/// engine.process_chunk(&trace, 0, MissSink::Infinite);
///
/// let hist = engine.into_histogram();
/// assert_eq!(hist.infinite(), 7);
/// assert_eq!(hist.count(0), 1); // the c→c reuse at time 5
/// assert_eq!(hist.count(1), 1); // c at time 4 over b
/// assert_eq!(hist.count(5), 1); // a at time 9
/// ```
#[derive(Clone, Debug)]
pub struct Engine<T: ReuseTree> {
    tree: T,
    table: LastAccessTable,
    hist: ReuseHistogram,
    /// `B`: cap on tree/table size and on forwarded infinities
    /// (paper Algorithm 7). `None` = unbounded (full accuracy).
    bound: Option<u64>,
    /// `l`: local infinities forwarded so far.
    forwarded: u64,
    /// `count`: incoming local infinities processed so far (Algorithm 4).
    stream_count: u64,
    /// Cumulative operation counters (never reset at phase boundaries).
    metrics: EngineMetrics,
}

impl<T: ReuseTree + Default> Engine<T> {
    /// Ceiling on up-front pre-sizing: a hint above 2^20 entries (tens of
    /// MB of table + arena) stops paying for itself — growth from there is
    /// a handful of amortized doublings, not a per-chunk rehash storm.
    const MAX_PRESIZE: usize = 1 << 20;

    /// Create an engine with the given cache bound (`None` = unbounded) and
    /// a capacity hint — typically the length of the chunk this engine will
    /// analyze (0 = no hint).
    ///
    /// The hint pre-sizes the last-access table and the tree arena so the
    /// hot loop avoids rehash/realloc pauses mid-chunk. It is clamped by
    /// the bound (a bounded engine holds at most `B` live elements) and by
    /// a 2^20-entry ceiling (`MAX_PRESIZE`).
    pub fn new(bound: Option<u64>, capacity_hint: usize) -> Self {
        assert!(bound != Some(0), "a zero bound would admit no state at all");
        let hint = capacity_hint
            .min(Self::MAX_PRESIZE)
            .min(bound.map_or(usize::MAX, |b| usize::try_from(b).unwrap_or(usize::MAX)));
        let mut tree = T::default();
        tree.reserve(hint);
        Self {
            tree,
            table: LastAccessTable::with_capacity(hint),
            hist: ReuseHistogram::new(),
            bound,
            forwarded: 0,
            stream_count: 0,
            metrics: EngineMetrics::default(),
        }
    }
}

impl<T: ReuseTree> Engine<T> {
    /// The configured bound, if any.
    pub fn bound(&self) -> Option<u64> {
        self.bound
    }

    /// Number of live elements tracked (`|H|` = `|T|`).
    pub fn live(&self) -> usize {
        debug_assert_eq!(self.table.len(), self.tree.len());
        self.table.len()
    }

    /// Local infinities forwarded so far (`l`).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Incoming infinities processed so far (`count`).
    pub fn stream_count(&self) -> u64 {
        self.stream_count
    }

    /// Read access to the histogram accumulated so far.
    pub fn histogram(&self) -> &ReuseHistogram {
        &self.hist
    }

    /// Cumulative operation counters (tree ops, live-set high-water mark,
    /// cascade hit/forward tallies). Unlike [`Engine::forwarded`] and
    /// [`Engine::stream_count`], these survive phase-counter resets.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Consume the engine, returning its histogram.
    pub fn into_histogram(self) -> ReuseHistogram {
        self.hist
    }

    /// Width of the prefetch-batched hot path: one `u64` hit mask per batch.
    pub const BATCH: usize = BATCH;

    /// Process a contiguous chunk of the trace whose first reference has
    /// global index `start_ts` (Algorithm 1 body, with the Algorithm 7
    /// bound when configured).
    ///
    /// Misses go to `miss_sink`; in bounded mode, only the first `B` misses
    /// are forwarded — the rest are provably at distance ≥ B and recorded
    /// as infinite (capacity misses).
    ///
    /// In unbounded mode this runs the prefetch-batched hot path: the chunk
    /// is consumed in batches of [`Self::BATCH`] references whose
    /// last-access-table slots are software-prefetched and probed *before*
    /// any tree work, turning a per-reference chain of dependent cache
    /// misses (hash probe → splay descent → next hash probe) into
    /// overlapped ones. Bit-identical to [`Self::process_chunk_scalar`]:
    /// table upserts are independent of tree state when no eviction can
    /// occur, so probing a batch ahead observes exactly the timestamps the
    /// scalar interleaving would, and tree ops replay in trace order.
    /// Bounded mode (where Algorithm 7's LRU eviction couples the table to
    /// the tree per reference) and tiny chunks take the scalar path.
    pub fn process_chunk(&mut self, chunk: &[Addr], start_ts: u64, miss_sink: MissSink<'_>) {
        parda_failpoint::failpoint!("engine::process_chunk");
        if self.bound.is_some() || chunk.len() < Self::BATCH {
            return self.process_chunk_scalar(chunk, start_ts, miss_sink);
        }
        let mut sink = miss_sink;
        self.metrics.refs += chunk.len() as u64;
        let mut prev = [0u64; BATCH];
        for (batch_idx, batch) in chunk.chunks(BATCH).enumerate() {
            let base_ts = start_ts + (batch_idx * BATCH) as u64;
            // Pass 1: hint every probe slot the batch will touch.
            for &z in batch {
                self.table.prefetch(z);
            }
            // Pass 2: probe/upsert the table, recording each reference's
            // previous timestamp. Within-batch repeats behave exactly like
            // the scalar loop: the upsert returns the timestamp the earlier
            // occurrence just recorded.
            let mut hits: u64 = 0;
            for (i, &z) in batch.iter().enumerate() {
                if let Some(t0) = self.table.record(z, base_ts + i as u64) {
                    prev[i] = t0;
                    hits |= 1 << i;
                }
            }
            // Pass 3: tree ops and histogram updates, replayed in trace
            // order so the result is bit-identical to the scalar path.
            for (i, &z) in batch.iter().enumerate() {
                let ts = base_ts + i as u64;
                if hits & (1 << i) != 0 {
                    let (d, _) = self
                        .tree
                        .distance_and_remove(prev[i])
                        .expect("table and tree are kept in sync");
                    self.hist.record_finite(d);
                    self.metrics.finite_hits += 1;
                    self.metrics.tree_ops += 1;
                } else {
                    match &mut sink {
                        MissSink::Forward(out) => {
                            out.push(z);
                            self.forwarded += 1;
                            self.metrics.forwarded += 1;
                        }
                        MissSink::Infinite => {
                            self.hist.record_infinite();
                            self.metrics.cold_misses += 1;
                        }
                    }
                }
                self.tree.insert(ts, z);
                self.metrics.tree_ops += 1;
            }
            self.metrics.batches += 1;
            // The live set only grows in unbounded chunk processing, so the
            // per-batch reading equals the scalar per-reference maximum.
            let live = self.table.len() as u64;
            if live > self.metrics.live_hwm {
                self.metrics.live_hwm = live;
            }
        }
    }

    /// Scalar (one reference at a time) chunk processing — the literal
    /// Algorithm 1/7 loop and the reference implementation the batched
    /// [`Self::process_chunk`] must match bit-for-bit. Public so the
    /// equivalence test suite and ablation benchmarks can drive it
    /// directly.
    pub fn process_chunk_scalar(&mut self, chunk: &[Addr], start_ts: u64, miss_sink: MissSink<'_>) {
        parda_failpoint::failpoint!("engine::process_chunk_scalar");
        let mut sink = miss_sink;
        self.metrics.refs += chunk.len() as u64;
        for (i, &z) in chunk.iter().enumerate() {
            let ts = start_ts + i as u64;
            // One hash probe per reference: the upsert returns the previous
            // timestamp, which is all Algorithm 1 needs (`H(z)` then
            // `H(z) ← t` in the paper).
            if let Some(t0) = self.table.record(z, ts) {
                let (d, _) = self
                    .tree
                    .distance_and_remove(t0)
                    .expect("table and tree are kept in sync");
                self.hist.record_finite(d);
                self.metrics.finite_hits += 1;
                self.metrics.tree_ops += 1;
            } else {
                let forward_ok = match self.bound {
                    Some(b) => self.forwarded < b,
                    None => true,
                };
                match (&mut sink, forward_ok) {
                    (MissSink::Forward(out), true) => {
                        out.push(z);
                        self.forwarded += 1;
                        self.metrics.forwarded += 1;
                    }
                    _ => {
                        self.hist.record_infinite();
                        self.metrics.cold_misses += 1;
                    }
                }
                // LRU eviction keeps |H| ≤ B: the leftmost (oldest) tree
                // node is the victim (paper `find_oldest`). `z` is already
                // in the table (not yet in the tree), hence the `> b`.
                if let Some(b) = self.bound {
                    if self.table.len() as u64 > b {
                        let (old_ts, old_addr) =
                            self.tree.oldest().expect("bounded full tree is non-empty");
                        self.tree.remove(old_ts);
                        self.table.forget(old_addr);
                        self.metrics.tree_ops += 1;
                    }
                }
            }
            self.tree.insert(ts, z);
            self.metrics.tree_ops += 1;
            let live = self.table.len() as u64;
            if live > self.metrics.live_hwm {
                self.metrics.live_hwm = live;
            }
        }
    }

    /// Space-optimized processing of a neighbour's local-infinities sequence
    /// (paper Algorithm 4).
    ///
    /// Hits measure their distance as `tree_distance + count` — `count`
    /// accounts for the distinct elements of the incoming stream that are
    /// deliberately *not* stored — and then delete the node (Property 4.3:
    /// the stream never repeats an element, so the node is dead weight).
    /// Misses are forwarded to `out` (bounded by `l < B` in bounded mode).
    pub fn process_infinities(&mut self, incoming: &[Addr], out: &mut Vec<Addr>) {
        self.metrics.stream_refs += incoming.len() as u64;
        for &z in incoming {
            if let Some(t0) = self.table.last_access(z) {
                let (d, _) = self
                    .tree
                    .distance_and_remove(t0)
                    .expect("table and tree are kept in sync");
                self.hist.record_finite(d + self.stream_count);
                self.table.forget(z);
                self.metrics.stream_hits += 1;
                self.metrics.tree_ops += 1;
            } else {
                let forward_ok = match self.bound {
                    Some(b) => self.forwarded < b,
                    None => true,
                };
                if forward_ok {
                    out.push(z);
                    self.forwarded += 1;
                    self.metrics.forwarded += 1;
                } else {
                    self.hist.record_infinite();
                    self.metrics.cold_misses += 1;
                }
            }
            self.stream_count += 1;
        }
    }

    /// Non-optimized infinity processing (plain Algorithm 3): run the
    /// incoming sequence through the regular reference path, continuing
    /// from `start_ts`, inserting every element into `T`/`H`.
    ///
    /// Functionally equivalent to [`Engine::process_infinities`] for the
    /// final histogram but keeps replicas alive — aggregate space grows to
    /// O(np·M). Retained for the D2 space-optimization ablation.
    pub fn process_infinities_unoptimized(
        &mut self,
        incoming: &[Addr],
        start_ts: u64,
        out: &mut Vec<Addr>,
    ) {
        self.process_chunk(incoming, start_ts, MissSink::Forward(out));
        // Account the stream under `stream_refs`, like the optimized path,
        // so `Σ per-rank refs == trace length` holds in every mode.
        self.metrics.refs -= incoming.len() as u64;
        self.metrics.stream_refs += incoming.len() as u64;
    }

    /// Record `n` surviving local infinities as authoritative global
    /// infinities (rank 0 in Algorithm 3).
    pub fn record_global_infinities(&mut self, n: u64) {
        self.hist.record_infinite_n(n);
        self.metrics.cold_misses += n;
    }

    /// Read the live `(timestamp, addr)` state in timestamp order without
    /// disturbing the engine — an inspection accessor (used by tests and
    /// debugging tooling).
    pub fn export_state(&self) -> Vec<(u64, Addr)> {
        self.tree.to_sorted_vec()
    }

    /// Export the live `(timestamp, addr)` state in timestamp order and
    /// clear the engine's tree/table (phase reduction, Algorithm 6 sender
    /// side). The histogram and counters are retained.
    pub fn drain_state(&mut self) -> Vec<(u64, Addr)> {
        let pairs = self.tree.to_sorted_vec();
        self.tree.clear();
        self.table.clear();
        pairs
    }

    /// Import live state pairs (Algorithm 6 receiver side).
    ///
    /// In unbounded mode the space-optimized cascade guarantees addresses
    /// are disjoint across ranks (every stale replica is deleted when the
    /// infinity stream hits it), so duplicates indicate a bug and are
    /// asserted against in debug builds. In bounded mode a replica can
    /// survive — a first touch beyond the forwarding bound `l ≥ B` is
    /// counted locally and never travels left to delete the older copy —
    /// so duplicates are resolved by keeping the newest timestamp (the true
    /// last access).
    pub fn import_state(&mut self, pairs: &[(u64, Addr)]) {
        for &(ts, addr) in pairs {
            if let Some(prev) = self.table.last_access(addr) {
                debug_assert!(
                    self.bound.is_some(),
                    "duplicate address {addr:#x} during unbounded state merge"
                );
                if prev >= ts {
                    continue;
                }
                self.tree.remove(prev);
                self.table.forget(addr);
                self.metrics.tree_ops += 1;
            }
            self.tree.insert(ts, addr);
            self.table.record(addr, ts);
            self.metrics.tree_ops += 1;
        }
        let live = self.table.len() as u64;
        if live > self.metrics.live_hwm {
            self.metrics.live_hwm = live;
        }
    }

    /// Reset the per-phase Algorithm 4/7 counters (`count`, `l`). Called at
    /// phase boundaries by the multi-phase driver.
    pub fn reset_phase_counters(&mut self) {
        self.stream_count = 0;
        self.forwarded = 0;
    }

    /// Merge another engine's histogram into this one (`reduce_sum`).
    pub fn merge_histogram(&mut self, other: &ReuseHistogram) {
        self.hist.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parda_tree::{AvlTree, SplayTree, Treap};

    fn labels(s: &str) -> Vec<Addr> {
        s.bytes().map(u64::from).collect()
    }

    fn run_table1<T: ReuseTree + Default>() -> ReuseHistogram {
        let mut engine: Engine<T> = Engine::new(None, 0);
        engine.process_chunk(&labels("dacbccgefa"), 0, MissSink::Infinite);
        engine.into_histogram()
    }

    #[test]
    fn table1_distances_all_trees() {
        for hist in [
            run_table1::<SplayTree>(),
            run_table1::<AvlTree>(),
            run_table1::<Treap>(),
        ] {
            assert_eq!(hist.total(), 10);
            assert_eq!(hist.infinite(), 7);
            assert_eq!(hist.count(0), 1);
            assert_eq!(hist.count(1), 1);
            assert_eq!(hist.count(5), 1);
        }
    }

    #[test]
    fn forward_sink_collects_first_touches_in_order() {
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        let mut inf = Vec::new();
        engine.process_chunk(&labels("dacbccgef"), 0, MissSink::Forward(&mut inf));
        // Property 4.2: one entry per distinct element, in first-touch order.
        assert_eq!(inf, labels("dacbgef"));
        assert_eq!(engine.histogram().infinite(), 0);
        assert_eq!(engine.histogram().total(), 2); // the two c reuses
    }

    #[test]
    fn bounded_engine_caps_live_state() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        let trace: Vec<Addr> = (0..100).collect();
        engine.process_chunk(&trace, 0, MissSink::Infinite);
        assert_eq!(engine.live(), 4);
        assert_eq!(engine.histogram().infinite(), 100);
    }

    #[test]
    fn bounded_forwarding_stops_at_b() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(3), 0);
        let mut inf = Vec::new();
        let trace: Vec<Addr> = (0..10).collect();
        engine.process_chunk(&trace, 0, MissSink::Forward(&mut inf));
        assert_eq!(inf, vec![0, 1, 2], "only the first B misses forward");
        assert_eq!(engine.histogram().infinite(), 7);
        assert_eq!(engine.forwarded(), 3);
    }

    #[test]
    fn bounded_distances_below_bound_stay_exact() {
        // 8-element cyclic trace with bound 16: all reuse distances are 7,
        // well under the bound — must match unbounded exactly.
        let mut cyc = Vec::new();
        for lap in 0..10u64 {
            let _ = lap;
            cyc.extend(0..8u64);
        }
        let mut bounded: Engine<SplayTree> = Engine::new(Some(16), 0);
        bounded.process_chunk(&cyc, 0, MissSink::Infinite);
        let mut full: Engine<SplayTree> = Engine::new(None, 0);
        full.process_chunk(&cyc, 0, MissSink::Infinite);
        assert_eq!(bounded.into_histogram(), full.into_histogram());
    }

    #[test]
    fn bounded_lumps_large_distances_into_infinite() {
        // Cyclic sweep of 8 with bound 4: every reuse has distance 7 ≥ B.
        let mut cyc = Vec::new();
        for _ in 0..5 {
            cyc.extend(0..8u64);
        }
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        engine.process_chunk(&cyc, 0, MissSink::Infinite);
        let hist = engine.into_histogram();
        assert_eq!(hist.infinite(), 40, "every reference must be ∞ under B=4");
        assert_eq!(hist.finite_total(), 0);
    }

    #[test]
    fn process_infinities_table2_right_chunk() {
        // Table II: trace split as `dacbccg | efafbc` — wait, the paper's
        // split is at reference 6/7 of the 13-long trace; model the left
        // rank processing right-chunk infinities. Left chunk `d a c b c c`,
        // right chunk `g e f a f b c` produces local infinities g e f a b c
        // with global distances for a=5, b=5, c=5 (Table II).
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);

        let mut right: Engine<SplayTree> = Engine::new(None, 0);
        let mut right_inf = Vec::new();
        right.process_chunk(&labels("gefafbc"), 6, MissSink::Forward(&mut right_inf));
        assert_eq!(right_inf, labels("gefabc"));

        let mut survivors = Vec::new();
        left.process_infinities(&right_inf, &mut survivors);
        assert_eq!(
            survivors,
            labels("gef"),
            "d-a-c-b seen on the left except d"
        );

        let hist = left.histogram();
        // a, b, c all measure global distance 5 per Table II.
        assert_eq!(hist.count(5), 3);
    }

    #[test]
    fn stream_count_offsets_later_hits() {
        // Left chunk sees {a, b}. Incoming stream: [x, y, a]. x and y are
        // unknown (forwarded), so a's distance must include them: tree
        // distance (b after a = 1) + count (2) = 3.
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&[b'a' as u64, b'b' as u64], 0, MissSink::Infinite);
        let mut out = Vec::new();
        left.process_infinities(&[b'x' as u64, b'y' as u64, b'a' as u64], &mut out);
        assert_eq!(out, labels("xy"));
        assert_eq!(left.histogram().count(3), 1);
        assert_eq!(left.stream_count(), 3);
        assert_eq!(left.live(), 1, "a's node must be deleted after the hit");
    }

    #[test]
    fn export_import_round_trips_state() {
        let mut a: Engine<SplayTree> = Engine::new(None, 0);
        a.process_chunk(&labels("dacb"), 0, MissSink::Infinite);
        // Read-only export leaves the engine untouched…
        assert_eq!(a.export_state().len(), 4);
        assert_eq!(a.live(), 4);
        // …while drain_state hands the pairs over and clears.
        let state = a.drain_state();
        assert_eq!(a.live(), 0);
        assert_eq!(state.len(), 4);
        assert!(state.windows(2).all(|w| w[0].0 < w[1].0), "ts-ordered");

        let mut b: Engine<AvlTree> = Engine::new(None, 0);
        b.import_state(&state);
        assert_eq!(b.live(), 4);
        // Continuing the trace on the importing engine gives the right
        // distances: `a` was at ts 1 with c, b after it → distance 2.
        b.process_chunk(&labels("a"), 4, MissSink::Infinite);
        assert_eq!(b.histogram().count(2), 1);
    }

    #[test]
    fn unoptimized_infinity_processing_matches_optimized_histogram() {
        let left_chunk = labels("dacbcc");
        let incoming = labels("gefabc");

        let mut opt: Engine<SplayTree> = Engine::new(None, 0);
        opt.process_chunk(&left_chunk, 0, MissSink::Infinite);
        let mut opt_out = Vec::new();
        opt.process_infinities(&incoming, &mut opt_out);

        let mut plain: Engine<SplayTree> = Engine::new(None, 0);
        plain.process_chunk(&left_chunk, 0, MissSink::Infinite);
        let mut plain_out = Vec::new();
        plain.process_infinities_unoptimized(&incoming, 6, &mut plain_out);

        assert_eq!(opt_out, plain_out);
        assert_eq!(opt.histogram(), plain.histogram());
        // The whole point of Algorithm 4: optimized keeps less state.
        assert!(opt.live() < plain.live());
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn zero_bound_is_rejected() {
        let _: Engine<SplayTree> = Engine::new(Some(0), 0);
    }

    #[test]
    fn metrics_count_chunk_operations_exactly() {
        // Table I trace: 10 refs, 7 first touches, 3 reuses.
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        engine.process_chunk(&labels("dacbccgefa"), 0, MissSink::Infinite);
        let m = engine.metrics();
        assert_eq!(m.refs, 10);
        assert_eq!(m.finite_hits, 3);
        assert_eq!(m.cold_misses, 7);
        assert_eq!(m.forwarded, 0);
        assert_eq!(m.stream_refs, 0);
        // One insert per reference plus one distance query per reuse.
        assert_eq!(m.tree_ops, 10 + 3);
        // All 7 distinct addresses live at once at the end.
        assert_eq!(m.live_hwm, 7);
    }

    #[test]
    fn metrics_count_cascade_operations_exactly() {
        // Left chunk `dacbcc` then the Table II incoming stream `gefabc`:
        // 3 stream hits (a, b, c), 3 forwards (g, e, f).
        let mut left: Engine<SplayTree> = Engine::new(None, 0);
        left.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut out = Vec::new();
        left.process_infinities(&labels("gefabc"), &mut out);
        let m = left.metrics();
        assert_eq!(m.stream_refs, 6);
        assert_eq!(m.stream_hits, 3);
        assert_eq!(m.forwarded, 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn metrics_forwarded_survives_phase_reset() {
        let mut engine: Engine<SplayTree> = Engine::new(None, 0);
        let mut out = Vec::new();
        engine.process_chunk(&labels("abc"), 0, MissSink::Forward(&mut out));
        engine.reset_phase_counters();
        assert_eq!(engine.forwarded(), 0, "phase counter resets");
        assert_eq!(engine.metrics().forwarded, 3, "metrics are cumulative");
    }

    #[test]
    fn metrics_live_hwm_tracks_bounded_cap() {
        let mut engine: Engine<SplayTree> = Engine::new(Some(4), 0);
        let trace: Vec<Addr> = (0..100).collect();
        engine.process_chunk(&trace, 0, MissSink::Infinite);
        // The bound caps the live set; the high-water mark can overshoot by
        // at most one (the new entry is recorded before the eviction).
        assert!(engine.metrics().live_hwm <= 5);
        assert_eq!(engine.metrics().cold_misses, 100);
    }

    #[test]
    fn unoptimized_stream_accounting_matches_optimized() {
        let mut opt: Engine<SplayTree> = Engine::new(None, 0);
        opt.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut o1 = Vec::new();
        opt.process_infinities(&labels("gefabc"), &mut o1);

        let mut plain: Engine<SplayTree> = Engine::new(None, 0);
        plain.process_chunk(&labels("dacbcc"), 0, MissSink::Infinite);
        let mut o2 = Vec::new();
        plain.process_infinities_unoptimized(&labels("gefabc"), 6, &mut o2);

        assert_eq!(opt.metrics().refs, plain.metrics().refs);
        assert_eq!(opt.metrics().stream_refs, plain.metrics().stream_refs);
    }
}

//! Error taxonomy and fault policy for the analysis pipeline.
//!
//! The fault-tolerant entry points ([`crate::Analysis::run_file`],
//! [`crate::parallel::parda_threads_faulted`]) return [`PardaError`]
//! instead of a bare [`std::io::Error`], so callers — the CLI in
//! particular — can distinguish *corrupt input* from *I/O failure* from
//! *internal worker faults* and react per class (exit codes, retries,
//! degradation). [`FaultPolicy`] bundles the knobs that govern recovery:
//! the [`Degradation`] ladder for input corruption, retry budget and
//! backoff for panicked rank workers, and an optional watchdog deadline
//! that converts a stalled cascade wait into a structured [`PardaError::Stall`]
//! instead of a hang.

use parda_trace::Degradation;
use std::fmt;
use std::io;
use std::time::Duration;

/// Everything that can go wrong in an end-to-end analysis run, classified
/// by what the caller should do about it.
#[derive(Debug)]
pub enum PardaError {
    /// The input could not be read (file missing, permission, short read).
    Io(io::Error),
    /// The input was read but failed integrity validation: bad magic,
    /// CRC mismatch, truncated frame, malformed varint. Under a lossy
    /// [`Degradation`] policy most of these are repaired instead.
    Corrupt(String),
    /// A rank worker panicked and every rescue attempt (scalar re-analysis
    /// with backoff) panicked too. `attempts` counts the initial run plus
    /// all retries.
    WorkerPanic {
        /// The rank whose chunk analysis could not be completed.
        rank: usize,
        /// Total attempts made (1 initial + retries).
        attempts: u32,
    },
    /// A rank failed to publish its result within the watchdog deadline.
    Stall {
        /// The rank the cascade fold was waiting on.
        rank: usize,
        /// The configured deadline that expired.
        deadline: Duration,
    },
    /// The requested configuration is unusable (e.g. an unknown
    /// degradation policy name).
    Config(String),
    /// A network peer vanished mid-exchange (connection reset / broken
    /// pipe / unexpected EOF on a socket) and every reconnect attempt
    /// failed. Distinct from [`PardaError::Io`] so a retrying client can
    /// tell a dead transport from a dead disk; exits in the i/o class.
    ConnectionLost {
        /// Connection attempts made before giving up.
        attempts: u32,
    },
}

impl PardaError {
    /// Stable machine-readable class name (used by the CLI diagnostics).
    pub fn class(&self) -> &'static str {
        match self {
            PardaError::Io(_) => "io",
            PardaError::Corrupt(_) => "corrupt",
            PardaError::WorkerPanic { .. } => "worker-panic",
            PardaError::Stall { .. } => "stall",
            PardaError::Config(_) => "config",
            PardaError::ConnectionLost { .. } => "connection-lost",
        }
    }
}

impl fmt::Display for PardaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PardaError::Io(e) => write!(f, "i/o error: {e}"),
            PardaError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            PardaError::WorkerPanic { rank, attempts } => {
                write!(f, "rank {rank} worker panicked ({attempts} attempts)")
            }
            PardaError::Stall { rank, deadline } => {
                write!(f, "rank {rank} stalled past the {deadline:?} watchdog")
            }
            PardaError::Config(msg) => write!(f, "bad configuration: {msg}"),
            PardaError::ConnectionLost { attempts } => {
                write!(f, "connection lost ({attempts} attempts exhausted)")
            }
        }
    }
}

impl std::error::Error for PardaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PardaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PardaError {
    /// Classify an I/O error: `InvalidData` / `UnexpectedEof` mean the
    /// bytes arrived but were wrong — that is corruption, not I/O.
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                PardaError::Corrupt(e.to_string())
            }
            _ => PardaError::Io(e),
        }
    }
}

/// Recovery policy for a fault-tolerant analysis run.
///
/// The default is conservative: strict input validation, two rescue
/// retries with a 10 ms backoff, no watchdog (waits are unbounded, as in
/// the non-faulted drivers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// How to treat corrupt input (see [`Degradation`]).
    pub degradation: Degradation,
    /// How many times a panicked rank is re-analyzed (with the scalar
    /// reference engine) before giving up with [`PardaError::WorkerPanic`].
    pub max_retries: u32,
    /// Pause between rescue attempts.
    pub retry_backoff: Duration,
    /// Deadline for each cascade wait on a rank slot; `None` waits
    /// forever. On expiry the run aborts with [`PardaError::Stall`].
    pub watchdog: Option<Duration>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            degradation: Degradation::Strict,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            watchdog: None,
        }
    }
}

impl FaultPolicy {
    /// Policy with the given degradation ladder rung and default retry /
    /// watchdog settings.
    pub fn with_degradation(degradation: Degradation) -> Self {
        Self {
            degradation,
            ..Self::default()
        }
    }

    /// Builder-style retry budget setter.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder-style backoff setter.
    pub fn backoff(mut self, d: Duration) -> Self {
        self.retry_backoff = d;
        self
    }

    /// Builder-style watchdog setter.
    pub fn watchdog(mut self, d: impl Into<Option<Duration>>) -> Self {
        self.watchdog = d.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_classify_by_kind() {
        let corrupt: PardaError = io::Error::new(io::ErrorKind::InvalidData, "bad crc").into();
        assert_eq!(corrupt.class(), "corrupt");
        let eof: PardaError = io::Error::new(io::ErrorKind::UnexpectedEof, "short").into();
        assert_eq!(eof.class(), "corrupt");
        let missing: PardaError = io::Error::new(io::ErrorKind::NotFound, "no file").into();
        assert_eq!(missing.class(), "io");
    }

    #[test]
    fn display_is_one_line_and_class_stable() {
        let e = PardaError::WorkerPanic {
            rank: 3,
            attempts: 3,
        };
        assert_eq!(e.class(), "worker-panic");
        assert!(!e.to_string().contains('\n'));
        let s = PardaError::Stall {
            rank: 1,
            deadline: Duration::from_millis(50),
        };
        assert_eq!(s.class(), "stall");
        assert!(s.to_string().contains("rank 1"));
        let c = PardaError::ConnectionLost { attempts: 5 };
        assert_eq!(c.class(), "connection-lost");
        assert!(c.to_string().contains("5 attempts"));
    }

    #[test]
    fn default_policy_is_strict_with_bounded_retries() {
        let p = FaultPolicy::default();
        assert_eq!(p.degradation, Degradation::Strict);
        assert_eq!(p.max_retries, 2);
        assert!(p.watchdog.is_none());
        let q = FaultPolicy::with_degradation(Degradation::BestEffort)
            .retries(1)
            .watchdog(Duration::from_secs(5));
        assert_eq!(q.degradation, Degradation::BestEffort);
        assert_eq!(q.max_retries, 1);
        assert_eq!(q.watchdog, Some(Duration::from_secs(5)));
    }
}

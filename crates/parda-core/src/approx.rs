//! Constant-space approximate MRC engines: SHARDS and AET.
//!
//! PARDA's exact trees keep one node per live address — O(M) memory per
//! trace — which caps a daemon at a handful of heavyweight sessions. The
//! paper itself points at combining Parda with approximate analysis (§VII);
//! this module supplies the two standard constructions from the MRC
//! literature as first-class [`Analysis`](crate::Analysis) modes:
//!
//! * **SHARDS** (spatial hash sampling): an address is monitored iff
//!   `hash(addr) <= threshold`, an unbiased rate-`R` subset of the address
//!   space supporting *any* rate in (0, 1] (not just powers of two). A
//!   monitored reference with sampled reuse distance `d_s` estimates true
//!   distance `d_s / R` with weight `1/R`; the *SHARDS-adj* correction
//!   term closes the gap between the estimated and actual reference count
//!   by crediting the difference to the smallest-distance bucket.
//!   - *Fixed-rate* ([`ApproxMode::ShardsFixedRate`]): memory is
//!     O(M·R) — proportional to the monitored footprint.
//!   - *Fixed-size* ([`ApproxMode::ShardsFixedSize`]): a bounded priority
//!     structure (max-heap over hashes) evicts the highest-hash entry when
//!     the table exceeds `s_max` and lowers the threshold to just below
//!     the evicted hash, so memory is O(s_max) *regardless* of footprint
//!     and the rate adapts downward automatically.
//! * **AET** (average eviction time, [`ApproxMode::Aet`]): no tree at all.
//!   A bounded reuse-*time* histogram drives the survival function
//!   `P(t)` (fraction of references not yet reused after `t` steps); the
//!   eviction-time sweep `∫P(t)dt = c` converts it into a miss-ratio
//!   curve, which is re-emitted as a [`ReuseHistogram`] so every
//!   downstream consumer (CLI, server, stats) is agnostic to the engine.
//!
//! All sketches are **mergeable value types** ([`ApproxSketch::merge`]):
//! per-chunk or per-tenant sketches compose into the sketch of the
//! concatenated trace (exactly for fixed-rate SHARDS and AET, approximately
//! for fixed-size SHARDS where merging takes the minimum threshold).
//!
//! The deprecated [`sampled`](crate::sampled) module remains as a thin
//! shim over the pow-2 subset of this machinery.

use parda_hash::{fx_hash_u64, FxHashMap};
use parda_hist::ReuseHistogram;
use parda_obs::ApproxMetrics;
use parda_trace::Addr;
use parda_tree::{ReuseTree, SplayTree};
use std::collections::BinaryHeap;

/// `2^64` as an `f64` — the denominator of the threshold→rate mapping.
const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;

/// Initial sampling rate for fixed-size SHARDS (the construction's
/// customary `R_0`); eviction lowers it adaptively from there.
pub const SHARDS_FIXED_SIZE_INITIAL_RATE: f64 = 0.1;

/// Default sampling rate for AET when the spec gives none.
pub const AET_DEFAULT_RATE: f64 = 0.01;

/// Spatial sampling rate: an address is monitored iff
/// `fx_hash(addr) <= threshold`.
///
/// Supports any rate in (0, 1] via [`SampleRate::from_rate`]; the legacy
/// pow-2 constructor [`SampleRate::one_in_pow2`] produces bit-identical
/// monitoring decisions to the historical `hash >> (64-k) == 0` check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleRate {
    threshold: u64,
}

impl SampleRate {
    /// Rate 1.0 — every address monitored (exact analysis).
    pub const EXACT: SampleRate = SampleRate {
        threshold: u64::MAX,
    };

    /// Rate `2^-k`. `k = 0` monitors everything (exact analysis).
    pub fn one_in_pow2(k: u32) -> Self {
        assert!(k < 63, "sampling rate 2^-{k} is degenerate");
        if k == 0 {
            Self::EXACT
        } else {
            Self {
                threshold: (1u64 << (64 - k)) - 1,
            }
        }
    }

    /// Any rate in (0, 1] via threshold compare. For `rate = 2^-k` this is
    /// exactly [`SampleRate::one_in_pow2`]`(k)`.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "sampling rate {rate} outside (0, 1]"
        );
        if rate >= 1.0 {
            return Self::EXACT;
        }
        let t = rate * TWO_POW_64;
        let threshold = if t >= TWO_POW_64 {
            u64::MAX
        } else {
            (t as u64).saturating_sub(1)
        };
        Self { threshold }
    }

    /// Rebuild from a raw hash threshold (fixed-size SHARDS lowers it).
    pub fn from_threshold(threshold: u64) -> Self {
        Self { threshold }
    }

    /// The raw hash threshold.
    pub fn threshold(self) -> u64 {
        self.threshold
    }

    /// The effective rate `R = (threshold + 1) / 2^64`.
    pub fn rate(self) -> f64 {
        (self.threshold as f64 + 1.0) / TWO_POW_64
    }

    /// The count scale factor `1/R` (exact for pow-2 rates).
    pub fn scale(self) -> f64 {
        TWO_POW_64 / (self.threshold as f64 + 1.0)
    }

    /// The inverse rate `1/R` rounded to an integer (legacy pow-2 API;
    /// exact for pow-2 rates).
    pub fn inverse(self) -> u64 {
        self.scale().round() as u64
    }

    /// `true` if `addr` is monitored under this rate.
    #[inline]
    pub fn monitors(self, addr: Addr) -> bool {
        fx_hash_u64(addr) <= self.threshold
    }
}

/// Which analysis engine family an [`Analysis`](crate::Analysis) run uses:
/// the exact trees, or one of the constant-space sketches.
///
/// Parsed from the CLI/wire grammar by [`ApproxMode::parse`]:
///
/// ```text
/// exact | shards:<rate> | shards-smax:<n> | aet[:<rate>]
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ApproxMode {
    /// Exact tree-based analysis (the default).
    #[default]
    Exact,
    /// Fixed-rate SHARDS at sampling rate `rate` in (0, 1].
    ShardsFixedRate {
        /// Spatial sampling rate `R`.
        rate: f64,
    },
    /// Fixed-size SHARDS: at most `s_max` monitored addresses, threshold
    /// lowered by eviction. O(s_max) memory regardless of footprint.
    ShardsFixedSize {
        /// Sketch cardinality cap.
        s_max: usize,
    },
    /// AET reuse-time model at sampling rate `rate`; no tree at all.
    Aet {
        /// Spatial sampling rate for the reuse-time samples.
        rate: f64,
    },
}

impl ApproxMode {
    /// Parse an `--approx` / CONFIG spec. Grammar:
    /// `exact | shards:<rate> | shards-smax:<n> | aet[:<rate>]` with
    /// `<rate>` in (0, 1].
    pub fn parse(spec: &str) -> Result<ApproxMode, String> {
        fn bad(spec: &str, why: &str) -> String {
            format!(
                "bad approx spec `{spec}`: {why} \
                 (grammar: exact | shards:<rate> | shards-smax:<n> | aet[:<rate>], \
                 rate in (0,1])"
            )
        }
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        let parse_rate = |arg: &str| -> Result<f64, String> {
            let rate: f64 = arg
                .parse()
                .map_err(|_| bad(spec, &format!("`{arg}` is not a number")))?;
            if !(rate.is_finite() && rate > 0.0 && rate <= 1.0) {
                return Err(bad(spec, &format!("rate {arg} outside (0, 1]")));
            }
            Ok(rate)
        };
        let mode = match (head, arg) {
            ("exact", None) => ApproxMode::Exact,
            ("exact", Some(_)) => return Err(bad(spec, "exact takes no argument")),
            ("shards", Some(a)) => ApproxMode::ShardsFixedRate {
                rate: parse_rate(a)?,
            },
            ("shards", None) => return Err(bad(spec, "shards needs a rate")),
            ("shards-smax", Some(a)) => {
                let s_max: usize = a
                    .parse()
                    .map_err(|_| bad(spec, &format!("`{a}` is not a count")))?;
                if s_max == 0 {
                    return Err(bad(spec, "s_max must be >= 1"));
                }
                ApproxMode::ShardsFixedSize { s_max }
            }
            ("shards-smax", None) => return Err(bad(spec, "shards-smax needs a size")),
            ("aet", None) => ApproxMode::Aet {
                rate: AET_DEFAULT_RATE,
            },
            ("aet", Some(a)) => ApproxMode::Aet {
                rate: parse_rate(a)?,
            },
            _ => return Err(bad(spec, "unknown engine")),
        };
        Ok(mode)
    }

    /// Engine family label: `exact`, `shards`, `shards-smax`, or `aet`.
    pub fn name(&self) -> &'static str {
        match self {
            ApproxMode::Exact => "exact",
            ApproxMode::ShardsFixedRate { .. } => "shards",
            ApproxMode::ShardsFixedSize { .. } => "shards-smax",
            ApproxMode::Aet { .. } => "aet",
        }
    }

    /// Canonical spec string; round-trips through [`ApproxMode::parse`].
    pub fn spec(&self) -> String {
        match self {
            ApproxMode::Exact => "exact".into(),
            ApproxMode::ShardsFixedRate { rate } => format!("shards:{rate}"),
            ApproxMode::ShardsFixedSize { s_max } => format!("shards-smax:{s_max}"),
            ApproxMode::Aet { rate } => format!("aet:{rate}"),
        }
    }

    /// `true` for [`ApproxMode::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, ApproxMode::Exact)
    }

    /// Panic on degenerate configurations (rate outside (0, 1], zero
    /// `s_max`). Called by the [`Analysis`](crate::Analysis) builder.
    pub fn validate(&self) {
        match *self {
            ApproxMode::Exact => {}
            ApproxMode::ShardsFixedRate { rate } | ApproxMode::Aet { rate } => {
                assert!(
                    rate.is_finite() && rate > 0.0 && rate <= 1.0,
                    "approx rate {rate} outside (0, 1]"
                );
            }
            ApproxMode::ShardsFixedSize { s_max } => {
                assert!(s_max >= 1, "approx s_max must be >= 1");
            }
        }
    }
}

impl std::fmt::Display for ApproxMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Internal fractionally-weighted histogram: non-pow-2 rates scale counts
/// by a non-integer `1/R`, so the sketch accumulates in `f64` and rounds
/// once at [`WeightedHist::to_histogram`]. Pow-2 rates stay exact (every
/// weight is a power of two, summed without rounding error below 2^53).
#[derive(Clone, Debug, Default, PartialEq)]
struct WeightedHist {
    counts: Vec<f64>,
    infinite: f64,
}

impl WeightedHist {
    fn record(&mut self, d: u64, w: f64) {
        let idx = d as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0.0);
        }
        self.counts[idx] += w;
    }

    fn record_infinite(&mut self, w: f64) {
        self.infinite += w;
    }

    fn total(&self) -> f64 {
        self.counts.iter().sum::<f64>() + self.infinite
    }

    fn merge(&mut self, other: &WeightedHist) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0.0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.infinite += other.infinite;
    }

    /// Apply the SHARDS-adj correction: reconcile the estimated reference
    /// count with the true one by crediting `diff` to the smallest-distance
    /// bucket. A surplus (`diff > 0`) lands entirely in bucket 0; a deficit
    /// (`diff < 0` — hot sampled addresses overweighting short reuses, the
    /// common case on skewed traces) is drained from the smallest buckets
    /// upward, since counts cannot go negative and the overweight mass sits
    /// at short distances.
    fn adjust_smallest(&mut self, diff: f64) {
        if self.counts.is_empty() {
            self.counts.push(0.0);
        }
        if diff >= 0.0 {
            self.counts[0] += diff;
            return;
        }
        let mut deficit = -diff;
        for c in self.counts.iter_mut() {
            if deficit <= 0.0 {
                return;
            }
            let take = c.min(deficit);
            *c -= take;
            deficit -= take;
        }
        self.infinite = (self.infinite - deficit).max(0.0);
    }

    fn to_histogram(&self) -> ReuseHistogram {
        let mut hist = ReuseHistogram::new();
        for (d, &w) in self.counts.iter().enumerate() {
            let n = w.round() as u64;
            if n > 0 {
                hist.record_finite_n(d as u64, n);
            }
        }
        let inf = self.infinite.round() as u64;
        if inf > 0 {
            hist.record_infinite_n(inf);
        }
        hist
    }
}

/// One monitored address's bookkeeping inside a SHARDS sketch.
#[derive(Clone, Copy, Debug, PartialEq)]
struct ShardsEntry {
    /// Sampled-clock timestamp of the first touch (merge replay order).
    first_ts: u64,
    /// Sampled-clock timestamp of the most recent touch (tree key).
    last_ts: u64,
    /// Weight carried by this address's cold miss (the scale at the time
    /// it was first monitored — fixed-size rates drift downward).
    cold_w: f64,
}

/// SHARDS sketch: spatial-hash-sampled reuse distance analysis.
///
/// Fixed-rate (`s_max = None`) keeps every monitored address; fixed-size
/// keeps at most `s_max` by evicting the highest-hash entry and lowering
/// the threshold, so the live state (table + tree + heap) is O(s_max).
#[derive(Debug, Default)]
pub struct ShardsSketch {
    /// Configured initial rate (reported in metrics).
    initial_rate: f64,
    /// Current monitoring threshold (`hash <= threshold` is monitored).
    threshold: u64,
    /// Cardinality cap, when fixed-size.
    s_max: Option<usize>,
    /// Sampled-reference clock (tree key space).
    ts: u64,
    /// All references seen (monitored or not).
    total_refs: u64,
    /// References that passed the filter.
    sampled_refs: u64,
    /// Live monitored addresses.
    table: FxHashMap<Addr, ShardsEntry>,
    /// Distance oracle over monitored last-access timestamps.
    tree: SplayTree,
    /// Max-heap over (hash, addr) for fixed-size eviction; empty otherwise.
    heap: BinaryHeap<(u64, Addr)>,
    /// Scaled finite-distance observations.
    hist: WeightedHist,
    /// Cold-miss weight of evicted entries (their first touches stand).
    evicted_cold_w: f64,
    /// Entries evicted by the fixed-size policy.
    evictions: u64,
}

impl ShardsSketch {
    /// Fixed-rate sketch at `rate` in (0, 1].
    pub fn fixed_rate(rate: f64) -> Self {
        let sr = SampleRate::from_rate(rate);
        Self {
            initial_rate: rate,
            threshold: sr.threshold(),
            s_max: None,
            ..Default::default()
        }
    }

    /// Fixed-size sketch capped at `s_max` monitored addresses, starting
    /// from [`SHARDS_FIXED_SIZE_INITIAL_RATE`].
    pub fn fixed_size(s_max: usize) -> Self {
        assert!(s_max >= 1, "s_max must be >= 1");
        let sr = SampleRate::from_rate(SHARDS_FIXED_SIZE_INITIAL_RATE);
        Self {
            initial_rate: SHARDS_FIXED_SIZE_INITIAL_RATE,
            threshold: sr.threshold(),
            s_max: Some(s_max),
            ..Default::default()
        }
    }

    fn current_scale(&self) -> f64 {
        SampleRate::from_threshold(self.threshold).scale()
    }

    /// Process one reference.
    #[inline]
    pub fn push(&mut self, addr: Addr) {
        self.total_refs += 1;
        let h = fx_hash_u64(addr);
        if h > self.threshold {
            return;
        }
        self.sampled_refs += 1;
        let w = self.current_scale();
        let ts = self.ts;
        self.ts += 1;
        if let Some(entry) = self.table.get_mut(&addr) {
            let (d_s, _) = self
                .tree
                .distance_and_remove(entry.last_ts)
                .expect("monitored entry must be in the tree");
            entry.last_ts = ts;
            self.tree.insert(ts, addr);
            let est = (d_s as f64 * w).round() as u64;
            self.hist.record(est, w);
        } else {
            self.table.insert(
                addr,
                ShardsEntry {
                    first_ts: ts,
                    last_ts: ts,
                    cold_w: w,
                },
            );
            self.tree.insert(ts, addr);
            if let Some(s_max) = self.s_max {
                self.heap.push((h, addr));
                if self.table.len() > s_max {
                    self.evict_one();
                }
            }
        }
    }

    /// Process a batch of references.
    pub fn update(&mut self, addrs: &[Addr]) {
        for &a in addrs {
            self.push(a);
        }
    }

    /// Evict the highest-hash entry and lower the threshold to just below
    /// its hash, cascading over hash ties so no future reference with an
    /// evicted hash value is ever re-admitted.
    fn evict_one(&mut self) {
        let (h_max, _) = *self.heap.peek().expect("fixed-size eviction on empty heap");
        self.threshold = h_max.saturating_sub(1);
        self.evict_above_threshold();
    }

    /// Drop every heap/table entry whose hash exceeds the current
    /// threshold (used by eviction and by merge threshold alignment).
    fn evict_above_threshold(&mut self) {
        while let Some(&(h, addr)) = self.heap.peek() {
            if h <= self.threshold {
                break;
            }
            self.heap.pop();
            let entry = self
                .table
                .remove(&addr)
                .expect("heap entry must be live in the table");
            self.tree.remove(entry.last_ts);
            self.evicted_cold_w += entry.cold_w;
            self.evictions += 1;
        }
    }

    /// Merge `other` into `self`, producing the sketch of the concatenated
    /// trace `self ++ other`.
    ///
    /// Exact for fixed-rate sketches at equal rates: cross-boundary reuses
    /// are resolved by replaying `other`'s live entries (in first-touch
    /// order) against `self`'s tree. Fixed-size merges align both sketches
    /// on the lower threshold first, then re-apply the cardinality cap.
    pub fn merge(&mut self, other: ShardsSketch) -> Result<(), String> {
        if self.s_max != other.s_max {
            return Err(format!(
                "cannot merge shards sketches with different s_max ({:?} vs {:?})",
                self.s_max, other.s_max
            ));
        }
        if self.s_max.is_none() && self.threshold != other.threshold {
            return Err("cannot merge fixed-rate shards sketches with different rates".into());
        }
        // Align on the lower threshold (no-op for fixed-rate).
        if other.threshold < self.threshold {
            self.threshold = other.threshold;
            self.evict_above_threshold();
        }
        let shift = self.ts;
        let w = self.current_scale();
        let mut entries: Vec<(Addr, ShardsEntry)> = other.table.into_iter().collect();
        entries.sort_unstable_by_key(|(_, e)| e.first_ts);
        let mut other_evicted_cold_w = other.evicted_cold_w;
        let mut other_evictions = other.evictions;
        for (addr, e) in entries {
            let h = fx_hash_u64(addr);
            if h > self.threshold {
                // `other` sampled this address under a higher threshold
                // than the merged sketch allows; retire it like any
                // fixed-size eviction.
                other_evicted_cold_w += e.cold_w;
                other_evictions += 1;
                continue;
            }
            if let Some(mine) = self.table.get_mut(&addr) {
                // Cross-boundary reuse: distance from `self`'s last touch
                // of `addr` to `other`'s first touch. The tree query counts
                // `self` survivors plus already-replayed `other` first
                // touches — exactly the distinct monitored addresses in
                // between.
                let (d_s, _) = self
                    .tree
                    .distance_and_remove(mine.last_ts)
                    .expect("monitored entry must be in the tree");
                let est = (d_s as f64 * w).round() as u64;
                self.hist.record(est, w);
                mine.last_ts = shift + e.last_ts;
                self.tree.insert(shift + e.last_ts, addr);
                // `other`'s cold miss for this address dissolves into the
                // cross reuse; `self`'s own cold weight stands.
                // (Its weight was already excluded: cold weights live in
                // the table entries, and we keep `mine`.)
            } else {
                self.table.insert(
                    addr,
                    ShardsEntry {
                        first_ts: shift + e.first_ts,
                        last_ts: shift + e.last_ts,
                        cold_w: e.cold_w,
                    },
                );
                self.tree.insert(shift + e.last_ts, addr);
                if self.s_max.is_some() {
                    self.heap.push((h, addr));
                }
            }
        }
        if let Some(s_max) = self.s_max {
            while self.table.len() > s_max {
                self.evict_one();
            }
        }
        self.hist.merge(&other.hist);
        self.ts += other.ts;
        self.total_refs += other.total_refs;
        self.sampled_refs += other.sampled_refs;
        self.evicted_cold_w += other_evicted_cold_w;
        self.evictions += other_evictions;
        Ok(())
    }

    /// The corrected estimated reuse histogram.
    ///
    /// Applies the SHARDS-adj correction: the gap between the actual
    /// reference count `N` and the estimated total is credited to the
    /// smallest-distance bucket before rounding.
    pub fn finalize(&self) -> ReuseHistogram {
        let mut wh = self.hist.clone();
        let cold: f64 = self.table.values().map(|e| e.cold_w).sum::<f64>() + self.evicted_cold_w;
        wh.record_infinite(cold);
        let diff = self.total_refs as f64 - wh.total();
        wh.adjust_smallest(diff);
        wh.to_histogram()
    }

    /// Approximate resident size of the live sketch state (table + tree +
    /// eviction heap). Excludes the output histogram accumulator, which —
    /// like any reuse histogram — is sized by the largest estimated
    /// distance.
    pub fn memory_bytes(&self) -> u64 {
        let table =
            self.table.capacity() as u64 * (std::mem::size_of::<(Addr, ShardsEntry)>() as u64 + 8);
        // The trees don't expose node sizes; 48 bytes (three pointers +
        // key + subtree size) is representative of the splay layout.
        let tree = self.tree.len() as u64 * 48;
        let heap = self.heap.len() as u64 * std::mem::size_of::<(u64, Addr)>() as u64;
        table + tree + heap
    }

    /// Realized configuration and accuracy envelope.
    pub fn metrics(&self) -> ApproxMetrics {
        let mode = if self.s_max.is_some() {
            "shards-smax"
        } else {
            "shards"
        };
        ApproxMetrics {
            mode: mode.into(),
            rate: self.initial_rate,
            effective_rate: SampleRate::from_threshold(self.threshold).rate(),
            s_max: self.s_max.map(|s| s as u64),
            sampled_refs: self.sampled_refs,
            sampled_addrs: self.table.len() as u64,
            evictions: self.evictions,
            sketch_bytes: self.memory_bytes(),
            expected_mae: expected_mae(self.table.len()),
        }
    }
}

/// Reuse-*time* histogram with bounded memory: exact linear bins below
/// [`RtHist::LINEAR`], then log2 octaves with [`RtHist::SUB_BINS`]
/// sub-bins each (≈1.6% relative resolution) — constant ~60 KiB however
/// long the reuse times grow.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RtHist {
    counts: Vec<u64>,
    total: u64,
}

impl RtHist {
    /// Reuse times below this are binned exactly.
    const LINEAR: u64 = 4096;
    /// log2(LINEAR): first octave index.
    const LINEAR_LOG2: u32 = 12;
    /// Sub-bins per octave above the linear range.
    const SUB_BINS: u64 = 64;
    const SUB_BITS: u32 = 6;

    fn new() -> Self {
        let octaves = (64 - Self::LINEAR_LOG2) as usize;
        Self {
            counts: vec![0; Self::LINEAR as usize + octaves * Self::SUB_BINS as usize],
            total: 0,
        }
    }

    fn bin(rt: u64) -> usize {
        if rt < Self::LINEAR {
            rt as usize
        } else {
            let log2 = 63 - rt.leading_zeros();
            let sub = (rt >> (log2 - Self::SUB_BITS)) & (Self::SUB_BINS - 1);
            Self::LINEAR as usize
                + (log2 - Self::LINEAR_LOG2) as usize * Self::SUB_BINS as usize
                + sub as usize
        }
    }

    /// Upper bound (inclusive representative) of bin `idx`: the reuse time
    /// all samples in the bin are conservatively attributed to.
    fn bin_bound(idx: usize) -> u64 {
        if (idx as u64) < Self::LINEAR {
            idx as u64
        } else {
            let rel = idx - Self::LINEAR as usize;
            let log2 = Self::LINEAR_LOG2 + (rel / Self::SUB_BINS as usize) as u32;
            let sub = (rel % Self::SUB_BINS as usize) as u64;
            let width = 1u64 << (log2 - Self::SUB_BITS);
            (1u64 << log2) + (sub + 1) * width
        }
    }

    fn record(&mut self, rt: u64) {
        self.counts[Self::bin(rt)] += 1;
        self.total += 1;
    }

    fn merge(&mut self, other: &RtHist) {
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
    }
}

impl Default for RtHist {
    fn default() -> Self {
        Self::new()
    }
}

/// AET sketch: a bounded reuse-time histogram plus a last-access table
/// over the monitored addresses — no distance tree at all.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AetSketch {
    rate: f64,
    threshold: u64,
    /// Global reference clock: *every* reference advances it (reuse time
    /// is measured in whole-trace references).
    ts: u64,
    sampled_refs: u64,
    table: FxHashMap<Addr, (u64, u64)>,
    rt: RtHist,
}

impl AetSketch {
    /// AET sketch sampling reuse times at `rate` in (0, 1].
    pub fn new(rate: f64) -> Self {
        let sr = SampleRate::from_rate(rate);
        Self {
            rate,
            threshold: sr.threshold(),
            ts: 0,
            sampled_refs: 0,
            table: FxHashMap::default(),
            rt: RtHist::new(),
        }
    }

    /// Process one reference.
    #[inline]
    pub fn push(&mut self, addr: Addr) {
        let t = self.ts;
        self.ts += 1;
        if fx_hash_u64(addr) > self.threshold {
            return;
        }
        self.sampled_refs += 1;
        if let Some((_, last)) = self.table.get_mut(&addr) {
            self.rt.record(t - *last);
            *last = t;
        } else {
            self.table.insert(addr, (t, t));
        }
    }

    /// Process a batch of references.
    pub fn update(&mut self, addrs: &[Addr]) {
        for &a in addrs {
            self.push(a);
        }
    }

    /// Merge `other` into `self` — exactly the sketch of `self ++ other`:
    /// shared addresses convert `other`'s cold miss into a cross-boundary
    /// reuse time.
    pub fn merge(&mut self, other: AetSketch) -> Result<(), String> {
        if self.threshold != other.threshold {
            return Err("cannot merge aet sketches with different rates".into());
        }
        let shift = self.ts;
        for (addr, (first, last)) in other.table {
            if let Some((_, mine_last)) = self.table.get_mut(&addr) {
                self.rt.record(shift + first - *mine_last);
                *mine_last = shift + last;
            } else {
                self.table.insert(addr, (shift + first, shift + last));
            }
        }
        self.rt.merge(&other.rt);
        self.ts += other.ts;
        self.sampled_refs += other.sampled_refs;
        Ok(())
    }

    /// Run the AET sweep and re-emit the resulting miss-ratio curve as a
    /// [`ReuseHistogram`] over the whole trace (`total() ≈ N`).
    ///
    /// The survival function `P(t)` — the fraction of monitored references
    /// whose forward reuse time exceeds `t` (last touches count as ∞) —
    /// is integrated until it crosses each integer cache capacity `c`
    /// (`∫₀^AET(c) P(t)dt = c`), giving `mr(c) = P(AET(c))`. The curve is
    /// piecewise constant per reuse-time bin, so the histogram needs one
    /// bucket per bin transition.
    pub fn finalize(&self) -> ReuseHistogram {
        let n_refs = self.ts as f64;
        let mut wh = WeightedHist::default();
        if self.sampled_refs == 0 {
            // Nothing monitored: no basis for estimation; everything a
            // cold miss is the only consistent answer.
            wh.record_infinite(n_refs);
            return wh.to_histogram();
        }
        // SHARDS-adj analog for the reuse-time domain: spatial sampling
        // expects `N·R` observations but realizes `sampled_refs`, and the
        // gap is hot-address skew concentrated at the shortest reuse
        // times. Reconciling against the expected count keeps `P(t)`'s
        // denominator unbiased — without it a lucky hot address deflates
        // the whole curve (the realized count over-weights short reuses).
        let n = n_refs * SampleRate::from_threshold(self.threshold).rate();
        let mut counts: Vec<f64> = self.rt.counts.iter().map(|&c| c as f64).collect();
        let mut cold = self.table.len() as f64;
        let diff = n - self.sampled_refs as f64;
        if diff >= 0.0 {
            counts[1] += diff; // rt = 1: the smallest possible reuse time
        } else {
            let mut deficit = -diff;
            for c in counts.iter_mut() {
                if deficit <= 0.0 {
                    break;
                }
                let take = c.min(deficit);
                *c -= take;
                deficit -= take;
            }
            cold = (cold - deficit).max(0.0);
        }
        let mut above: f64 = counts.iter().sum();
        let mut cum = 0.0f64; // ∫ P(t) dt so far
        let mut t_prev = 0u64;
        let mut c_emitted = 0u64; // largest capacity already assigned
        let mut mr_prev = 1.0f64;
        for (idx, &count) in counts.iter().enumerate() {
            if count <= 0.0 {
                continue;
            }
            let bound = RtHist::bin_bound(idx);
            let p = (cold + above) / n;
            let new_cum = cum + p * (bound - t_prev) as f64;
            let c_hi = new_cum.floor() as u64;
            if c_hi > c_emitted && p < mr_prev {
                // Capacities (c_emitted, c_hi] all evict at times inside
                // this segment: mr = P. Hits gained over the previous
                // plateau land at distance c_emitted.
                wh.record(c_emitted, n_refs * (mr_prev - p));
                mr_prev = p;
            }
            if c_hi > c_emitted {
                c_emitted = c_hi;
            }
            cum = new_cum;
            t_prev = bound;
            above -= count;
        }
        // Tail: P(t) = cold/n forever after the largest reuse time; every
        // remaining capacity is eventually crossed.
        let p_tail = cold / n;
        if p_tail < mr_prev {
            wh.record(c_emitted, n_refs * (mr_prev - p_tail));
        }
        wh.record_infinite(n_refs * p_tail);
        wh.to_histogram()
    }

    /// Approximate resident size of the sketch (table + reuse-time bins).
    pub fn memory_bytes(&self) -> u64 {
        let table =
            self.table.capacity() as u64 * (std::mem::size_of::<(Addr, (u64, u64))>() as u64 + 8);
        let bins = self.rt.counts.len() as u64 * 8;
        table + bins
    }

    /// Realized configuration and accuracy envelope.
    pub fn metrics(&self) -> ApproxMetrics {
        ApproxMetrics {
            mode: "aet".into(),
            rate: self.rate,
            effective_rate: SampleRate::from_threshold(self.threshold).rate(),
            s_max: None,
            sampled_refs: self.sampled_refs,
            sampled_addrs: self.table.len() as u64,
            evictions: 0,
            sketch_bytes: self.memory_bytes(),
            expected_mae: expected_mae(self.table.len()),
        }
    }
}

/// A-priori mean-absolute-error envelope `~1/sqrt(sampled_addrs)` from the
/// MRC survey's concentration argument.
fn expected_mae(sampled_addrs: usize) -> f64 {
    1.0 / (sampled_addrs.max(1) as f64).sqrt()
}

/// A mergeable constant-space MRC sketch — the value type behind every
/// non-exact [`ApproxMode`].
#[derive(Debug)]
pub enum ApproxSketch {
    /// SHARDS (fixed-rate or fixed-size).
    Shards(ShardsSketch),
    /// AET reuse-time model.
    Aet(AetSketch),
}

impl ApproxSketch {
    /// Build the sketch for `mode`.
    ///
    /// # Panics
    ///
    /// On [`ApproxMode::Exact`] (exact analysis has no sketch) or a
    /// degenerate configuration.
    pub fn new(mode: ApproxMode) -> Self {
        mode.validate();
        match mode {
            ApproxMode::Exact => panic!("ApproxMode::Exact has no sketch"),
            ApproxMode::ShardsFixedRate { rate } => {
                ApproxSketch::Shards(ShardsSketch::fixed_rate(rate))
            }
            ApproxMode::ShardsFixedSize { s_max } => {
                ApproxSketch::Shards(ShardsSketch::fixed_size(s_max))
            }
            ApproxMode::Aet { rate } => ApproxSketch::Aet(AetSketch::new(rate)),
        }
    }

    /// Process one reference.
    #[inline]
    pub fn push(&mut self, addr: Addr) {
        match self {
            ApproxSketch::Shards(s) => s.push(addr),
            ApproxSketch::Aet(s) => s.push(addr),
        }
    }

    /// Process a batch of references.
    pub fn update(&mut self, addrs: &[Addr]) {
        match self {
            ApproxSketch::Shards(s) => s.update(addrs),
            ApproxSketch::Aet(s) => s.update(addrs),
        }
    }

    /// Merge another sketch of the *following* trace segment into this
    /// one. Errors on engine or configuration mismatch.
    pub fn merge(&mut self, other: ApproxSketch) -> Result<(), String> {
        match (self, other) {
            (ApproxSketch::Shards(a), ApproxSketch::Shards(b)) => a.merge(b),
            (ApproxSketch::Aet(a), ApproxSketch::Aet(b)) => a.merge(b),
            _ => Err("cannot merge sketches of different engines".into()),
        }
    }

    /// The estimated reuse histogram.
    pub fn finalize(&self) -> ReuseHistogram {
        match self {
            ApproxSketch::Shards(s) => s.finalize(),
            ApproxSketch::Aet(s) => s.finalize(),
        }
    }

    /// Approximate resident size of the live sketch state.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            ApproxSketch::Shards(s) => s.memory_bytes(),
            ApproxSketch::Aet(s) => s.memory_bytes(),
        }
    }

    /// Realized configuration and accuracy envelope.
    pub fn metrics(&self) -> ApproxMetrics {
        match self {
            ApproxSketch::Shards(s) => s.metrics(),
            ApproxSketch::Aet(s) => s.metrics(),
        }
    }
}

/// One-shot approximate analysis of an in-memory trace.
///
/// # Panics
///
/// On [`ApproxMode::Exact`] — route exact analysis through
/// [`Analysis`](crate::Analysis) or [`crate::seq`].
pub fn analyze_approx(trace: &[Addr], mode: ApproxMode) -> (ReuseHistogram, ApproxMetrics) {
    let mut sketch = ApproxSketch::new(mode);
    sketch.update(trace);
    (sketch.finalize(), sketch.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::analyze_sequential;
    use parda_trace::gen::{ReuseProfile, StackDistGen, ZipfGen};
    use parda_trace::AddressStream;
    use parda_tree::SplayTree;
    use proptest::prelude::*;

    fn pow2_caps(max: u64) -> Vec<u64> {
        let mut caps = Vec::new();
        let mut c = 1u64;
        while c <= max {
            caps.push(c);
            c *= 2;
        }
        caps
    }

    #[test]
    fn from_rate_matches_one_in_pow2() {
        for k in [0u32, 1, 3, 7, 20, 40] {
            assert_eq!(
                SampleRate::from_rate(0.5f64.powi(k as i32)),
                SampleRate::one_in_pow2(k),
                "k={k}"
            );
        }
    }

    #[test]
    fn arbitrary_rate_selects_expected_fraction() {
        let addrs: Vec<Addr> = (0..200_000).map(|i| 0x4000 + i * 16).collect();
        for rate in [0.3f64, 0.07, 0.015] {
            let sr = SampleRate::from_rate(rate);
            let kept = addrs.iter().filter(|&&a| sr.monitors(a)).count() as f64;
            let expect = addrs.len() as f64 * rate;
            assert!(
                (kept - expect).abs() / expect < 0.1,
                "rate={rate}: kept {kept}, expected ~{expect}"
            );
            assert!((sr.rate() - rate).abs() / rate < 1e-9);
        }
    }

    #[test]
    fn mode_spec_round_trips() {
        for spec in ["exact", "shards:0.01", "shards-smax:8192", "aet:0.1"] {
            let mode = ApproxMode::parse(spec).unwrap();
            assert_eq!(mode.spec(), spec);
            assert_eq!(ApproxMode::parse(&mode.spec()).unwrap(), mode);
        }
        assert_eq!(
            ApproxMode::parse("aet").unwrap(),
            ApproxMode::Aet {
                rate: AET_DEFAULT_RATE
            }
        );
    }

    #[test]
    fn mode_parse_rejects_bad_specs() {
        for spec in [
            "",
            "shards",
            "shards:0",
            "shards:1.5",
            "shards:x",
            "shards-smax",
            "shards-smax:0",
            "shards-smax:abc",
            "aet:0",
            "aet:2",
            "exact:1",
            "banana",
        ] {
            let err = ApproxMode::parse(spec).unwrap_err();
            assert!(err.contains("grammar"), "spec `{spec}` error: {err}");
        }
    }

    #[test]
    fn shards_rate_one_is_exact() {
        let trace =
            StackDistGen::new(30_000, 2_000, ReuseProfile::geometric(32.0), 11).take_trace(30_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let (approx, metrics) =
            analyze_approx(trace.as_slice(), ApproxMode::ShardsFixedRate { rate: 1.0 });
        assert_eq!(exact, approx);
        assert_eq!(metrics.sampled_refs, trace.len() as u64);
        assert_eq!(metrics.effective_rate, 1.0);
    }

    #[test]
    fn shards_tracks_exact_mrc_at_non_pow2_rate() {
        let trace =
            StackDistGen::new(150_000, 8_000, ReuseProfile::geometric(64.0), 3).take_trace(150_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let (approx, _) =
            analyze_approx(trace.as_slice(), ApproxMode::ShardsFixedRate { rate: 0.05 });
        let caps: Vec<u64> = pow2_caps(16_384).into_iter().filter(|&c| c >= 64).collect();
        let err = approx.mrc_mean_absolute_error(&exact, &caps);
        assert!(err < 0.03, "MAE {err}");
        // The correction term closes the total-count gap.
        let rel = (approx.total() as f64 - trace.len() as f64).abs() / trace.len() as f64;
        assert!(rel < 0.02, "total off by {rel}");
    }

    #[test]
    fn fixed_size_caps_state_and_tracks_mrc() {
        let trace = ZipfGen::new(60_000, 0.8, 0, 21).take_trace(400_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let mut sketch = ShardsSketch::fixed_size(1_024);
        sketch.update(trace.as_slice());
        assert!(sketch.table.len() <= 1_024);
        assert!(sketch.tree.len() <= 1_024);
        assert!(sketch.heap.len() <= 1_024);
        let m = sketch.metrics();
        assert!(m.evictions > 0, "footprint must overflow s_max");
        assert!(m.effective_rate < SHARDS_FIXED_SIZE_INITIAL_RATE);
        let caps: Vec<u64> = pow2_caps(65_536)
            .into_iter()
            .filter(|&c| c >= 256)
            .collect();
        let err = sketch.finalize().mrc_mean_absolute_error(&exact, &caps);
        assert!(err < 0.03, "MAE {err}");
    }

    #[test]
    fn aet_tracks_exact_mrc() {
        let trace = StackDistGen::new(200_000, 10_000, ReuseProfile::geometric(96.0), 5)
            .take_trace(200_000);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let (approx, metrics) = analyze_approx(trace.as_slice(), ApproxMode::Aet { rate: 1.0 });
        let caps: Vec<u64> = pow2_caps(32_768).into_iter().filter(|&c| c >= 16).collect();
        let err = approx.mrc_mean_absolute_error(&exact, &caps);
        assert!(err < 0.03, "MAE {err}");
        assert_eq!(metrics.mode, "aet");
        // The reuse-time histogram is constant-size.
        assert!(metrics.sketch_bytes < 4 << 20);
        // Estimated totals track N and M.
        let rel = (approx.total() as f64 - trace.len() as f64).abs() / trace.len() as f64;
        assert!(rel < 0.01, "total off by {rel}");
        let m_rel = (approx.infinite() as f64 - 10_000.0).abs() / 10_000.0;
        assert!(m_rel < 0.05, "footprint estimate off by {m_rel}");
    }

    #[test]
    fn aet_merge_is_exact() {
        let trace = ZipfGen::new(8_000, 0.9, 0, 13).take_trace(60_000);
        let (a_part, b_part) = trace.as_slice().split_at(25_000);
        let mut whole = AetSketch::new(0.25);
        whole.update(trace.as_slice());
        let mut a = AetSketch::new(0.25);
        a.update(a_part);
        let mut b = AetSketch::new(0.25);
        b.update(b_part);
        a.merge(b).unwrap();
        assert_eq!(a, whole);
    }

    proptest! {
        #[test]
        fn shards_fixed_rate_merge_matches_whole_trace(
            trace in proptest::collection::vec(0u64..96, 2..400),
            split in 0usize..400,
            k in 0u32..3,
        ) {
            let split = split.min(trace.len());
            let rate = 0.5f64.powi(k as i32);
            let mut whole = ShardsSketch::fixed_rate(rate);
            whole.update(&trace);
            let mut a = ShardsSketch::fixed_rate(rate);
            a.update(&trace[..split]);
            let mut b = ShardsSketch::fixed_rate(rate);
            b.update(&trace[split..]);
            a.merge(b).unwrap();
            prop_assert_eq!(a.finalize(), whole.finalize());
            prop_assert_eq!(a.hist.clone(), whole.hist.clone());
            prop_assert_eq!(a.total_refs, whole.total_refs);
            prop_assert_eq!(a.sampled_refs, whole.sampled_refs);
            let mut a_tbl: Vec<_> = a.table.iter().map(|(k, v)| (*k, *v)).collect();
            let mut w_tbl: Vec<_> = whole.table.iter().map(|(k, v)| (*k, *v)).collect();
            a_tbl.sort_unstable_by_key(|(k, _)| *k);
            w_tbl.sort_unstable_by_key(|(k, _)| *k);
            prop_assert_eq!(a_tbl, w_tbl);
        }

        #[test]
        fn aet_merge_matches_whole_trace(
            trace in proptest::collection::vec(0u64..64, 2..400),
            split in 0usize..400,
        ) {
            let split = split.min(trace.len());
            let mut whole = AetSketch::new(1.0);
            whole.update(&trace);
            let mut a = AetSketch::new(1.0);
            a.update(&trace[..split]);
            let mut b = AetSketch::new(1.0);
            b.update(&trace[split..]);
            a.merge(b).unwrap();
            prop_assert_eq!(a, whole);
        }
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let mut a = ApproxSketch::new(ApproxMode::ShardsFixedRate { rate: 0.5 });
        let b = ApproxSketch::new(ApproxMode::ShardsFixedRate { rate: 0.25 });
        assert!(a.merge(b).is_err());
        let mut a = ApproxSketch::new(ApproxMode::ShardsFixedRate { rate: 0.5 });
        let b = ApproxSketch::new(ApproxMode::Aet { rate: 0.5 });
        assert!(a.merge(b).is_err());
        let mut a = ApproxSketch::new(ApproxMode::ShardsFixedSize { s_max: 64 });
        let b = ApproxSketch::new(ApproxMode::ShardsFixedSize { s_max: 128 });
        assert!(a.merge(b).is_err());
    }

    #[test]
    fn fixed_size_merge_stays_within_cap() {
        let trace = ZipfGen::new(30_000, 0.7, 0, 17).take_trace(120_000);
        let (a_part, b_part) = trace.as_slice().split_at(60_000);
        let mut a = ShardsSketch::fixed_size(512);
        a.update(a_part);
        let mut b = ShardsSketch::fixed_size(512);
        b.update(b_part);
        a.merge(b).unwrap();
        assert!(a.table.len() <= 512);
        assert!(a.heap.len() <= 512);
        let exact = analyze_sequential::<SplayTree>(trace.as_slice(), None);
        let caps: Vec<u64> = pow2_caps(32_768)
            .into_iter()
            .filter(|&c| c >= 256)
            .collect();
        let err = a.finalize().mrc_mean_absolute_error(&exact, &caps);
        assert!(err < 0.06, "merged fixed-size MAE {err}");
    }

    #[test]
    fn rt_hist_bins_are_monotone_and_bounded() {
        let mut prev_bin = 0usize;
        for rt in (1u64..5_000).chain((13u64..40).map(|k| (1u64 << k) + 12345)) {
            let b = RtHist::bin(rt);
            assert!(b >= prev_bin || rt < RtHist::LINEAR, "rt={rt}");
            prev_bin = b;
            assert!(RtHist::bin_bound(b) >= rt, "bound must dominate rt={rt}");
            // Bin resolution above the linear range stays within ~2%.
            if rt >= RtHist::LINEAR {
                let bound = RtHist::bin_bound(b);
                assert!(
                    (bound - rt) as f64 / rt as f64 <= 2.0 / RtHist::SUB_BINS as f64 + 1e-9,
                    "rt={rt} bound={bound}"
                );
            }
        }
    }
}
